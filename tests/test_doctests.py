"""Execute the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.core.registry
import repro.simulation.engine


@pytest.mark.parametrize(
    "module",
    [repro.simulation.engine, repro.core.registry],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
