"""Minimal JSON-Schema validator for the exported Chrome trace.

The container bakes in no ``jsonschema`` package, so this implements
the draft-07 subset ``tests/trace_schema.json`` actually uses --
``type``, ``enum``, ``const``, ``required``, ``properties``, ``items``,
``minimum``, ``oneOf`` -- and nothing more.  Unknown keywords are
ignored (like a real validator would for annotations).

Usable as a library (``validate`` returns a list of error strings) and
as a CI script::

    python tests/validate_trace.py trace.json tests/trace_schema.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, expected: str) -> bool:
    if isinstance(value, bool):  # bool is an int subclass; JSON says otherwise
        return expected == "boolean"
    return isinstance(value, _TYPES[expected])


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Errors for ``instance`` against the supported schema subset."""
    errors: list[str] = []
    expected_type = schema.get("type")
    if expected_type is not None and not _type_ok(instance, expected_type):
        return [f"{path}: expected {expected_type}, got {type(instance).__name__}"]
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance!r} below minimum {schema['minimum']!r}")
    if "oneOf" in schema:
        failures = []
        matched = 0
        for index, option in enumerate(schema["oneOf"]):
            sub_errors = validate(instance, option, path)
            if sub_errors:
                title = option.get("title", f"option {index}")
                failures.append(f"[{title}] {sub_errors[0]}")
            else:
                matched += 1
        if matched != 1:
            errors.append(
                f"{path}: matched {matched} of {len(schema['oneOf'])} oneOf "
                f"alternatives ({'; '.join(failures)})"
            )
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub_schema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], sub_schema, f"{path}.{key}"))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{index}]"))
    return errors


def validate_trace_file(trace_path: str | Path,
                        schema_path: str | Path | None = None) -> list[str]:
    """Validate a written trace file; returns error strings (empty = valid)."""
    if schema_path is None:
        schema_path = Path(__file__).parent / "trace_schema.json"
    trace = json.loads(Path(trace_path).read_text())
    schema = json.loads(Path(schema_path).read_text())
    return validate(trace, schema)


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print("usage: validate_trace.py TRACE_JSON [SCHEMA_JSON]")
        return 2
    errors = validate_trace_file(argv[1], argv[2] if len(argv) == 3 else None)
    if errors:
        for error in errors[:20]:
            print(f"INVALID {error}")
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        return 1
    trace = json.loads(Path(argv[1]).read_text())
    print(f"VALID {argv[1]}: {len(trace.get('traceEvents', []))} events")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
