"""Tests for the computation cost and uncertainty models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.platform.resources import WorkerSpec
from repro.simulation.compute import (
    DETERMINISTIC,
    MIN_NOISE_FACTOR,
    ComputeModel,
    UncertaintyModel,
)


def _workers(n=2):
    return [
        WorkerSpec(f"w{i}", speed=2.0, bandwidth=8.0, comm_latency=0.5, comp_latency=0.25)
        for i in range(n)
    ]


class TestUncertaintyModel:
    def test_zero_gamma_is_deterministic(self):
        model = ComputeModel(_workers(), DETERMINISTIC, seed=0)
        times = [model.realized_compute_time(0, 10.0) for _ in range(20)]
        assert all(t == pytest.approx(0.25 + 5.0) for t in times)

    def test_gamma_must_be_below_one(self):
        with pytest.raises(SimulationError):
            UncertaintyModel(gamma=1.0)

    def test_negative_gamma_rejected(self):
        with pytest.raises(SimulationError):
            UncertaintyModel(gamma=-0.1)

    def test_autocorrelation_range(self):
        with pytest.raises(SimulationError):
            UncertaintyModel(gamma=0.1, autocorrelation=1.0)
        with pytest.raises(SimulationError):
            UncertaintyModel(gamma=0.1, autocorrelation=-0.5)

    def test_noise_cov_approximates_gamma(self):
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.10), seed=42)
        times = np.array([model.realized_compute_time(0, 100.0) for _ in range(4000)])
        effective = times - 0.25  # strip the latency
        cov = effective.std() / effective.mean()
        assert cov == pytest.approx(0.10, rel=0.10)

    def test_noise_mean_is_unbiased(self):
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.10), seed=7)
        times = np.array([model.realized_compute_time(0, 100.0) for _ in range(4000)])
        assert times.mean() == pytest.approx(0.25 + 50.0, rel=0.02)

    def test_noise_factor_truncated(self):
        # gamma close to 1 would otherwise produce negative times
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.9), seed=3)
        times = [model.realized_compute_time(0, 10.0) for _ in range(2000)]
        floor = 0.25 + 5.0 * MIN_NOISE_FACTOR
        assert min(times) >= floor - 1e-12

    def test_latency_is_not_noisy(self):
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.5), seed=1)
        # zero-size chunks only pay the (deterministic) latency
        times = [model.realized_compute_time(0, 0.0) for _ in range(10)]
        assert all(t == pytest.approx(0.25) for t in times)

    def test_transfer_noise_independent_of_compute_noise(self):
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.2, comm_gamma=0.0), seed=5)
        transfers = [model.realized_transfer_time(0, 8.0) for _ in range(10)]
        assert all(t == pytest.approx(0.5 + 1.0) for t in transfers)


class TestAutocorrelation:
    def test_ar_noise_is_positively_correlated(self):
        model = ComputeModel(
            _workers(1), UncertaintyModel(gamma=0.2, autocorrelation=0.9), seed=11
        )
        times = np.array([model.realized_compute_time(0, 100.0) for _ in range(3000)])
        x = times[:-1] - times.mean()
        y = times[1:] - times.mean()
        corr = float(np.sum(x * y) / np.sqrt(np.sum(x * x) * np.sum(y * y)))
        assert corr > 0.7

    def test_iid_noise_is_uncorrelated(self):
        model = ComputeModel(_workers(1), UncertaintyModel(gamma=0.2), seed=11)
        times = np.array([model.realized_compute_time(0, 100.0) for _ in range(3000)])
        x = times[:-1] - times.mean()
        y = times[1:] - times.mean()
        corr = float(np.sum(x * y) / np.sqrt(np.sum(x * x) * np.sum(y * y)))
        assert abs(corr) < 0.1

    def test_ar_stationary_cov_matches_gamma(self):
        model = ComputeModel(
            _workers(1), UncertaintyModel(gamma=0.15, autocorrelation=0.6), seed=2
        )
        times = np.array([model.realized_compute_time(0, 100.0) for _ in range(8000)])
        effective = times - 0.25
        assert effective.std() / effective.mean() == pytest.approx(0.15, rel=0.15)

    def test_workers_have_independent_noise_streams(self):
        model = ComputeModel(
            _workers(2), UncertaintyModel(gamma=0.2, autocorrelation=0.9), seed=4
        )
        a = np.array([model.realized_compute_time(0, 100.0) for _ in range(500)])
        b = np.array([model.realized_compute_time(1, 100.0) for _ in range(500)])
        # same spec, different AR state: series should differ
        assert not np.allclose(a, b)


class TestComputeModel:
    def test_seed_reproducibility(self):
        m1 = ComputeModel(_workers(), UncertaintyModel(gamma=0.1), seed=99)
        m2 = ComputeModel(_workers(), UncertaintyModel(gamma=0.1), seed=99)
        a = [m1.realized_compute_time(0, 10.0) for _ in range(50)]
        b = [m2.realized_compute_time(0, 10.0) for _ in range(50)]
        assert a == b

    def test_different_seeds_differ(self):
        m1 = ComputeModel(_workers(), UncertaintyModel(gamma=0.1), seed=1)
        m2 = ComputeModel(_workers(), UncertaintyModel(gamma=0.1), seed=2)
        a = [m1.realized_compute_time(0, 10.0) for _ in range(20)]
        b = [m2.realized_compute_time(0, 10.0) for _ in range(20)]
        assert a != b

    def test_predicted_times_are_noise_free(self):
        model = ComputeModel(_workers(), UncertaintyModel(gamma=0.3), seed=0)
        assert model.predicted_compute_time(0, 10.0) == pytest.approx(5.25)
        assert model.predicted_transfer_time(0, 8.0) == pytest.approx(1.5)

    def test_invalid_worker_index(self):
        model = ComputeModel(_workers(2), seed=0)
        with pytest.raises(SimulationError):
            model.realized_compute_time(5, 1.0)

    def test_empty_worker_list_rejected(self):
        with pytest.raises(SimulationError):
            ComputeModel([], seed=0)

    def test_negative_units_rejected(self):
        model = ComputeModel(_workers(), seed=0)
        with pytest.raises(SimulationError):
            model.realized_compute_time(0, -1.0)
