"""The resilience tier inside DispatchCore: speculation, escalation, DLQ.

Scenario wrappers come from the parity harness; these tests pin the
report annotations, events, metrics, and daemon-level dead-lettering
that sit on top of the (separately pinned) decision sequences.
"""

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.dispatch.core import DispatchCore
from repro.dispatch.parity import (
    FAILURE_TARGET,
    _CrashHost,
    _ProbeCrashCosts,
    _SlowdownHost,
    failure_grid,
    parity_options,
)
from repro.dispatch.protocols import RetryPolicy
from repro.errors import ExecutionError, JobUnrecoverableError
from repro.obs import (
    CHUNK_ESCALATED,
    CHUNK_SPECULATED,
    CHUNK_SPECULATION_LOST,
    CHUNK_SPECULATION_WON,
    WORKER_QUARANTINED,
    Observability,
)
from repro.resilience import (
    EscalationPolicy,
    ResiliencePolicy,
    StragglerPolicy,
)
from repro.simulation.master import SimulationOptions, build_substrate


@pytest.fixture
def division(tmp_path):
    load = tmp_path / "load.bin"
    load.write_bytes(bytes(range(256)) * 4)
    return UniformBytesDivision(load, stepsize=64)


def _run(division, algorithm, options, *, host_wrap=None, probe_costs=None):
    grid = failure_grid()
    substrate = build_substrate(
        grid, seed=0, options=SimulationOptions(**vars(options))
    )
    if host_wrap is not None:
        substrate.host = host_wrap(substrate.host)
    if probe_costs is not None:
        substrate.probe_costs = probe_costs
    core = DispatchCore(
        grid,
        make_scheduler(algorithm),
        division.total_units,
        substrate=substrate,
        division=division,
        options=options,
    )
    return core, core.run()


class TestSpeculation:
    def test_won_speculation_annotations_events_and_metrics(self, division):
        obs = Observability.armed()
        options = parity_options(
            resilience=ResiliencePolicy(straggler=StragglerPolicy(min_wait=5.0)),
            observability=obs,
        )
        core, report = _run(
            division,
            "simple-1",
            options,
            host_wrap=lambda host: _SlowdownHost(host, FAILURE_TARGET),
        )
        report.validate()
        assert report.annotations["speculated_chunks"] == 1
        assert report.annotations["speculation_wins"] == 1
        assert report.annotations["speculation_losses"] == 0
        assert report.annotations["resilience_log"] == [
            ["speculate", 1, 1, 0],
            ["speculation_won", 1, 1, 0],
        ]
        (spec,) = obs.ring_events(CHUNK_SPECULATED)
        assert spec.fields["chunk_id"] == 1
        assert spec.fields["from_worker"] == f"w{FAILURE_TARGET}"
        assert spec.fields["to_worker"] == "w0"
        assert len(obs.ring_events(CHUNK_SPECULATION_WON)) == 1
        assert obs.ring_events(CHUNK_SPECULATION_LOST) == []
        from repro.obs.metrics import parse_prometheus

        samples = parse_prometheus(obs.metrics.render_prometheus())
        assert samples["repro_resilience_speculations_total"] == 1
        assert samples["repro_resilience_speculation_wins_total"] == 1
        assert samples["repro_resilience_speculation_losses_total"] == 0

    def test_every_unit_of_load_is_counted_exactly_once(self, division):
        """The abandoned original must not double-count its units."""
        options = parity_options(
            resilience=ResiliencePolicy(straggler=StragglerPolicy(min_wait=5.0)),
        )
        _core, report = _run(
            division,
            "simple-1",
            options,
            host_wrap=lambda host: _SlowdownHost(host, FAILURE_TARGET),
        )
        assert sum(c.units for c in report.chunks) == report.total_load

    def test_speculation_disabled_by_default(self, division):
        """No resilience policy -> a swallowed chunk hangs until the

        simulator's stall guard trips, not until a twin rescues it.
        """
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="no further progress"):
            _run(
                division,
                "simple-1",
                parity_options(),
                host_wrap=lambda host: _SlowdownHost(host, FAILURE_TARGET),
            )


class TestEscalation:
    def test_crash_escalates_then_quarantines(self, division):
        obs = Observability.armed()
        options = parity_options(
            retry=RetryPolicy(max_attempts=2),
            resilience=ResiliencePolicy(
                escalation=EscalationPolicy(quarantine_after=2)
            ),
            observability=obs,
        )
        core, report = _run(
            division,
            "simple-5",
            options,
            host_wrap=lambda host: _CrashHost(host, FAILURE_TARGET),
        )
        report.validate()
        assert report.annotations["escalated_chunks"] == 2
        assert report.annotations["quarantined_workers"] == [FAILURE_TARGET]
        assert core.quarantined_workers == {FAILURE_TARGET}
        assert len(obs.ring_events(CHUNK_ESCALATED)) == 2
        (quarantine,) = obs.ring_events(WORKER_QUARANTINED)
        assert quarantine.fields["worker_index"] == FAILURE_TARGET
        # the failure chain narrates the whole recovery
        assert any("quarantined" in line for line in core.failure_chain)
        # every chunk ended up on a live worker
        assert all(c.worker_index != FAILURE_TARGET for c in report.chunks)

    def test_escalation_disabled_preserves_fail_fast(self, division):
        options = parity_options(retry=RetryPolicy(max_attempts=2))
        with pytest.raises(ExecutionError, match="injected"):
            _run(
                division,
                "simple-5",
                options,
                host_wrap=lambda host: _CrashHost(host, FAILURE_TARGET),
            )

    def test_every_worker_dead_raises_unrecoverable_with_chain(self, division):
        options = parity_options(
            resilience=ResiliencePolicy(
                escalation=EscalationPolicy(quarantine_after=1)
            ),
        )
        with pytest.raises(JobUnrecoverableError) as excinfo:
            _run(
                division,
                "simple-2",
                options,
                host_wrap=lambda host: _AllCrashHost(host),
            )
        chain = excinfo.value.failure_chain
        assert len(chain) >= 3  # one failure + quarantine per worker at least
        assert any("quarantined" in line for line in chain)


class _AllCrashHost(_CrashHost):
    """Every worker crashes every chunk: the job is unrecoverable."""

    def __init__(self, inner) -> None:
        super().__init__(inner, target=-1)

    def enqueue(self, chunk, payload) -> None:
        self._core.chunk_failed(chunk, "injected: total grid failure")


class TestProbeFailureTolerance:
    def test_probe_crash_quarantines_before_first_dispatch(self, division):
        options = parity_options(
            estimate_source="probe",
            resilience=ResiliencePolicy(escalation=EscalationPolicy()),
        )
        core, report = _run(
            division,
            "umr",
            options,
            probe_costs=_ProbeCrashCosts(failure_grid(), FAILURE_TARGET),
        )
        report.validate()
        assert core.resilience_log[0] == ("probe_failure", FAILURE_TARGET)
        assert core.resilience_log[1] == ("quarantine", FAILURE_TARGET)
        assert all(c.worker_index != FAILURE_TARGET for c in report.chunks)

    def test_all_probes_failing_is_unrecoverable(self, division):
        options = parity_options(
            estimate_source="probe",
            resilience=ResiliencePolicy(escalation=EscalationPolicy()),
        )

        class _AllProbesFail(_ProbeCrashCosts):
            def realized_compute_time(self, index, units, **kwargs):
                raise ExecutionError(f"injected: worker {index} dead")

        with pytest.raises(JobUnrecoverableError, match="every worker"):
            _run(
                division,
                "umr",
                options,
                probe_costs=_AllProbesFail(failure_grid(), FAILURE_TARGET),
            )


class TestDaemonDeadLetterQueue:
    def _daemon(self, tmp_path, monkeypatch, *, fail_times):
        from repro.apst.daemon import APSTDaemon, DaemonConfig

        daemon = APSTDaemon(
            failure_grid(),
            config=DaemonConfig(base_dir=tmp_path, seed=0),
        )
        state = {"left": fail_times}

        original = APSTDaemon._simulate

        def flaky(self, scheduler, division, probe_units):
            if state["left"] > 0:
                state["left"] -= 1
                raise JobUnrecoverableError(
                    "every worker failed its probe",
                    failure_chain=["worker w1 quarantined: probe failure"],
                )
            return original(self, scheduler, division, probe_units)

        monkeypatch.setattr(APSTDaemon, "_simulate", flaky)
        return daemon

    def _submit(self, daemon, tmp_path):
        load = tmp_path / "load.bin"
        if not load.exists():
            load.write_bytes(bytes(range(256)) * 4)
        spec = f"""
        <task executable="app" input="{load}">
          <divisibility input="{load}" method="uniform" start="0"
                        steptype="bytes" stepsize="64" algorithm="simple-2"/>
        </task>
        """
        xml = tmp_path / "task.xml"
        xml.write_text(spec)
        return daemon.submit(xml)

    def test_unrecoverable_job_parks_with_failure_chain(
        self, tmp_path, monkeypatch
    ):
        daemon = self._daemon(tmp_path, monkeypatch, fail_times=1)
        job_id = self._submit(daemon, tmp_path)
        daemon.run_pending(raise_on_error=False)
        from repro.apst.daemon import JobState

        assert daemon.job(job_id).state is JobState.FAILED
        (entry,) = daemon.dlq_entries()
        assert entry.job_id == job_id
        assert entry.replayed_as is None
        assert any("quarantined" in line for line in entry.failure_chain)
        assert any("JobUnrecoverableError" in line for line in entry.failure_chain)

    def test_replay_resubmits_and_marks_entry(self, tmp_path, monkeypatch):
        daemon = self._daemon(tmp_path, monkeypatch, fail_times=1)
        job_id = self._submit(daemon, tmp_path)
        daemon.run_pending(raise_on_error=False)
        (entry,) = daemon.dlq_entries()
        new_id = daemon.dlq_replay(entry.entry_id)
        assert new_id != job_id
        daemon.run_pending(raise_on_error=False)
        from repro.apst.daemon import JobState

        assert daemon.job(new_id).state is JobState.DONE
        (entry,) = daemon.dlq_entries()
        assert entry.replayed_as == new_id

    def test_replay_unknown_entry_and_purge(self, tmp_path, monkeypatch):
        from repro.errors import ServiceError

        daemon = self._daemon(tmp_path, monkeypatch, fail_times=1)
        self._submit(daemon, tmp_path)
        daemon.run_pending(raise_on_error=False)
        with pytest.raises(ServiceError, match="no DLQ entry with id 99"):
            daemon.dlq_replay(99)
        assert daemon.dlq_purge() == 1
        assert daemon.dlq_entries() == []
        assert daemon.dlq_purge() == 0

    def test_recoverable_failures_do_not_park(self, tmp_path, monkeypatch):
        from repro.apst.daemon import APSTDaemon, DaemonConfig

        daemon = APSTDaemon(
            failure_grid(), config=DaemonConfig(base_dir=tmp_path, seed=0)
        )

        def broken(self, scheduler, division, probe_units):
            raise ExecutionError("transient: not a dead-letter case")

        monkeypatch.setattr(APSTDaemon, "_simulate", broken)
        self._submit(daemon, tmp_path)
        daemon.run_pending(raise_on_error=False)
        assert daemon.dlq_entries() == []
