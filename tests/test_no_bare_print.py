"""Repository hygiene: no bare ``print(`` diagnostics inside the library.

Library code must report through the ``repro.obs`` logging bridge (so that
``-v``/``-q`` control verbosity uniformly) or return strings for a renderer
to display.  Bare prints are allowed only in the user-facing entry points
below, which *are* the renderers, plus the worker subprocess whose stdout
IS its wire protocol.  CI enforces the same rule via ruff's flake8-print
(T201) with matching per-file ignores; this test keeps the gate alive in
environments without ruff.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Paths (relative to src/repro) where print() is the intended output channel.
ALLOWED = {
    "cli.py",  # CLI renderer: stdout is the product
    "apst/console.py",  # interactive console renderer
    "analysis/lint/cli.py",  # lint reporter: stdout is the product
    "execution/worker_proc.py",  # JSON-lines protocol over stdout
    "net/worker.py",  # socket worker: stdout carries the ready/fatal announce line
    "workloads/video_callback.py",  # standalone callback script (stderr usage)
}

# A call to the print builtin: start-of-line or preceded by a non-attribute
# character, so ``self.stdout.print(...)`` or ``pprint(`` do not match.
_BARE_PRINT = re.compile(r"(?:^|[^.\w])print\(")


def _offending_lines(path: Path) -> list[int]:
    hits = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        code = line.split("#", 1)[0]
        if _BARE_PRINT.search(code):
            hits.append(lineno)
    return hits


def test_no_bare_print_outside_renderers():
    offenders = {}
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in ALLOWED:
            continue
        lines = _offending_lines(path)
        if lines:
            offenders[rel] = lines
    assert not offenders, (
        "bare print() in library code -- use the repro.obs logging bridge "
        f"(get_logger) instead: {offenders}"
    )


def test_allowlist_entries_exist():
    # Keep the allowlist honest: drop entries when the file goes away.
    for rel in ALLOWED:
        assert (SRC / rel).is_file(), f"stale allowlist entry: {rel}"
