"""Tests for position-dependent cost profiles."""

import pytest

from repro.core.registry import make_scheduler
from repro.errors import SimulationError
from repro.simulation.costprofile import (
    CostProfile,
    PiecewiseProfile,
    hotspot_profile,
    profile_from_record_lengths,
)
from repro.simulation.master import simulate_run


class TestPiecewiseProfile:
    def test_normalized_to_unit_mean(self):
        profile = PiecewiseProfile([(0.0, 50.0, 1.0), (50.0, 100.0, 3.0)])
        assert profile.mean_cost(0.0, 100.0) == pytest.approx(1.0)

    def test_relative_costs_preserved(self):
        profile = PiecewiseProfile([(0.0, 50.0, 1.0), (50.0, 100.0, 3.0)])
        cheap = profile.mean_cost(0.0, 50.0)
        dear = profile.mean_cost(50.0, 50.0)
        assert dear / cheap == pytest.approx(3.0)

    def test_mean_over_straddling_range(self):
        profile = PiecewiseProfile([(0.0, 50.0, 1.0), (50.0, 100.0, 3.0)])
        # 25 cheap units + 25 dear units
        mid = profile.mean_cost(25.0, 50.0)
        assert mid == pytest.approx(profile.mean_cost(0.0, 100.0), rel=1e-9)

    def test_cost_at_positions(self):
        profile = PiecewiseProfile([(0.0, 10.0, 1.0), (10.0, 20.0, 4.0)])
        assert profile.cost_at(5.0) < profile.cost_at(15.0)

    def test_gap_rejected(self):
        with pytest.raises(SimulationError, match="gap"):
            PiecewiseProfile([(0.0, 10.0, 1.0), (11.0, 20.0, 1.0)])

    def test_must_start_at_zero(self):
        with pytest.raises(SimulationError, match="start at offset 0"):
            PiecewiseProfile([(5.0, 10.0, 1.0)])

    def test_invalid_segments(self):
        with pytest.raises(SimulationError):
            PiecewiseProfile([])
        with pytest.raises(SimulationError):
            PiecewiseProfile([(0.0, 0.0, 1.0)])
        with pytest.raises(SimulationError):
            PiecewiseProfile([(0.0, 10.0, -1.0)])

    def test_out_of_range_query(self):
        profile = PiecewiseProfile([(0.0, 10.0, 1.0)])
        with pytest.raises(SimulationError):
            profile.mean_cost(5.0, 10.0)
        with pytest.raises(SimulationError):
            profile.mean_cost(0.0, 0.0)


class TestHotspotProfile:
    def test_hotspot_costs_more(self):
        profile = hotspot_profile(300.0, hotspots=[(1 / 3, 2 / 3)], scale=2.0)
        assert profile.mean_cost(100.0, 100.0) > profile.mean_cost(0.0, 100.0)
        assert profile.mean_cost(0.0, 300.0) == pytest.approx(1.0)

    def test_bad_hotspot_rejected(self):
        with pytest.raises(SimulationError):
            hotspot_profile(100.0, hotspots=[(0.5, 0.4)])


class TestRecordLengthProfile:
    def test_long_records_are_hot(self):
        profile = profile_from_record_lengths([10, 10, 1000, 10])
        # the third record's region: offset after two (10+1)-byte records
        hot = profile.cost_at(22.0 + 500.0)
        cold = profile.cost_at(5.0)
        assert hot > cold * 10  # quadratic default: 100x per-byte cost

    def test_total_matches_database_size(self):
        profile = profile_from_record_lengths([3, 4, 5])
        assert profile.total_units == pytest.approx(3 + 4 + 5 + 3)

    def test_linear_cost_gives_flat_profile(self):
        profile = profile_from_record_lengths([10, 500, 10], cost_exponent=1.0)
        assert profile.cost_at(5.0) == pytest.approx(profile.cost_at(100.0))

    def test_whole_load_mean_is_unit(self):
        profile = profile_from_record_lengths([10, 50, 200, 10])
        assert profile.mean_cost(0.0, profile.total_units) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            profile_from_record_lengths([])
        with pytest.raises(SimulationError):
            profile_from_record_lengths([10], cost_exponent=0.5)


class TestSimulationIntegration:
    def test_uniform_profile_changes_nothing(self, small_grid):
        base = simulate_run(small_grid, make_scheduler("umr"), total_load=800.0,
                            seed=0)
        uniform = simulate_run(small_grid, make_scheduler("umr"), total_load=800.0,
                               seed=0, cost_profile=CostProfile())
        assert uniform.makespan == pytest.approx(base.makespan)

    def test_hotspot_load_conserved_and_valid(self, small_grid):
        profile = hotspot_profile(800.0, hotspots=[(0.6, 0.9)], scale=3.0)
        report = simulate_run(small_grid, make_scheduler("wf"), total_load=800.0,
                              seed=0, cost_profile=profile)
        report.validate()
        assert sum(c.units for c in report.chunks) == pytest.approx(800.0)

    def test_hot_chunks_take_longer(self, small_grid):
        profile = hotspot_profile(800.0, hotspots=[(0.5, 1.0)], scale=4.0)
        report = simulate_run(small_grid, make_scheduler("simple-1"),
                              total_load=800.0, seed=0, cost_profile=profile)
        per_unit = {
            c.worker_index: c.compute_time / c.units for c in report.chunks
        }
        # workers 0-1 got the cold half, workers 2-3 the hot half
        assert per_unit[3] > per_unit[0] * 2.0

    def test_adaptive_schedulers_absorb_hotspots_better(self, small_grid):
        """A hotspot acts like deterministic 'uncertainty': WF's small final
        chunks rebalance around it; SIMPLE-1 eats the full imbalance."""
        profile = hotspot_profile(2000.0, hotspots=[(0.7, 1.0)], scale=3.0)
        wf = simulate_run(small_grid, make_scheduler("wf"), total_load=2000.0,
                          seed=0, cost_profile=profile)
        simple = simulate_run(small_grid, make_scheduler("simple-1"),
                              total_load=2000.0, seed=0, cost_profile=profile)
        assert wf.makespan < simple.makespan * 0.8

    def test_profile_inflates_observed_gamma(self, small_grid):
        """Position-dependent costs register as prediction error -- the
        estimator can't tell data-dependence from noise (nor could the
        paper's: HMMER's gamma in Table 1 IS data-dependence)."""
        profile = hotspot_profile(2000.0, hotspots=[(0.4, 0.6)], scale=3.0)
        report = simulate_run(small_grid, make_scheduler("fixed-rumr"),
                              total_load=2000.0, seed=0, cost_profile=profile)
        assert report.observed_gamma() > 0.05
