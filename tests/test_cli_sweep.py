"""Tests for the apst-dv sweep subcommand."""

import pytest

from repro.cli import main


class TestSweepCommand:
    def test_table_and_crossover_printed(self, capsys):
        code = main([
            "sweep", "--platform", "das2", "--gammas", "0.0,0.15",
            "--algorithms", "umr,wf", "--runs", "2", "--load", "4000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gamma sweep" in out
        assert "umr" in out and "wf" in out
        assert "overtakes" in out

    def test_csv_written(self, capsys, tmp_path):
        csv_path = tmp_path / "series.csv"
        code = main([
            "sweep", "--gammas", "0.0", "--algorithms", "umr",
            "--runs", "1", "--load", "2000", "--csv", str(csv_path),
        ])
        assert code == 0
        assert csv_path.read_text().startswith("gamma,umr")

    def test_bad_gammas_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--gammas", "zero,one"])

    def test_empty_gammas_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--gammas", ","])
