"""Property-based tests (hypothesis) for simulation-wide invariants.

For *any* platform in a broad random family and *any* of the paper's
algorithms, a completed run must conserve the load, respect causality on
every chunk, keep the master link exclusive, and never beat the physical
lower bounds (aggregate compute rate; serialized link).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_scheduler
from repro.platform.resources import Grid, WorkerSpec
from repro.simulation.master import simulate_run

platforms = st.builds(
    lambda speeds, ratio, nlat, clat: Grid(
        workers=tuple(
            WorkerSpec(
                name=f"w{i}",
                speed=s,
                bandwidth=s * ratio,
                comm_latency=nlat,
                comp_latency=clat,
            )
            for i, s in enumerate(speeds)
        )
    ),
    speeds=st.lists(st.floats(min_value=0.2, max_value=5.0), min_size=1, max_size=8),
    ratio=st.floats(min_value=2.0, max_value=60.0),
    nlat=st.floats(min_value=0.0, max_value=5.0),
    clat=st.floats(min_value=0.0, max_value=2.0),
)

algorithms = st.sampled_from(
    ["simple-1", "simple-3", "umr", "wf", "rumr", "fixed-rumr", "gss"]
)


@given(
    grid=platforms,
    algorithm=algorithms,
    load=st.floats(min_value=50.0, max_value=5000.0),
    gamma=st.sampled_from([0.0, 0.1, 0.25]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=80, deadline=None)
def test_any_run_satisfies_global_invariants(grid, algorithm, load, gamma, seed):
    report = simulate_run(
        grid, make_scheduler(algorithm), total_load=load, gamma=gamma, seed=seed
    )
    # validate() checks causality, conservation, and link exclusivity
    report.validate()

    # physical lower bound 1: aggregate compute rate (noise can only make a
    # chunk at most 1/MIN_NOISE_FACTOR faster; use the hard floor)
    from repro.simulation.compute import MIN_NOISE_FACTOR

    ideal = load / grid.total_speed
    assert report.makespan >= ideal * MIN_NOISE_FACTOR - 1e-6

    # physical lower bound 2: all load crosses the serialized link
    serial_comm = sum(
        c.units / grid.workers[c.worker_index].bandwidth for c in report.chunks
    )
    assert report.makespan >= serial_comm * 0.999 - 1e-6

    # every worker that received load did positive work
    for summary in report.worker_summaries():
        assert summary.busy_time > 0
        assert summary.units > 0


@given(
    grid=platforms,
    load=st.floats(min_value=50.0, max_value=2000.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_umr_never_loses_to_its_own_prediction_badly(grid, load, seed):
    """At gamma = 0 the realized UMR makespan must stay near the plan's
    prediction -- a drifting gap would mean the dispatch model and the
    analytic model disagree."""
    scheduler = make_scheduler("umr")
    report = simulate_run(grid, scheduler, total_load=load, seed=seed)
    predicted = scheduler.plan.stats.predicted_makespan
    assert report.makespan <= predicted * 1.35 + 5.0


@given(
    grid=platforms,
    algorithm=algorithms,
    load=st.floats(min_value=50.0, max_value=2000.0),
)
@settings(max_examples=40, deadline=None)
def test_gamma_zero_runs_are_deterministic(grid, algorithm, load):
    a = simulate_run(grid, make_scheduler(algorithm), total_load=load, seed=1)
    b = simulate_run(grid, make_scheduler(algorithm), total_load=load, seed=2)
    assert a.makespan == b.makespan
    assert a.num_chunks == b.num_chunks
