"""Tests for the parameter sweep helper."""

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.analysis.sweeps import SweepResult, run_sweep
from repro.errors import ReproError
from repro.platform.resources import Cluster, Grid


def _grid(n=3):
    return Grid.from_clusters(
        Cluster.homogeneous("t", n, speed=1.0, bandwidth=10.0,
                            comm_latency=0.3, comp_latency=0.1)
    )


def _gamma_config(gamma):
    return ExperimentConfig(
        label=f"g={gamma}", grid_factory=_grid, total_load=400.0,
        gamma=gamma, algorithms=("umr", "wf"), runs=2,
    )


class TestRunSweep:
    def test_series_aligned_with_values(self):
        sweep = run_sweep("gamma", [0.0, 0.2], _gamma_config)
        assert sweep.values == (0.0, 0.2)
        assert set(sweep.series) == {"umr", "wf"}
        assert all(len(v) == 2 for v in sweep.series.values())

    def test_empty_values_rejected(self):
        with pytest.raises(ReproError):
            run_sweep("gamma", [], _gamma_config)

    def test_makespans_increase_with_gamma_for_umr(self):
        sweep = run_sweep("gamma", [0.0, 0.25], _gamma_config)
        assert sweep.series["umr"][1] > sweep.series["umr"][0]


class TestSweepResult:
    def test_slowdown_series_zero_for_best(self):
        sweep = SweepResult(
            parameter="x", values=(1, 2),
            series={"a": [10.0, 30.0], "b": [20.0, 15.0]},
        )
        slow = sweep.slowdown_series()
        assert slow["a"] == [pytest.approx(0.0), pytest.approx(1.0)]
        assert slow["b"] == [pytest.approx(1.0), pytest.approx(0.0)]

    def test_crossover_found(self):
        sweep = SweepResult(
            parameter="x", values=(1, 2, 3),
            series={"a": [10.0, 10.0, 10.0], "b": [12.0, 11.0, 9.0]},
        )
        assert sweep.crossover("a", "b") == 3

    def test_no_crossover(self):
        sweep = SweepResult(
            parameter="x", values=(1, 2),
            series={"a": [10.0, 10.0], "b": [12.0, 11.0]},
        )
        assert sweep.crossover("a", "b") is None

    def test_unknown_algorithm(self):
        sweep = SweepResult(parameter="x", values=(1,), series={"a": [1.0]})
        with pytest.raises(ReproError):
            sweep.crossover("a", "zz")
