"""Property-based tests (hypothesis) for load division invariants.

The core safety property of APST-DV's division layer: no matter what
sizes a scheduling algorithm requests, the load is consumed exactly once,
front to back, in positive chunks that always end on valid cut-offs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apst.division import (
    IndexDivision,
    LoadTracker,
    UniformUnitsDivision,
)

requests = st.lists(
    st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
    min_size=1,
    max_size=200,
)


@given(
    total=st.floats(min_value=5.0, max_value=2000.0),
    step=st.floats(min_value=0.5, max_value=50.0),
    sizes=requests,
)
@settings(max_examples=200, deadline=None)
def test_tracker_consumes_exactly_the_load(total, step, sizes):
    division = UniformUnitsDivision(total=total, step=min(step, total))
    tracker = LoadTracker(division)
    extents = []
    i = 0
    while not tracker.exhausted:
        extents.append(tracker.take(sizes[i % len(sizes)]))
        i += 1
        assert i < 100_000, "tracker failed to terminate"

    # chunks are contiguous, non-overlapping, and cover [0, total)
    assert extents[0].offset == 0.0
    for a, b in zip(extents, extents[1:]):
        assert abs(b.offset - a.end) < 1e-9 * max(1.0, total)
    assert abs(extents[-1].end - total) < 1e-6 * max(1.0, total)
    # every chunk is positive
    assert all(e.units > 0 for e in extents)


@given(
    total=st.floats(min_value=10.0, max_value=1000.0),
    step=st.floats(min_value=1.0, max_value=20.0),
    sizes=requests,
)
@settings(max_examples=100, deadline=None)
def test_interior_cutoffs_are_step_multiples(total, step, sizes):
    step = min(step, total / 2)
    division = UniformUnitsDivision(total=total, step=step)
    tracker = LoadTracker(division)
    i = 0
    while not tracker.exhausted:
        extent = tracker.take(sizes[i % len(sizes)])
        i += 1
        if extent.end < total - 1e-9:  # interior cutoff
            multiple = extent.end / step
            assert abs(multiple - round(multiple)) < 1e-6


@given(
    offsets=st.lists(st.integers(min_value=1, max_value=999), min_size=1,
                     max_size=50, unique=True),
    sizes=requests,
)
@settings(max_examples=100, deadline=None)
def test_index_division_only_cuts_at_listed_offsets(tmp_path_factory, offsets, sizes):
    tmp = tmp_path_factory.mktemp("idx")
    load = tmp / "load.bin"
    load.write_bytes(bytes(1000))
    idx = tmp / "load.idx"
    idx.write_text("\n".join(str(o) for o in sorted(offsets)))
    division = IndexDivision(load, idx)
    valid = set(division.cutoffs)
    tracker = LoadTracker(division)
    i = 0
    while not tracker.exhausted:
        extent = tracker.take(sizes[i % len(sizes)])
        i += 1
        assert extent.end in valid
    assert i <= len(valid)


@given(
    total=st.floats(min_value=1.0, max_value=1000.0),
    step=st.floats(min_value=0.1, max_value=10.0),
    position=st.floats(min_value=0.0, max_value=1000.0),
)
@settings(max_examples=200, deadline=None)
def test_nearest_cutoff_is_idempotent_and_bounded(total, step, position):
    division = UniformUnitsDivision(total=total, step=min(step, total))
    snapped = division.nearest_cutoff(position)
    assert 0.0 <= snapped <= total
    assert division.nearest_cutoff(snapped) == snapped
