"""Integration tests for the APST-DV daemon and client."""

import pytest

from repro.apst.client import APSTClient
from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.errors import SpecificationError
from repro.platform.presets import das2_cluster


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(255) * 80)  # 20400 bytes
    (tmp_path / "probe.bin").write_bytes(bytes(100))
    return tmp_path


TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


def _daemon(workspace, **kwargs):
    grid = das2_cluster(nodes=4, total_load=20400.0)
    return APSTDaemon(grid, config=DaemonConfig(base_dir=workspace, seed=3, **kwargs))


class TestDaemon:
    def test_submit_and_run(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        assert daemon.job(job_id).state is JobState.QUEUED
        executed = daemon.run_pending()
        assert executed == [job_id]
        job = daemon.job(job_id)
        assert job.state is JobState.DONE
        assert job.report is not None
        assert job.report.total_load == 20400.0

    def test_algorithm_override(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML, algorithm="simple-1")
        daemon.run_pending()
        assert daemon.report(job_id).algorithm == "simple-1"

    def test_spec_algorithm_used_by_default(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        daemon.run_pending()
        assert daemon.report(job_id).algorithm == "umr"

    def test_probe_size_from_probe_file(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        daemon.run_pending()
        # probe.bin is 100 bytes -> probe phase sized accordingly
        assert daemon.report(job_id).probe_time > 0

    def test_missing_input_marks_job_failed(self, workspace):
        daemon = _daemon(workspace)
        xml = TASK_XML.replace("load.bin", "missing.bin")
        job_id = daemon.submit(xml)
        with pytest.raises(Exception):
            daemon.run_pending()
        assert daemon.job(job_id).state is JobState.FAILED
        assert "missing.bin" in daemon.job(job_id).error

    def test_report_before_run_raises(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        with pytest.raises(SpecificationError, match="no report"):
            daemon.report(job_id)

    def test_unknown_job_id(self, workspace):
        daemon = _daemon(workspace)
        with pytest.raises(SpecificationError, match="no job"):
            daemon.job(42)

    def test_multiple_jobs_back_to_back(self, workspace):
        daemon = _daemon(workspace)
        ids = [daemon.submit(TASK_XML, algorithm=a)
               for a in ("simple-1", "umr", "wf")]
        daemon.run_pending()
        makespans = {daemon.report(i).algorithm: daemon.report(i).makespan
                     for i in ids}
        assert makespans["umr"] < makespans["simple-1"]

    def test_gamma_flows_into_simulation(self, workspace):
        noisy = _daemon(workspace, gamma=0.2)
        job_id = noisy.submit(TASK_XML)
        noisy.run_pending()
        assert noisy.report(job_id).gamma_configured == 0.2


class TestLifecycle:
    def test_cancel_queued_job(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        job = daemon.cancel(job_id)
        assert job.state is JobState.CANCELLED
        assert daemon.run_pending() == []  # cancelled jobs are not run

    def test_cancel_done_job_raises(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        daemon.run_pending()
        with pytest.raises(SpecificationError, match="it is done"):
            daemon.cancel(job_id)

    def test_duplicate_cancel_raises(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        daemon.cancel(job_id)
        with pytest.raises(SpecificationError, match="it is cancelled"):
            daemon.cancel(job_id)

    def test_cancel_unknown_job_raises(self, workspace):
        with pytest.raises(SpecificationError, match="no job"):
            _daemon(workspace).cancel(42)

    def test_drain_runs_queue_then_refuses(self, workspace):
        daemon = _daemon(workspace)
        job_id = daemon.submit(TASK_XML)
        assert daemon.drain() == [job_id]
        assert daemon.draining
        with pytest.raises(SpecificationError, match="draining"):
            daemon.submit(TASK_XML)

    def test_stats_counts_per_state(self, workspace):
        daemon = _daemon(workspace)
        daemon.submit(TASK_XML)
        daemon.run_pending()
        cancelled = daemon.submit(TASK_XML)
        daemon.cancel(cancelled)
        daemon.submit(TASK_XML)
        stats = daemon.stats()
        assert stats["done"] == 1
        assert stats["cancelled"] == 1
        assert stats["queued"] == 1
        assert stats["total"] == 3
        assert stats["draining"] == 0


class TestClient:
    def test_submit_and_run_convenience(self, workspace):
        client = APSTClient(_daemon(workspace))
        report = client.submit_and_run(TASK_XML)
        assert report.makespan > 0

    def test_status_lines(self, workspace):
        client = APSTClient(_daemon(workspace))
        assert client.status() == "no jobs submitted"
        job_id = client.submit(TASK_XML)
        assert "queued" in client.status(job_id)
        client.run()
        status = client.status()
        assert "done" in status and "makespan" in status

    def test_task_file_path_submission(self, workspace):
        spec_file = workspace / "task.xml"
        spec_file.write_text(TASK_XML)
        client = APSTClient(_daemon(workspace))
        report = client.submit_and_run(spec_file)
        assert report.total_load == 20400.0

    def test_outputs_requires_done_job(self, workspace):
        client = APSTClient(_daemon(workspace))
        job_id = client.submit(TASK_XML)
        with pytest.raises(SpecificationError, match="queued"):
            client.outputs(job_id)

    def test_outputs_surfaces_failure_cause(self, workspace):
        """A FAILED job's error must appear in the outputs() message."""
        client = APSTClient(_daemon(workspace))
        job_id = client.submit(TASK_XML.replace("load.bin", "missing.bin"))
        with pytest.raises(Exception):
            client.run()
        with pytest.raises(SpecificationError, match="missing.bin"):
            client.outputs(job_id)

    def test_status_shows_warnings(self, workspace):
        client = APSTClient(_daemon(workspace))
        job_id = client.submit(TASK_XML)
        client.job(job_id).warnings.append("[warn] probe file is tiny")
        status = client.status(job_id)
        assert "warning: [warn] probe file is tiny" in status

    def test_client_cancel_drain_stats_passthrough(self, workspace):
        client = APSTClient(_daemon(workspace))
        first = client.submit(TASK_XML)
        second = client.submit(TASK_XML)
        assert client.cancel(first).state is JobState.CANCELLED
        assert client.drain() == [second]
        assert client.stats()["draining"] == 1
        assert "cancelled" in client.status(first)
