"""Grand integration: the whole pipeline, surface to surface.

XML specification -> pre-flight -> daemon -> scheduler -> backend ->
execution report -> JSON round trip -> Gantt -> CSV -> history, in one
flow -- the test a release would be gated on.
"""

import json

import pytest

from repro.analysis.gantt import overlap_metrics, render_gantt
from repro.apst.client import APSTClient
from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.apst.history import ApplicationHistory
from repro.apst.report_io import chunks_to_csv, load_report, save_report
from repro.execution.local import LocalExecutionBackend
from repro.platform.presets import das2_cluster
from repro.platform.resources import Cluster, Grid
from repro.workloads.video import VideoEncodeApp, avimerge, mencoder_encode, write_dv_file

TASK_XML = """
<task executable="a_divisible_app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="fixed-rumr"
                probe="probe.bin"/>
</task>
"""


class TestSimulationFullStack:
    def test_xml_to_artifacts(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        (tmp_path / "probe.bin").write_bytes(bytes(40))
        daemon = APSTDaemon(
            das2_cluster(8, total_load=10_000.0),
            config=DaemonConfig(
                base_dir=tmp_path, gamma=0.10, seed=11,
                history_path=tmp_path / "history.json",
            ),
        )
        client = APSTClient(daemon)

        job_id = client.submit(TASK_XML)
        client.run()
        job = client.job(job_id)
        assert job.state is JobState.DONE
        assert job.warnings == []

        report = client.report(job_id)
        report.validate()

        # artifacts
        json_path = save_report(report, tmp_path / "report.json")
        assert load_report(json_path).makespan == report.makespan
        csv_text = chunks_to_csv(report)
        assert csv_text.count("\n") == report.num_chunks + 1
        gantt = render_gantt(report)
        assert "fixed-rumr" in gantt
        metrics = overlap_metrics(report)
        assert 0.0 < metrics.overlap_fraction <= 1.0

        # history recorded with the observed gamma
        history = ApplicationHistory.load(tmp_path / "history.json")
        assert history.run_count("a_divisible_app:load.bin") == 1

    def test_status_flows_through_client(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(5_000))
        daemon = APSTDaemon(
            das2_cluster(4, total_load=5_000.0),
            config=DaemonConfig(base_dir=tmp_path, seed=1),
        )
        client = APSTClient(daemon)
        job_id = client.submit(TASK_XML.replace(' probe="probe.bin"', ""))
        assert "queued" in client.status()
        client.run()
        assert "makespan" in client.status(job_id)


class TestRealBackendFullStack:
    def test_video_pipeline_through_every_layer(self, tmp_path):
        frames = 30
        video = tmp_path / "input.tdv"
        write_dv_file(video, frames=frames, frame_bytes=256, seed=9)
        xml = f"""
        <task executable="enc" input="input.tdv" output="out.tm4v">
          <divisibility input="input.tdv" method="callback" load="{frames}"
                        callback="python -m repro.workloads.video_callback"
                        arguments="input.tdv"
                        algorithm="wf" probe_load="3"/>
        </task>
        """
        grid = Grid.from_clusters(
            Cluster.homogeneous("lan", 3, speed=15.0, bandwidth=150.0,
                                comm_latency=0.1, comp_latency=0.05)
        )
        backend = LocalExecutionBackend(tmp_path / "work", app=VideoEncodeApp(),
                                        time_scale=0.01)
        daemon = APSTDaemon(grid, backend=backend,
                            config=DaemonConfig(base_dir=tmp_path))
        client = APSTClient(daemon)
        job_id = client.submit(xml)
        client.run()

        report = client.report(job_id)
        assert report.annotations["backend"] == "local-execution"
        assert sum(c.units for c in report.chunks) == pytest.approx(frames)

        merged = tmp_path / "out.tm4v"
        avimerge(client.outputs(job_id), merged)
        serial = tmp_path / "serial.tm4v"
        mencoder_encode(video, serial)
        assert merged.read_bytes() == serial.read_bytes()

        # the report of a real run serializes and validates like any other
        payload = json.loads(
            save_report(report, tmp_path / "real.json").read_text()
        )
        assert payload["algorithm"] == "wf"
