"""Tests for the multi-process execution backend and its protocol."""

import io
import json

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.errors import ExecutionError
from repro.execution.appspec import app_spec, load_app
from repro.execution.local import DigestApp
from repro.execution.process_backend import ProcessExecutionBackend
from repro.execution.worker_proc import serve
from repro.platform.resources import Cluster, Grid


class TestAppSpec:
    def test_round_trip(self):
        spec = app_spec(DigestApp)
        app = load_app(spec)
        assert isinstance(app, DigestApp)

    def test_kwargs_forwarded(self):
        from repro.workloads.synthetic import SyntheticApp

        spec = app_spec(SyntheticApp, flops_per_unit=123.0)
        app = load_app(spec)
        assert app._flops_per_unit == 123.0

    def test_bad_specs_rejected(self):
        with pytest.raises(ExecutionError):
            load_app("")
        with pytest.raises(ExecutionError):
            load_app("no-colon")
        with pytest.raises(ExecutionError):
            load_app("nonexistent.module:Thing")
        with pytest.raises(ExecutionError):
            load_app("repro.execution.local:NotAClass")
        with pytest.raises(ExecutionError):
            load_app("repro.execution.local:DigestApp|{bad json")
        with pytest.raises(ExecutionError):
            load_app('repro.execution.local:DigestApp|[1,2]')

    def test_non_processor_rejected(self):
        with pytest.raises(ExecutionError, match="process"):
            load_app("pathlib:PurePath")


class TestWorkerProtocol:
    def _serve(self, requests, tmp_path):
        stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
        stdout = io.StringIO()
        status = serve(app_spec(DigestApp), str(tmp_path), stdin=stdin, stdout=stdout)
        replies = [json.loads(l) for l in stdout.getvalue().splitlines()]
        return status, replies

    def test_ready_process_shutdown(self, tmp_path):
        chunk = tmp_path / "c.in"
        chunk.write_bytes(b"hello")
        status, replies = self._serve(
            [{"cmd": "process", "chunk_id": 3, "path": str(chunk), "units": 5.0},
             {"cmd": "shutdown"}],
            tmp_path,
        )
        assert status == 0
        assert replies[0]["status"] == "ready"
        assert replies[1]["status"] == "ok"
        assert replies[1]["chunk_id"] == 3
        assert replies[-1]["status"] == "bye"
        import hashlib

        from pathlib import Path

        result = Path(replies[1]["result_path"]).read_bytes()
        assert result == hashlib.sha256(b"hello").digest()

    def test_min_wall_time_padding(self, tmp_path):
        chunk = tmp_path / "c.in"
        chunk.write_bytes(b"x")
        status, replies = self._serve(
            [{"cmd": "process", "chunk_id": 0, "path": str(chunk),
              "units": 1.0, "min_wall_time": 0.05},
             {"cmd": "shutdown"}],
            tmp_path,
        )
        assert replies[1]["wall_time"] >= 0.05

    def test_missing_file_reports_error_and_keeps_serving(self, tmp_path):
        good = tmp_path / "ok.in"
        good.write_bytes(b"fine")
        status, replies = self._serve(
            [{"cmd": "process", "chunk_id": 0, "path": str(tmp_path / "nope"),
              "units": 1.0},
             {"cmd": "process", "chunk_id": 1, "path": str(good), "units": 4.0},
             {"cmd": "shutdown"}],
            tmp_path,
        )
        assert status == 0
        assert replies[1]["status"] == "error"
        assert replies[2]["status"] == "ok"

    def test_garbage_request_handled(self, tmp_path):
        stdin = io.StringIO("{not json}\n" + json.dumps({"cmd": "shutdown"}) + "\n")
        stdout = io.StringIO()
        status = serve(app_spec(DigestApp), str(tmp_path), stdin=stdin, stdout=stdout)
        assert status == 0
        replies = [json.loads(l) for l in stdout.getvalue().splitlines()]
        assert replies[1]["status"] == "error"

    def test_unknown_command(self, tmp_path):
        status, replies = self._serve(
            [{"cmd": "levitate"}, {"cmd": "shutdown"}], tmp_path
        )
        assert replies[1]["status"] == "error"

    def test_bad_app_spec_is_fatal(self, tmp_path):
        stdout = io.StringIO()
        status = serve("junk", str(tmp_path), stdin=io.StringIO(""), stdout=stdout)
        assert status == 1
        assert json.loads(stdout.getvalue().splitlines()[0])["status"] == "fatal"


@pytest.fixture
def proc_grid():
    return Grid.from_clusters(
        Cluster.homogeneous("proc", 2, speed=200.0, bandwidth=2000.0,
                            comm_latency=0.05, comp_latency=0.02)
    )


@pytest.fixture
def byte_division(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(range(256)) * 8)  # 2048 bytes
    return UniformBytesDivision(path, stepsize=64)


class TestProcessBackend:
    def test_end_to_end_with_worker_processes(self, proc_grid, byte_division, tmp_path):
        backend = ProcessExecutionBackend(
            tmp_path / "work", app_spec=app_spec(DigestApp), time_scale=0.02,
        )
        report = backend.execute(
            proc_grid, make_scheduler("wf"), byte_division, None,
            probe_units=64.0,
        )
        report.validate()
        assert report.annotations["backend"] == "process-execution"
        assert report.annotations["workers"] == 2
        assert sum(c.units for c in report.chunks) == pytest.approx(2048.0)
        assert len(backend.last_outputs) == report.num_chunks
        assert all(p.is_file() for p in backend.last_outputs)

    def test_umr_on_process_backend(self, proc_grid, byte_division, tmp_path):
        backend = ProcessExecutionBackend(
            tmp_path / "work", app_spec=app_spec(DigestApp), time_scale=0.02,
        )
        report = backend.execute(
            proc_grid, make_scheduler("umr"), byte_division, None,
            probe_units=64.0,
        )
        report.validate()

    def test_unimportable_app_fails_at_startup(self, proc_grid, byte_division, tmp_path):
        backend = ProcessExecutionBackend(
            tmp_path / "work", app_spec="repro.tests.no_such:App",
            time_scale=0.02,
        )
        with pytest.raises(ExecutionError):
            backend.execute(
                proc_grid, make_scheduler("simple-1"), byte_division, None,
                probe_units=64.0,
            )

    def test_invalid_construction(self, tmp_path):
        with pytest.raises(ExecutionError):
            ProcessExecutionBackend(tmp_path, app_spec="x:y", time_scale=0.0)
        with pytest.raises(ExecutionError):
            ProcessExecutionBackend(tmp_path, app_spec="", time_scale=0.01)
