"""Tests for the interactive APST-DV console."""

import io

import pytest

from repro.apst.console import APSTConsole
from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.platform.presets import das2_cluster


@pytest.fixture
def console(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(10_000))
    (tmp_path / "task.xml").write_text(
        "<task executable='app' input='load.bin'>"
        "<divisibility input='load.bin' method='uniform' start='0'"
        " steptype='bytes' stepsize='10' algorithm='umr'/></task>"
    )
    daemon = APSTDaemon(
        das2_cluster(nodes=4, total_load=10_000.0),
        config=DaemonConfig(base_dir=tmp_path, seed=1),
    )
    out = io.StringIO()
    shell = APSTConsole(daemon, stdout=out)
    return shell, out, tmp_path


def _output(shell_out: io.StringIO) -> str:
    return shell_out.getvalue()


class TestWorkflow:
    def test_submit_run_report(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        assert "job 1 queued" in _output(out)
        shell.onecmd("run")
        assert "executed job(s): 1" in _output(out)
        shell.onecmd("report 1")
        assert "Execution report: umr" in _output(out)

    def test_submit_with_algorithm_override(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'} simple-1")
        shell.onecmd("run")
        shell.onecmd("status 1")
        assert "simple-1" in _output(out)

    def test_status_all(self, console):
        shell, out, tmp = console
        shell.onecmd("status")
        assert "no jobs submitted" in _output(out)

    def test_gantt(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd("run")
        shell.onecmd("gantt 1")
        text = _output(out)
        assert "Gantt" in text and "overlap" in text

    def test_outputs_on_simulation_backend(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd("run")
        shell.onecmd("outputs 1")
        assert "simulation backend" in _output(out)

    def test_platform_and_algorithms(self, console):
        shell, out, _ = console
        shell.onecmd("platform")
        shell.onecmd("algorithms")
        text = _output(out)
        assert "4 workers" in text
        assert "umr" in text and "rumr" in text


class TestErrorHandling:
    def test_submit_without_argument(self, console):
        shell, out, _ = console
        shell.onecmd("submit")
        assert "usage" in _output(out)

    def test_submit_missing_file(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'ghost.xml'}")
        assert "error" in _output(out)

    def test_report_requires_numeric_id(self, console):
        shell, out, _ = console
        shell.onecmd("report one")
        assert "integer" in _output(out)

    def test_report_unknown_job(self, console):
        shell, out, _ = console
        shell.onecmd("report 42")
        assert "error" in _output(out)

    def test_unknown_command(self, console):
        shell, out, _ = console
        shell.onecmd("teleport 9")
        assert "unknown command 'teleport'" in _output(out)

    def test_run_with_nothing_queued(self, console):
        shell, out, _ = console
        shell.onecmd("run")
        assert "nothing queued" in _output(out)

    def test_quit_and_eof_return_true(self, console):
        shell, _, _ = console
        assert shell.onecmd("quit") is True
        assert shell.onecmd("EOF") is True

    def test_empty_line_is_noop(self, console):
        shell, out, _ = console
        before = _output(out)
        shell.onecmd("")
        assert _output(out) == before


class TestLifecycleVerbs:
    def test_cancel_queued_job(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd("cancel 1")
        assert "job 1 cancelled" in _output(out)
        shell.onecmd("cancel 1")
        assert "it is cancelled" in _output(out)

    def test_cancel_needs_valid_id(self, console):
        shell, out, _ = console
        shell.onecmd("cancel")
        assert "a job id is required" in _output(out)
        shell.onecmd("cancel two")
        assert "job id must be an integer" in _output(out)

    def test_drain_then_submit_refused(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd("drain")
        assert "drained job(s): 1" in _output(out)
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        assert "daemon is draining" in _output(out)

    def test_stats_summarises_states(self, console):
        shell, out, tmp = console
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd(f"submit {tmp / 'task.xml'}")
        shell.onecmd("cancel 2")
        shell.onecmd("run")
        shell.onecmd("stats")
        assert "2 job(s): done=1, cancelled=1" in _output(out)
