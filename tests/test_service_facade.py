"""End-to-end tests for MultiJobService over the APST daemon."""

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.errors import ServiceError, SpecificationError
from repro.platform.presets import das2_cluster
from repro.service import MultiJobService


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(255) * 80)  # 20400 bytes
    (tmp_path / "probe.bin").write_bytes(bytes(100))
    return tmp_path


TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


def _daemon(workspace, **kwargs):
    grid = das2_cluster(nodes=4, total_load=20400.0)
    return APSTDaemon(grid, config=DaemonConfig(base_dir=workspace, seed=3, **kwargs))


class TestRun:
    def test_jobs_end_up_done_with_reports(self, workspace):
        service = MultiJobService(_daemon(workspace), policy="fair-share")
        ids = [
            service.submit(TASK_XML, tenant="alice"),
            service.submit(TASK_XML, tenant="bob", arrival=50.0),
        ]
        outcome = service.run()
        assert set(outcome.reports) == set(ids)
        for job_id in ids:
            job = service.daemon.job(job_id)
            assert job.state is JobState.DONE
            assert service.daemon.report(job_id) is outcome.reports[job_id]

    def test_single_fifo_job_matches_run_pending_exactly(self, workspace):
        """Degeneration: one job under the service == the sequential daemon."""
        sequential = _daemon(workspace)
        seq_id = sequential.submit(TASK_XML)
        sequential.run_pending()

        service = MultiJobService(_daemon(workspace), policy="fifo")
        svc_id = service.submit(TASK_XML)
        outcome = service.run()

        assert outcome.reports[svc_id] == sequential.report(seq_id)

    def test_single_fair_share_job_also_degenerates(self, workspace):
        sequential = _daemon(workspace)
        seq_id = sequential.submit(TASK_XML)
        sequential.run_pending()

        service = MultiJobService(_daemon(workspace), policy="fair-share")
        svc_id = service.submit(TASK_XML)
        assert service.run().reports[svc_id] == sequential.report(seq_id)

    def test_prepare_failure_fails_that_job_only(self, workspace):
        service = MultiJobService(_daemon(workspace))
        good = service.submit(TASK_XML)
        bad = service.submit(TASK_XML.replace("load.bin", "missing.bin"))
        outcome = service.run()
        assert service.daemon.job(bad).state is JobState.FAILED
        assert "missing.bin" in service.daemon.job(bad).error
        assert service.daemon.job(good).state is JobState.DONE
        assert set(outcome.reports) == {good}

    def test_tenants_are_charged_worker_seconds(self, workspace):
        service = MultiJobService(_daemon(workspace), policy="fair-share")
        service.submit(TASK_XML, tenant="alice")
        service.submit(TASK_XML, tenant="bob")
        service.run()
        accounts = {a.tenant: a for a in service.manager.accounts()}
        assert accounts["alice"].worker_seconds > 0
        assert accounts["bob"].completed == 1

    def test_empty_run_is_a_no_op(self, workspace):
        service = MultiJobService(_daemon(workspace))
        outcome = service.run()
        assert outcome.reports == {}
        assert outcome.service.num_jobs == 0

    def test_bad_policy_fails_at_construction(self, workspace):
        with pytest.raises(ServiceError, match="unknown lease policy"):
            MultiJobService(_daemon(workspace), policy="lottery")

    def test_submit_validates_metadata(self, workspace):
        service = MultiJobService(_daemon(workspace))
        with pytest.raises(ServiceError, match="weight"):
            service.submit(TASK_XML, weight=0.0)
        with pytest.raises(ServiceError, match="arrival"):
            service.submit(TASK_XML, arrival=-1.0)


class TestLifecycleVerbs:
    def test_cancel_queued_job(self, workspace):
        service = MultiJobService(_daemon(workspace))
        job_id = service.submit(TASK_XML)
        service.cancel(job_id)
        assert service.daemon.job(job_id).state is JobState.CANCELLED
        outcome = service.run()
        assert job_id not in outcome.reports

    def test_duplicate_cancel_raises(self, workspace):
        service = MultiJobService(_daemon(workspace))
        job_id = service.submit(TASK_XML)
        service.cancel(job_id)
        with pytest.raises(SpecificationError, match="cancelled"):
            service.cancel(job_id)

    def test_cancel_done_job_raises(self, workspace):
        service = MultiJobService(_daemon(workspace))
        job_id = service.submit(TASK_XML)
        service.run()
        with pytest.raises(SpecificationError, match="done"):
            service.cancel(job_id)

    def test_drain_runs_then_refuses_submissions(self, workspace):
        service = MultiJobService(_daemon(workspace))
        job_id = service.submit(TASK_XML)
        outcome = service.drain()
        assert job_id in outcome.reports
        with pytest.raises(SpecificationError, match="draining"):
            service.submit(TASK_XML)

    def test_stats_counts_states(self, workspace):
        service = MultiJobService(_daemon(workspace))
        done = service.submit(TASK_XML)
        service.run()
        cancelled = service.submit(TASK_XML)
        service.cancel(cancelled)
        stats = service.stats()
        assert stats["done"] == 1
        assert stats["cancelled"] == 1
        assert stats["total"] == 2
