"""Tests for the CLI's gantt / JSON report options."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def task_env(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(10_000))
    spec = tmp_path / "task.xml"
    spec.write_text(
        "<task executable='app' input='load.bin'>"
        "<divisibility input='load.bin' method='uniform' start='0'"
        " steptype='bytes' stepsize='10' algorithm='fixed-rumr'/></task>"
    )
    return tmp_path, spec


class TestGanttFlag:
    def test_gantt_rendered(self, capsys, task_env):
        tmp, spec = task_env
        code = main([
            "run", str(spec), "--base-dir", str(tmp), "--seed", "1", "--gantt",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Gantt" in out
        assert "comm/comp overlap" in out
        assert "#" in out


class TestJsonFlag:
    def test_report_written_and_loadable(self, capsys, task_env, tmp_path):
        tmp, spec = task_env
        out_path = tmp_path / "report.json"
        code = main([
            "run", str(spec), "--base-dir", str(tmp), "--seed", "1",
            "--json", str(out_path),
        ])
        assert code == 0
        assert out_path.is_file()
        payload = json.loads(out_path.read_text())
        assert payload["algorithm"] == "fixed-rumr"

        from repro.apst.report_io import load_report

        report = load_report(out_path)
        assert report.total_load == 10_000.0

    def test_json_and_gantt_combine(self, capsys, task_env, tmp_path):
        tmp, spec = task_env
        code = main([
            "run", str(spec), "--base-dir", str(tmp), "--seed", "1",
            "--gantt", "--json", str(tmp_path / "r.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Gantt" in out and "report written" in out
