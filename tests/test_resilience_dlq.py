"""DLQ lifecycle end-to-end over the TCP gateway.

A socket worker started with ``--drop-forever`` answers pings (so it
registers as alive) but severs the connection on *every* process
request: retries can never succeed, the probe phase quarantines it, the
job becomes unrecoverable and parks in the daemon's dead-letter queue.
Once a healthy worker registers (newest registration wins the grid
slot), ``dlq replay`` resubmits the parked job verbatim and it runs to
completion -- the full park -> inspect -> recover story over the wire.
"""

import contextlib

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.dispatch.protocols import RetryPolicy
from repro.errors import ServiceError
from repro.execution.appspec import app_spec
from repro.execution.local import DigestApp
from repro.net import (
    GatewayClient,
    GatewayConfig,
    GatewayError,
    JobGateway,
    RemoteWorkerPool,
)
from repro.platform.resources import Cluster, Grid, WorkerSpec
from repro.resilience import EscalationPolicy, ResiliencePolicy

TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="64" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(range(256)) * 4)
    (tmp_path / "probe.bin").write_bytes(bytes(100))
    return tmp_path


def _daemon(workspace):
    # one grid slot: a single registered worker activates remote mode,
    # and quarantining it makes the job unrecoverable
    grid = Grid.from_clusters(
        Cluster(
            name="edge",
            workers=[WorkerSpec(name="w0", speed=500.0, bandwidth=5000.0,
                                cluster="edge")],
        )
    )
    return APSTDaemon(
        grid,
        config=DaemonConfig(
            base_dir=workspace,
            seed=0,
            retry=RetryPolicy(max_attempts=2),
            resilience=ResiliencePolicy(escalation=EscalationPolicy()),
        ),
    )


@contextlib.contextmanager
def _gateway(daemon, pool):
    gateway = JobGateway(daemon, config=GatewayConfig(), worker_pool=pool)
    gateway.start_in_background()
    try:
        yield gateway
    finally:
        gateway.shutdown()


def test_park_inspect_replay_over_the_wire(workspace):
    pool = RemoteWorkerPool()
    with pool:
        (broken,) = pool.spawn(
            1, app_spec(DigestApp), workspace / "workers", drop_forever=True
        )
        daemon = _daemon(workspace)
        with _gateway(daemon, pool) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                # the broken worker looks alive (pings answer) and registers
                reply = client.register_worker(broken.host, broken.port)
                assert reply["remote_active"] is True

                job_id = client.submit(TASK_XML)
                job = client.wait(job_id, timeout_s=120)
                assert job["state"] == "failed"

                # ... and parks with its whole failure chain
                (entry,) = client.dlq_list()
                assert entry["job_id"] == job_id
                assert entry["replayed_as"] is None
                assert any(
                    "quarantined" in line for line in entry["failure_chain"]
                )

                # replaying against the same dead fleet parks it again
                replay = client.dlq_replay(entry["entry_id"])
                assert replay["state"] == "failed"
                assert len(client.dlq_list()) == 2

                # a healthy replacement registers; newest endpoint wins
                # the single grid slot, so recovery needs no restart
                healthy = pool.spawn(
                    1, app_spec(DigestApp), workspace / "workers2"
                )[-1]
                client.register_worker(healthy.host, healthy.port)

                fresh = [
                    e for e in client.dlq_list() if e["replayed_as"] is None
                ]
                replay = client.dlq_replay(fresh[-1]["entry_id"])
                assert replay["state"] == "done"

                # replayed entries are marked, not dropped, and purge
                # clears the ledger
                assert client.dlq_purge() >= 1
                assert client.dlq_list() == []


def test_dlq_errors_over_the_wire(workspace):
    daemon = _daemon(workspace)
    with _gateway(daemon, None) as gateway:
        with GatewayClient(gateway.host, gateway.port) as client:
            assert client.dlq_list() == []
            assert client.dlq_purge() == 0
            with pytest.raises(GatewayError, match="no DLQ entry with id 7"):
                client.dlq_replay(7)
            with pytest.raises(GatewayError, match="entry_id"):
                client.request("dlq", action="replay", entry_id="not-a-number")
            with pytest.raises(GatewayError, match="unknown dlq action"):
                client.request("dlq", action="explode")


def test_http_dlq_route(workspace):
    import json
    import urllib.request

    daemon = _daemon(workspace)
    with _gateway(daemon, None) as gateway:
        with urllib.request.urlopen(
            f"http://{gateway.host}:{gateway.port}/dlq", timeout=10
        ) as response:
            body = json.loads(response.read())
        assert body["status"] == "ok"
        assert body["entries"] == []


def test_console_dlq_verbs(workspace, monkeypatch, capsys):
    """The interactive console's dlq commands against an empty queue."""
    import io

    from repro.apst.console import APSTConsole

    console = APSTConsole(_daemon(workspace), stdout=io.StringIO())
    console.onecmd("dlq")
    console.onecmd("dlq purge")
    console.onecmd("dlq replay nope")
    console.onecmd("dlq bogus")
    out = console.stdout.getvalue()
    assert "dead-letter queue is empty" in out
    assert "purged 0 entries" in out
    assert "entry id must be an integer" in out
    assert "usage: dlq" in out


def test_daemon_replay_validates_task(workspace):
    daemon = _daemon(workspace)
    with pytest.raises(ServiceError, match="no DLQ entry"):
        daemon.dlq_replay(1)
