"""The repro.net wire protocol: framing, payloads, response mapping."""

import io
import json

import pytest

from repro.net.protocol import (
    ERROR_HTTP_STATUS,
    MAX_FRAME_BYTES,
    FrameError,
    decode_payload,
    encode_payload,
    error_response,
    http_status_for,
    ok_response,
    parse_frame,
    read_frame,
    retry_response,
    write_frame,
)


class TestFraming:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"verb": "ping", "id": 7})
        buffer.seek(0)
        assert read_frame(buffer) == {"verb": "ping", "id": 7}
        assert read_frame(buffer) is None  # clean EOF

    def test_one_frame_per_line(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"a": 1})
        write_frame(buffer, {"b": 2})
        buffer.seek(0)
        assert read_frame(buffer) == {"a": 1}
        assert read_frame(buffer) == {"b": 2}

    def test_malformed_json_raises(self):
        with pytest.raises(FrameError, match="malformed"):
            parse_frame(b"{not json}\n")

    def test_non_object_top_level_rejected(self):
        with pytest.raises(FrameError, match="object"):
            parse_frame(b"[1, 2, 3]\n")

    def test_oversized_frame_rejected_on_read(self):
        buffer = io.BytesIO(b"x" * (MAX_FRAME_BYTES + 10) + b"\n")
        with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
            read_frame(buffer)

    def test_oversized_frame_rejected_on_write(self):
        buffer = io.BytesIO()
        with pytest.raises(FrameError, match="exceeds"):
            write_frame(buffer, {"data": "x" * (MAX_FRAME_BYTES + 1)})


class TestPayloadCodec:
    def test_round_trip(self):
        data = bytes(range(256)) * 3
        assert decode_payload(encode_payload(data)) == data

    def test_payload_embeds_in_frame(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"data_b64": encode_payload(b"\x00\xffbytes")})
        buffer.seek(0)
        assert decode_payload(read_frame(buffer)["data_b64"]) == b"\x00\xffbytes"

    def test_bad_base64_raises(self):
        with pytest.raises(FrameError, match="base64"):
            decode_payload("not*base64*at*all")


class TestResponses:
    def test_ok_carries_fields_and_id(self):
        response = ok_response(9, job_id=3)
        assert response == {"status": "ok", "job_id": 3, "id": 9}
        assert http_status_for(response) == 200

    def test_error_codes_map_to_http_statuses(self):
        for code, status in ERROR_HTTP_STATUS.items():
            assert http_status_for(error_response(code, "boom")) == status

    def test_unknown_error_code_rejected(self):
        with pytest.raises(FrameError, match="unknown error code"):
            error_response("made-up", "nope")

    def test_retry_is_the_backpressure_signal(self):
        response = retry_response("queue full", 4, after_s=0.25)
        assert response["status"] == "retry"
        assert response["error_code"] == "queue_full"
        assert response["retry_after_s"] == 0.25
        assert http_status_for(response) == 429

    def test_responses_are_json_lines(self):
        line = json.dumps(ok_response(None, jobs=[])).encode() + b"\n"
        assert parse_frame(line)["status"] == "ok"
