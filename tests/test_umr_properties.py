"""Property-based tests (hypothesis) for the UMR plan mathematics.

For any platform in a broad random family, a computed UMR plan must:
conserve the load exactly, keep every chunk non-negative, satisfy the
steady-state dispatch recurrence on its interior rounds, and equalize
per-round compute times across heterogeneous workers.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.umr import compute_umr_plan
from repro.errors import InfeasibleScheduleError
from repro.platform.resources import WorkerSpec

worker_lists = st.lists(
    st.builds(
        lambda i, speed, ratio, nlat, clat: WorkerSpec(
            name=f"w{i}",
            speed=speed,
            bandwidth=speed * ratio,
            comm_latency=nlat,
            comp_latency=clat,
        ),
        i=st.integers(0, 10_000),
        speed=st.floats(min_value=0.2, max_value=8.0),
        ratio=st.floats(min_value=3.0, max_value=80.0),
        nlat=st.floats(min_value=0.0, max_value=4.0),
        clat=st.floats(min_value=0.0, max_value=1.5),
    ),
    min_size=1,
    max_size=10,
    unique_by=lambda w: w.name,
)


def _plan_or_skip(workers, load):
    try:
        return compute_umr_plan(workers, load)
    except InfeasibleScheduleError:
        assume(False)


@given(workers=worker_lists, load=st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=150, deadline=None)
def test_plan_conserves_load(workers, load):
    plan = _plan_or_skip(workers, load)
    assert plan.total_units == pytest.approx(load, rel=1e-9)


@given(workers=worker_lists, load=st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=150, deadline=None)
def test_chunks_are_nonnegative(workers, load):
    plan = _plan_or_skip(workers, load)
    for round_chunks in plan.rounds:
        assert all(a >= 0.0 for a in round_chunks)


@given(workers=worker_lists, load=st.floats(min_value=500.0, max_value=50_000.0))
@settings(max_examples=100, deadline=None)
def test_interior_rounds_satisfy_dispatch_recurrence(workers, load):
    """Dispatch time of round j+1 equals the common compute time of round j
    (UMR's steady-state pipelining condition), for interior rounds."""
    plan = _plan_or_skip(workers, load)
    assume(plan.num_rounds >= 3)
    for j in range(plan.num_rounds - 2):
        # common compute time of round j: any worker with a positive chunk
        compute_times = [
            w.comp_latency + a / w.speed
            for w, a in zip(workers, plan.rounds[j])
            if a > 0
        ]
        assume(compute_times)
        t_j = compute_times[0]
        dispatch_next = sum(
            w.comm_latency + a / w.bandwidth
            for w, a in zip(workers, plan.rounds[j + 1])
        )
        assert dispatch_next == pytest.approx(t_j, rel=1e-6, abs=1e-6)


@given(workers=worker_lists, load=st.floats(min_value=500.0, max_value=50_000.0))
@settings(max_examples=100, deadline=None)
def test_rounds_equalize_compute_times_across_workers(workers, load):
    plan = _plan_or_skip(workers, load)
    for round_chunks in plan.rounds[:-1]:  # final round is rescaled
        times = [
            w.comp_latency + a / w.speed
            for w, a in zip(workers, round_chunks)
            if a > 0
        ]
        if len(times) >= 2:
            assert max(times) == pytest.approx(min(times), rel=1e-6)


@given(workers=worker_lists, load=st.floats(min_value=100.0, max_value=50_000.0))
@settings(max_examples=100, deadline=None)
def test_predicted_makespan_bounded_below_by_ideal(workers, load):
    plan = _plan_or_skip(workers, load)
    ideal = load / sum(w.speed for w in workers)
    assert plan.stats.predicted_makespan >= ideal - 1e-9
