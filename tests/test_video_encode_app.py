"""Tests for the library-level VideoEncodeApp chunk processor."""

import pytest

from repro.errors import ReproError
from repro.execution.appspec import app_spec, load_app
from repro.workloads.video import (
    VideoEncodeApp,
    avisplit,
    mencoder_encode,
    write_dv_file,
)


@pytest.fixture
def video(tmp_path):
    path = tmp_path / "v.tdv"
    write_dv_file(path, frames=12, frame_bytes=128, seed=6)
    return path


class TestVideoEncodeApp:
    def test_matches_mencoder_encode(self, video, tmp_path):
        chunk = tmp_path / "chunk.tdv"
        avisplit(video, 2, 5, chunk)
        app = VideoEncodeApp()
        encoded = app.process(chunk.read_bytes())
        reference = tmp_path / "ref.tm4v"
        mencoder_encode(chunk, reference)
        assert encoded == reference.read_bytes()

    def test_no_temp_files_leak(self, video, tmp_path):
        import tempfile
        from pathlib import Path

        before = set(Path(tempfile.gettempdir()).glob("*.tdv"))
        VideoEncodeApp().process(video.read_bytes())
        after = set(Path(tempfile.gettempdir()).glob("*.tdv"))
        assert after == before

    def test_invalid_level(self):
        with pytest.raises(ReproError):
            VideoEncodeApp(level=10)

    def test_loadable_via_app_spec(self, video):
        spec = app_spec(VideoEncodeApp, level=1)
        app = load_app(spec)
        result = app.process(video.read_bytes())
        assert result[:4] == b"TM4V"

    def test_corrupt_chunk_raises(self):
        with pytest.raises(ReproError):
            VideoEncodeApp().process(b"definitely not a video")
