"""Tests for CSS and Trapezoid Self-Scheduling."""

import pytest

from repro.core.base import ChunkInfo, SchedulerConfig, WorkerState
from repro.core.selfscheduling import ChunkSelfScheduling, TrapezoidSelfScheduling
from repro.errors import SchedulingError
from repro.platform.resources import WorkerSpec
from repro.simulation.master import simulate_run


def _config(n=2, load=1000.0, quantum=1.0):
    estimates = [WorkerSpec(f"w{i}", speed=1.0, bandwidth=10.0) for i in range(n)]
    return SchedulerConfig(estimates=estimates, total_load=load, quantum=quantum)


def _drain(s, n_workers):
    workers = [WorkerState(index=i, name=f"w{i}") for i in range(n_workers)]
    sizes = []
    while True:
        req = s.next_dispatch(0.0, workers)
        if req is None:
            break
        s.notify_dispatched(
            ChunkInfo(len(sizes), req.worker_index, req.units, req.round_index, req.phase)
        )
        sizes.append(req.units)
        assert len(sizes) < 100_000
    return sizes


class TestCSS:
    def test_fixed_chunk_size(self):
        s = ChunkSelfScheduling(chunk_fraction=0.1)
        s.configure(_config(n=2, load=1000.0))
        sizes = _drain(s, 2)
        # per-worker share 500, fraction 0.1 -> 50-unit chunks
        assert all(size == pytest.approx(50.0) for size in sizes[:-1])
        assert sum(sizes) == pytest.approx(1000.0)

    def test_name_includes_fraction(self):
        assert ChunkSelfScheduling(chunk_fraction=0.25).name == "css-0.25"

    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            ChunkSelfScheduling(chunk_fraction=0.0)
        with pytest.raises(SchedulingError):
            ChunkSelfScheduling(chunk_fraction=1.5)
        with pytest.raises(SchedulingError):
            ChunkSelfScheduling(prefetch_depth=0)

    def test_end_to_end(self, small_grid):
        report = simulate_run(small_grid, ChunkSelfScheduling(), total_load=500.0, seed=0)
        report.validate()


class TestTSS:
    def test_sizes_decrease_linearly(self):
        s = TrapezoidSelfScheduling(first_chunk=100.0, last_chunk=20.0)
        s.configure(_config(n=1, load=1000.0))
        sizes = _drain(s, 1)
        diffs = [a - b for a, b in zip(sizes, sizes[1:])]
        # constant decrement until the floor / final remainder
        assert diffs[0] == pytest.approx(diffs[1], rel=1e-6)
        assert sizes[0] == pytest.approx(100.0)
        assert sum(sizes) == pytest.approx(1000.0)

    def test_default_first_chunk_is_half_share(self):
        s = TrapezoidSelfScheduling()
        s.configure(_config(n=4, load=1000.0))
        sizes = _drain(s, 4)
        assert sizes[0] == pytest.approx(1000.0 / (2 * 4))

    def test_floor_at_last_chunk(self):
        s = TrapezoidSelfScheduling(first_chunk=100.0, last_chunk=30.0)
        s.configure(_config(n=1, load=2000.0))
        sizes = _drain(s, 1)
        assert all(size >= 30.0 - 1e-9 or size == sizes[-1] for size in sizes)

    def test_last_clamped_to_first(self):
        s = TrapezoidSelfScheduling(first_chunk=10.0, last_chunk=100.0)
        s.configure(_config(n=1, load=100.0))
        sizes = _drain(s, 1)
        assert sizes[0] == pytest.approx(10.0)

    def test_end_to_end_beats_simple1(self, small_grid):
        from repro.core.simple import SimpleN

        tss = simulate_run(small_grid, TrapezoidSelfScheduling(),
                           total_load=2000.0, seed=0)
        simple = simulate_run(small_grid, SimpleN(1), total_load=2000.0, seed=0)
        assert tss.makespan < simple.makespan

    def test_registry_names(self):
        from repro.core.registry import make_scheduler

        assert make_scheduler("tss").name == "tss"
        assert make_scheduler("css").name.startswith("css")


class TestEndToEndInvariants:
    @pytest.mark.parametrize("name", ["tss", "css"])
    def test_conservation_under_noise(self, hetero_grid, name):
        from repro.core.registry import make_scheduler

        report = simulate_run(hetero_grid, make_scheduler(name),
                              total_load=400.0, gamma=0.2, seed=3)
        assert sum(c.units for c in report.chunks) == pytest.approx(400.0)
