"""Tests for CSV export of experiments and sweeps."""

import csv
import io

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.export import experiment_to_csv, sweep_to_csv
from repro.analysis.sweeps import SweepResult
from repro.errors import ReproError
from repro.platform.resources import Cluster, Grid


def _grid():
    return Grid.from_clusters(
        Cluster.homogeneous("t", 3, speed=1.0, bandwidth=10.0,
                            comm_latency=0.3, comp_latency=0.1)
    )


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(
            label="csv-test", grid_factory=_grid, total_load=300.0,
            algorithms=("simple-1", "umr"), runs=2,
        )
    )


class TestExperimentCSV:
    def test_one_row_per_algorithm(self, result):
        rows = list(csv.reader(io.StringIO(experiment_to_csv(result))))
        assert rows[0][0] == "label"
        assert len(rows) == 3
        assert {r[3] for r in rows[1:]} == {"simple-1", "umr"}

    def test_slowdown_column_consistent(self, result):
        rows = list(csv.DictReader(io.StringIO(experiment_to_csv(result))))
        by_name = {r["algorithm"]: r for r in rows}
        assert float(by_name["umr"]["slowdown_vs_best"]) == 0.0
        assert float(by_name["simple-1"]["slowdown_vs_best"]) > 0.0

    def test_written_to_file(self, result, tmp_path):
        path = tmp_path / "exp.csv"
        experiment_to_csv(result, path)
        assert path.read_text().startswith("label,")


class TestSweepCSV:
    def test_row_per_value_column_per_algorithm(self):
        sweep = SweepResult(
            parameter="gamma", values=(0.0, 0.1),
            series={"umr": [10.0, 12.0], "wf": [11.0, 11.5]},
        )
        rows = list(csv.reader(io.StringIO(sweep_to_csv(sweep))))
        assert rows[0] == ["gamma", "umr", "wf"]
        assert rows[1] == ["0.0", "10.000", "11.000"]
        assert len(rows) == 3

    def test_empty_sweep_rejected(self):
        sweep = SweepResult(parameter="x", values=(), series={})
        with pytest.raises(ReproError):
            sweep_to_csv(sweep)
