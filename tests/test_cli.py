"""Tests for the apst-dv command line interface."""

import pytest

from repro.cli import main


class TestPresets:
    def test_lists_all_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        for name in ("das2", "meteor", "mixed", "grail"):
            assert name in out


class TestTable1:
    def test_prints_all_applications(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for app in ("HMMER", "MPEG", "VFleet", "Data Mining"):
            assert app in out


class TestRun:
    @pytest.fixture
    def task_file(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        spec = tmp_path / "task.xml"
        spec.write_text(
            "<task executable='app' input='load.bin'>"
            "<divisibility input='load.bin' method='uniform' start='0'"
            " steptype='bytes' stepsize='10' algorithm='umr'/></task>"
        )
        return spec

    def test_run_prints_report(self, capsys, task_file, tmp_path):
        code = main([
            "run", str(task_file), "--platform", "das2",
            "--base-dir", str(tmp_path), "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Execution report: umr" in out
        assert "makespan" in out

    def test_run_with_algorithm_override(self, capsys, task_file, tmp_path):
        main([
            "run", str(task_file), "--base-dir", str(tmp_path),
            "--algorithm", "simple-1",
        ])
        assert "simple-1" in capsys.readouterr().out

    def test_run_with_platform_xml(self, capsys, task_file, tmp_path):
        platform = tmp_path / "platform.xml"
        platform.write_text(
            "<platform><cluster name='c' nodes='2' speed='5' bandwidth='50'"
            " comm_latency='0.1'/></platform>"
        )
        code = main([
            "run", str(task_file), "--platform", str(platform),
            "--base-dir", str(tmp_path),
        ])
        assert code == 0

    def test_unknown_preset_exits(self, task_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", str(task_file), "--platform", "lhc",
                  "--base-dir", str(tmp_path)])


class TestCompare:
    def test_compare_prints_table(self, capsys):
        code = main([
            "compare", "--platform", "das2", "--runs", "1",
            "--algorithms", "simple-1,umr", "--load", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simple-1" in out and "umr" in out
        assert "slowdown_vs_best" in out

    def test_compare_defaults_to_paper_set(self, capsys):
        code = main([
            "compare", "--platform", "grail", "--runs", "1", "--load", "400",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("simple-1", "simple-5", "umr", "wf", "rumr", "fixed-rumr"):
            assert name in out


class TestService:
    @pytest.fixture
    def task_file(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        spec = tmp_path / "task.xml"
        spec.write_text(
            "<task executable='app' input='load.bin'>"
            "<divisibility input='load.bin' method='uniform' start='0'"
            " steptype='bytes' stepsize='10' algorithm='umr'/></task>"
        )
        return spec

    def test_service_prints_report(self, capsys, task_file, tmp_path):
        code = main([
            "service", str(task_file), "--count", "2",
            "--arrivals", "0,100", "--policy", "fair-share",
            "--base-dir", str(tmp_path), "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Service report: policy=fair-share" in out
        assert "stretch" in out and "utilization" in out

    def test_service_with_per_job_reports(self, capsys, task_file, tmp_path):
        code = main([
            "service", str(task_file), "--policy", "fifo",
            "--base-dir", str(tmp_path), "--seed", "1", "--reports",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Execution report: umr" in out

    def test_service_bad_arrivals_exits(self, task_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["service", str(task_file), "--arrivals", "soon",
                  "--base-dir", str(tmp_path)])

    def test_service_failure_sets_exit_code(self, capsys, task_file, tmp_path):
        bad = tmp_path / "bad.xml"
        bad.write_text(
            "<task executable='app' input='missing.bin'>"
            "<divisibility input='missing.bin' method='uniform' start='0'"
            " steptype='bytes' stepsize='10' algorithm='umr'/></task>"
        )
        code = main([
            "service", str(task_file), str(bad),
            "--base-dir", str(tmp_path), "--seed", "1",
        ])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out
