"""Tests for RUMR, Fixed-RUMR, and the online gamma estimator."""

import pytest

from repro.core.rumr import RUMR, GammaEstimator, fixed_rumr
from repro.core.umr import UMR
from repro.errors import SchedulingError
from repro.platform.presets import das2_cluster, grail_lan
from repro.simulation.master import simulate_run


class TestGammaEstimator:
    def test_no_samples_gives_zero(self):
        est = GammaEstimator()
        assert est.pooled_cov() == 0.0
        assert est.lower_confidence_bound() == 0.0

    def test_constant_residuals_give_zero(self):
        est = GammaEstimator()
        for w in range(4):
            for _ in range(10):
                est.add(w, 1.0)
        assert est.pooled_cov() == 0.0

    def test_pooling_removes_per_worker_bias(self):
        """A constant per-worker prediction bias (from single-sample
        probing) must not register as uncertainty."""
        est = GammaEstimator()
        for w, bias in enumerate((0.8, 1.0, 1.3)):
            for _ in range(20):
                est.add(w, bias)  # zero variance within each worker
        assert est.pooled_cov() < 1e-12

    def test_within_worker_variance_detected(self):
        est = GammaEstimator()
        import numpy as np

        rng = np.random.default_rng(0)
        for w in range(4):
            for r in rng.normal(1.0, 0.2, size=100):
                est.add(w, float(r))
        assert est.pooled_cov() == pytest.approx(0.2, rel=0.15)

    def test_lcb_below_estimate(self):
        est = GammaEstimator()
        import numpy as np

        rng = np.random.default_rng(1)
        for r in rng.normal(1.0, 0.2, size=30):
            est.add(0, float(r))
        assert 0.0 < est.lower_confidence_bound() < est.pooled_cov()

    def test_lcb_tightens_with_samples(self):
        import numpy as np

        rng = np.random.default_rng(2)
        small, large = GammaEstimator(), GammaEstimator()
        values = rng.normal(1.0, 0.2, size=500)
        for r in values[:10]:
            small.add(0, float(r))
        for r in values:
            large.add(0, float(r))
        ratio_small = small.lower_confidence_bound() / small.pooled_cov()
        ratio_large = large.lower_confidence_bound() / large.pooled_cov()
        assert ratio_large > ratio_small

    def test_invalid_residuals_ignored(self):
        est = GammaEstimator()
        est.add(0, -1.0)
        est.add(0, float("nan"))
        est.add(0, float("inf"))
        assert est.total_samples == 0


class TestFixedRUMR:
    def test_phase_loads_split_80_20(self, small_grid):
        report = simulate_run(small_grid, fixed_rumr(0.2), total_load=2000.0, seed=0)
        phases = report.phase_load()
        assert phases["rumr-umr"] == pytest.approx(0.8 * 2000.0, rel=0.05)
        assert phases["rumr-factoring"] == pytest.approx(0.2 * 2000.0, rel=0.2)

    def test_custom_fraction(self, small_grid):
        report = simulate_run(small_grid, fixed_rumr(0.5), total_load=2000.0, seed=0)
        phases = report.phase_load()
        assert phases["rumr-factoring"] == pytest.approx(1000.0, rel=0.1)

    def test_factoring_phase_comes_after_umr_phase(self, small_grid):
        report = simulate_run(small_grid, fixed_rumr(0.2), total_load=2000.0, seed=0)
        last_umr_send = max(
            c.send_start for c in report.chunks if c.phase == "rumr-umr"
        )
        first_factoring_send = min(
            c.send_start for c in report.chunks if c.phase == "rumr-factoring"
        )
        assert first_factoring_send >= last_umr_send

    def test_name_and_annotation(self):
        s = fixed_rumr(0.2)
        assert s.name == "fixed-rumr"

    def test_invalid_fraction(self):
        with pytest.raises(SchedulingError):
            RUMR(fixed_phase2_fraction=0.0)
        with pytest.raises(SchedulingError):
            RUMR(fixed_phase2_fraction=1.0)


class TestOnlineRUMR:
    def test_degenerates_to_umr_at_gamma_zero(self, small_grid):
        """Paper: 'in this case we have no uncertainty and RUMR
        degenerates to pure UMR'."""
        rumr = simulate_run(small_grid, RUMR(), total_load=2000.0, seed=3)
        umr = simulate_run(small_grid, UMR(), total_load=2000.0, seed=3)
        assert rumr.makespan == pytest.approx(umr.makespan, rel=1e-9)
        assert rumr.annotations["rumr_switched"] is False
        assert all(c.phase == "rumr-umr" for c in rumr.chunks)

    def test_switches_at_high_gamma_on_grail(self):
        """Paper Section 5: at gamma ~ 20% 'the RUMR algorithm successfully
        switches to its second phase in every one of the ten runs'."""
        grid = grail_lan()
        switched = 0
        for seed in range(10):
            report = simulate_run(
                grid, RUMR(), total_load=1830.0, gamma=0.20,
                autocorrelation=0.6, seed=seed,
            )
            if report.annotations["rumr_switched"]:
                switched += 1
        assert switched >= 9

    def test_rarely_switches_at_moderate_gamma_on_das2(self):
        """Paper Section 4: at gamma = 10% the switch comes too late in
        most runs -- 'Factoring is in fact never used'."""
        grid = das2_cluster(nodes=16)
        switched = 0
        for seed in range(8):
            report = simulate_run(
                grid, RUMR(), total_load=10_000.0, gamma=0.10, seed=seed
            )
            if report.annotations["rumr_switched"]:
                switched += 1
        assert switched <= 3

    def test_switch_annotations_recorded(self):
        grid = grail_lan()
        report = simulate_run(
            grid, RUMR(), total_load=1830.0, gamma=0.20,
            autocorrelation=0.6, seed=0,
        )
        ann = report.annotations
        assert ann["rumr_mode"] == "online"
        assert "rumr_gamma_estimate" in ann
        if ann["rumr_switched"]:
            assert ann["rumr_phase2_load"] > 0
            assert "rumr_detection_time" in ann

    def test_load_conserved_with_switch(self):
        grid = grail_lan()
        report = simulate_run(
            grid, RUMR(), total_load=1830.0, gamma=0.20,
            autocorrelation=0.6, seed=1,
        )
        assert sum(c.units for c in report.chunks) == pytest.approx(1830.0)

    def test_switched_run_ends_with_factoring_chunks(self):
        grid = grail_lan()
        for seed in range(5):
            report = simulate_run(
                grid, RUMR(), total_load=1830.0, gamma=0.20,
                autocorrelation=0.6, seed=seed,
            )
            if not report.annotations["rumr_switched"]:
                continue
            last_chunk = max(report.chunks, key=lambda c: c.send_start)
            assert last_chunk.phase == "rumr-factoring"
            return
        pytest.fail("no run switched")
