"""The job-submission gateway: verbs, batching, backpressure, shutdown."""

import asyncio
import contextlib
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.execution.appspec import app_spec
from repro.execution.local import DigestApp
from repro.net import (
    GatewayClient,
    GatewayConfig,
    GatewayError,
    JobGateway,
    RemoteWorkerPool,
)
from repro.obs import NET_BATCH_EXECUTED, NET_REQUEST, Observability
from repro.platform.presets import das2_cluster

TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(255) * 80)  # 20400 bytes
    (tmp_path / "probe.bin").write_bytes(bytes(100))
    return tmp_path


def _daemon(workspace, *, nodes=4, observability=None):
    grid = das2_cluster(nodes=nodes, total_load=20400.0)
    return APSTDaemon(
        grid,
        config=DaemonConfig(base_dir=workspace, seed=3, observability=observability),
    )


@contextlib.contextmanager
def _gateway(daemon, *, worker_pool=None, **config_kwargs):
    gateway = JobGateway(
        daemon,
        config=GatewayConfig(**config_kwargs),
        worker_pool=worker_pool,
    )
    gateway.start_in_background()
    try:
        yield gateway
    finally:
        gateway.shutdown()


class TestVerbs:
    def test_submit_status_stats_round_trip(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                assert client.ping()["version"] == 1
                job_id = client.submit(TASK_XML)
                job = client.wait(job_id, timeout_s=60)
                assert job["state"] == "done"
                assert job["makespan"] > 0
                stats = client.server_stats()
                assert stats["done"] == 1
                assert stats["queue_capacity"] == 256

    def test_batch_verb_submits_many_in_one_frame(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                response = client.submit_batch(
                    [{"spec": TASK_XML}, {"spec": TASK_XML}, {"bogus": True}]
                )
                assert response["accepted"] == 2
                statuses = [r["status"] for r in response["results"]]
                assert statuses.count("ok") == 2
                assert statuses.count("error") == 1
                for result in response["results"]:
                    if result["status"] == "ok":
                        assert client.wait(result["job_id"], timeout_s=60)[
                            "state"
                        ] == "done"

    def test_bad_spec_reports_per_job_not_fatal(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                with pytest.raises(GatewayError, match="divisibility|parse|task"):
                    client.submit("<task>not a real spec</task>")
                # the gateway survives the bad submission
                assert client.ping()["status"] == "ok"

    def test_cancel_and_outputs_error_codes(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                with pytest.raises(GatewayError) as exc_info:
                    client.cancel(999)
                assert exc_info.value.code == "not_found"
                job_id = client.submit(TASK_XML)
                client.wait(job_id, timeout_s=60)
                with pytest.raises(GatewayError) as exc_info:
                    client.cancel(job_id)  # DONE jobs cannot be cancelled
                assert exc_info.value.code == "conflict"

    def test_unknown_verb_is_bad_request(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                with pytest.raises(GatewayError) as exc_info:
                    client.request("frobnicate")
                assert exc_info.value.code == "bad_request"

    def test_malformed_line_keeps_connection_usable(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with socket.create_connection((gateway.host, gateway.port)) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["error_code"] == "bad_request"
                stream.write(b'{"verb": "ping"}\n')
                stream.flush()
                assert json.loads(stream.readline())["status"] == "ok"


class TestClientRetrySemantics:
    """At-most-once submit: a connection lost mid-flight must raise, not
    silently resend (the gateway may already have admitted the job)."""

    @staticmethod
    def _fake_server():
        server = socket.create_server(("127.0.0.1", 0))
        server.settimeout(2.0)
        return server

    def test_connection_lost_mid_submit_raises_and_never_resends(self):
        server = self._fake_server()
        received = []

        def serve():
            # read the submit, then close without replying; a second
            # connection would carry the forbidden silent resend
            for _ in range(2):
                try:
                    conn, _ = server.accept()
                except TimeoutError:
                    return
                with conn:
                    line = conn.makefile("rb").readline()
                    if line:
                        received.append(json.loads(line))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = server.getsockname()[:2]
        client = GatewayClient(host, port, timeout_s=5.0, max_retries=4,
                               backoff_base_s=0.01)
        with pytest.raises(GatewayError) as exc_info:
            client.submit("<task/>")
        assert exc_info.value.code == "unreachable"
        thread.join(timeout=10)
        server.close()
        assert len(received) == 1  # exactly one submit hit the wire

    def test_read_only_verb_reconnects_and_retries(self):
        server = self._fake_server()

        def serve():
            conn, _ = server.accept()  # first attempt: drop without replying
            with conn:
                conn.makefile("rb").readline()
            conn2, _ = server.accept()  # retry: answer properly
            with conn2:
                stream = conn2.makefile("rwb")
                request = json.loads(stream.readline())
                stream.write(json.dumps(
                    {"status": "ok", "id": request["id"]}
                ).encode() + b"\n")
                stream.flush()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = server.getsockname()[:2]
        client = GatewayClient(host, port, timeout_s=5.0, max_retries=4,
                               backoff_base_s=0.01)
        assert client.ping()["status"] == "ok"
        assert client.stats.reconnects == 1
        thread.join(timeout=10)
        server.close()
        client.close()


class TestRemoteModeMetadata:
    """Service scheduling metadata must be rejected, not silently dropped,
    while remote execution is active (remote batches bypass the service)."""

    def test_submit_with_metadata_is_a_conflict_when_remote(self, workspace,
                                                            monkeypatch):
        gateway = JobGateway(_daemon(workspace))
        monkeypatch.setattr(gateway, "_remote_active", lambda: True)
        response = asyncio.run(gateway.handle_request(
            {"verb": "submit", "spec": TASK_XML, "tenant": "acme",
             "priority": 5}
        ))
        assert response["status"] == "error"
        assert response["error_code"] == "conflict"
        assert "tenant" in response["message"]

    def test_batch_runner_guards_the_admission_race(self, workspace,
                                                    monkeypatch):
        """Remote can turn active between admission and batch execution
        (register_worker mid-flight); the runner must still refuse."""
        from repro.errors import ServiceError
        from repro.net.gateway import _Submission

        gateway = JobGateway(_daemon(workspace))
        monkeypatch.setattr(gateway, "_remote_active", lambda: True)
        submission = _Submission(spec=TASK_XML, algorithm=None, tenant="acme",
                                 priority=0, weight=1.0, arrival=0.0)
        gateway._execute_batch([submission])
        with pytest.raises(ServiceError, match="service scheduling metadata"):
            submission.future.result(timeout=1)

    def test_default_metadata_is_not_flagged(self):
        from repro.net.gateway import _Submission

        submission = _Submission(spec=TASK_XML, algorithm=None,
                                 tenant="default", priority=0, weight=1.0,
                                 arrival=0.0)
        assert submission.service_metadata() == {}


class TestJobIdValidation:
    def test_non_numeric_job_id_is_bad_request_not_internal(self, workspace):
        gateway = JobGateway(_daemon(workspace))
        for verb in ("status", "cancel", "outputs"):
            response = asyncio.run(gateway.handle_request(
                {"verb": verb, "job_id": "nope"}
            ))
            assert response["status"] == "error", verb
            assert response["error_code"] == "bad_request", verb

    def test_non_numeric_submit_fields_are_bad_request(self, workspace):
        gateway = JobGateway(_daemon(workspace))
        response = asyncio.run(gateway.handle_request(
            {"verb": "submit", "spec": TASK_XML, "priority": "urgent"}
        ))
        assert response["status"] == "error"
        assert response["error_code"] == "bad_request"


class TestBackpressure:
    def test_full_queue_rejects_then_recovers(self, workspace):
        """A 1-slot queue under 24 concurrent submissions must bounce some
        (the retry/429 reply) yet lose none: the client SDK backs off and
        resends, and every job ends DONE.
        """
        daemon = _daemon(workspace)
        with _gateway(daemon, max_queue=1, batch_max=4) as gateway:
            results, errors = [], []

            def submitter():
                try:
                    with GatewayClient(
                        gateway.host, gateway.port, max_retries=40
                    ) as client:
                        for _ in range(3):
                            results.append(client.submit(TASK_XML))
                        results.extend([])
                        threads_stats.append(client.stats)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads_stats = []
            threads = [threading.Thread(target=submitter) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            assert len(results) == len(set(results)) == 24
            with GatewayClient(gateway.host, gateway.port) as client:
                stats = client.drain()["stats"]
            assert stats["done"] == 24  # zero lost jobs
            backpressure_seen = gateway.rejected_submissions + sum(
                s.backpressure_retries for s in threads_stats
            )
            assert backpressure_seen > 0

    def test_draining_gateway_rejects_submissions(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                client.submit(TASK_XML)
                drained = client.drain()
                assert drained["drained"] is True
                assert drained["stats"]["done"] == 1
                with pytest.raises(GatewayError) as exc_info:
                    client.submit(TASK_XML)
                assert exc_info.value.code == "draining"


class TestHttpDialect:
    def test_post_submit_and_get_routes(self, workspace):
        obs = Observability.armed()
        with _gateway(_daemon(workspace, observability=obs)) as gateway:
            base = f"http://{gateway.host}:{gateway.port}"
            body = json.dumps({"verb": "submit", "spec": TASK_XML}).encode()
            with urllib.request.urlopen(
                urllib.request.Request(base, data=body, method="POST")
            ) as response:
                assert response.status == 200
                job_id = json.loads(response.read())["job_id"]
            with GatewayClient(gateway.host, gateway.port) as client:
                client.wait(job_id, timeout_s=60)
            with urllib.request.urlopen(f"{base}/stats") as response:
                assert json.loads(response.read())["stats"]["done"] == 1
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert json.loads(response.read())["status"] == "ok"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert b"repro_net_requests_total" in response.read()

    def test_http_error_statuses(self, workspace):
        with _gateway(_daemon(workspace)) as gateway:
            base = f"http://{gateway.host}:{gateway.port}"
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{base}/no/such/route")
            assert exc_info.value.code == 404
            body = json.dumps({"verb": "cancel", "job_id": 42}).encode()
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(
                    urllib.request.Request(base, data=body, method="POST")
                )
            assert exc_info.value.code == 404  # no job with id 42


class TestObservability:
    def test_requests_and_batches_emit_events_and_metrics(self, workspace):
        obs = Observability.armed()
        with _gateway(_daemon(workspace, observability=obs)) as gateway:
            with GatewayClient(gateway.host, gateway.port) as client:
                job_id = client.submit(TASK_XML)
                client.wait(job_id, timeout_s=60)
        verbs = {e.fields["verb"] for e in obs.ring_events(NET_REQUEST)}
        assert "submit" in verbs and "status" in verbs
        batches = obs.ring_events(NET_BATCH_EXECUTED)
        assert len(batches) >= 1
        assert batches[0].fields["admitted"] >= 1
        counter = obs.metrics.counter(
            "repro_net_requests_total", labels={"verb": "submit", "outcome": "ok"}
        )
        assert counter.value == 1
        latency = obs.metrics.histogram("repro_net_submit_latency_seconds")
        assert latency.count == 1


class TestGracefulShutdown:
    def test_shutdown_is_idempotent_and_drains(self, workspace):
        daemon = _daemon(workspace)
        gateway = JobGateway(daemon, config=GatewayConfig())
        gateway.start_in_background()
        with GatewayClient(gateway.host, gateway.port) as client:
            job_id = client.submit(TASK_XML)
        gateway.shutdown()
        gateway.shutdown()  # second call is a no-op, not an error
        gateway.request_shutdown()  # and so is a late signal
        assert daemon.job(job_id).state is JobState.DONE  # admitted => drained

    def test_shutdown_verb_stops_the_server(self, workspace):
        gateway = JobGateway(_daemon(workspace), config=GatewayConfig())
        gateway.start_in_background()
        with GatewayClient(gateway.host, gateway.port) as client:
            assert client.shutdown_server()["shutting_down"] is True
        gateway.join(timeout=30)
        with pytest.raises(GatewayError):
            GatewayClient(gateway.host, gateway.port, max_retries=1).ping()

    def test_shutdown_reaps_gateway_owned_workers(self, workspace):
        """No live children: the no-leak rule extends to socket workers."""
        pool = RemoteWorkerPool()
        pool.spawn(2, app_spec(DigestApp), workspace / "workers")
        daemon = _daemon(workspace, nodes=2)
        gateway = JobGateway(daemon, config=GatewayConfig(), worker_pool=pool)
        gateway.start_in_background()
        try:
            with GatewayClient(gateway.host, gateway.port) as client:
                assert client.ping()["workers"] == 2
                job_id = client.submit(TASK_XML)
                assert client.wait(job_id, timeout_s=120)["state"] == "done"
                assert client.server_stats()["remote_active"] is True
        finally:
            gateway.shutdown()
        assert len(pool.processes) == 2
        for process in pool.processes:
            assert process.poll() is not None  # exited and reaped
