"""Tests for probe-based resource information collection (Section 3.5)."""

import pytest

from repro.apst.probing import (
    ProbeResult,
    default_probe_units,
    perfect_information,
    run_probe_phase,
)
from repro.errors import ProbeError
from repro.simulation.compute import ComputeModel, UncertaintyModel


class TestProbePhase:
    def test_estimates_exact_on_deterministic_platform(self, hetero_grid):
        model = ComputeModel(hetero_grid.workers, seed=0)
        result = run_probe_phase(list(hetero_grid.workers), model, probe_units=5.0)
        for est, true in zip(result.estimates, hetero_grid.workers):
            assert est.speed == pytest.approx(true.speed, rel=1e-6)
            assert est.bandwidth == pytest.approx(true.bandwidth, rel=1e-6)
            assert est.comm_latency == pytest.approx(true.comm_latency, rel=1e-6)
            assert est.comp_latency == pytest.approx(true.comp_latency, rel=1e-6)

    def test_probe_duration_covers_serialized_transfers(self, hetero_grid):
        model = ComputeModel(hetero_grid.workers, seed=0)
        result = run_probe_phase(list(hetero_grid.workers), model, probe_units=5.0)
        serial_comm = sum(
            2 * w.comm_latency + 5.0 / w.bandwidth for w in hetero_grid.workers
        )
        assert result.duration >= serial_comm

    def test_noisy_platform_gives_noisy_speed_estimates(self, small_grid):
        model = ComputeModel(small_grid.workers, UncertaintyModel(gamma=0.2), seed=3)
        result = run_probe_phase(list(small_grid.workers), model, probe_units=5.0)
        speeds = [e.speed for e in result.estimates]
        true = small_grid.workers[0].speed
        assert any(abs(s - true) / true > 0.01 for s in speeds)

    def test_estimates_preserve_names_and_clusters(self, small_grid):
        model = ComputeModel(small_grid.workers, seed=0)
        result = run_probe_phase(list(small_grid.workers), model, probe_units=1.0)
        assert [e.name for e in result.estimates] == [w.name for w in small_grid.workers]
        assert all(e.cluster == "test" for e in result.estimates)

    def test_empty_platform_rejected(self, small_grid):
        model = ComputeModel(small_grid.workers, seed=0)
        with pytest.raises(ProbeError):
            run_probe_phase([], model, probe_units=1.0)

    def test_nonpositive_probe_rejected(self, small_grid):
        model = ComputeModel(small_grid.workers, seed=0)
        with pytest.raises(ProbeError):
            run_probe_phase(list(small_grid.workers), model, probe_units=0.0)


class TestPerfectInformation:
    def test_returns_truth_at_zero_cost(self, hetero_grid):
        result = perfect_information(list(hetero_grid.workers))
        assert isinstance(result, ProbeResult)
        assert result.duration == 0.0
        assert result.estimates == list(hetero_grid.workers)

    def test_empty_rejected(self):
        with pytest.raises(ProbeError):
            perfect_information([])


class TestDefaultProbeUnits:
    def test_fraction_of_load(self):
        assert default_probe_units(10_000.0) == pytest.approx(20.0)

    def test_floor_for_small_loads(self):
        assert default_probe_units(10.0) == 1.0

    def test_invalid_load(self):
        with pytest.raises(ProbeError):
            default_probe_units(0.0)
