"""Tests for the UMR multi-round plan and scheduler."""

import math

import pytest

from repro.core.base import SchedulerConfig
from repro.core.umr import (
    UMR,
    compute_umr_plan,
    proportional_one_round,
)
from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.platform.presets import das2_cluster, meteor_cluster
from repro.platform.resources import WorkerSpec
from repro.simulation.master import simulate_run


def _homogeneous(n=4, speed=1.0, bandwidth=10.0, comm_latency=0.5, comp_latency=0.2):
    return [
        WorkerSpec(f"w{i}", speed=speed, bandwidth=bandwidth,
                   comm_latency=comm_latency, comp_latency=comp_latency)
        for i in range(n)
    ]


class TestPlanMath:
    def test_load_conservation(self):
        plan = compute_umr_plan(_homogeneous(), total_load=1000.0)
        assert plan.total_units == pytest.approx(1000.0)

    def test_homogeneous_round_is_uniform(self):
        plan = compute_umr_plan(_homogeneous(), total_load=1000.0)
        for round_chunks in plan.rounds:
            assert max(round_chunks) == pytest.approx(min(round_chunks))

    def test_recurrence_holds_between_rounds(self):
        """Dispatch time of round j+1 equals compute time of round j
        (the UMR steady-state condition) for all interior rounds."""
        workers = _homogeneous()
        plan = compute_umr_plan(workers, total_load=1000.0)
        # the final round is rescaled to conserve load, so test interior ones
        for j in range(plan.num_rounds - 2):
            compute_j = workers[0].comp_latency + plan.rounds[j][0] / workers[0].speed
            dispatch_j1 = sum(
                w.comm_latency + a / w.bandwidth
                for w, a in zip(workers, plan.rounds[j + 1])
            )
            assert dispatch_j1 == pytest.approx(compute_j, rel=1e-6)

    def test_chunks_grow_when_compute_bound(self):
        # rho = sum S/B = 4/10 < 1 -> geometric growth
        plan = compute_umr_plan(_homogeneous(), total_load=1000.0)
        totals = plan.round_totals()
        assert all(b > a for a, b in zip(totals, totals[1:]))
        assert plan.stats.growth_ratio == pytest.approx(10.0 / 4.0)

    def test_heterogeneous_equal_compute_time_within_round(self):
        workers = [
            WorkerSpec("a", speed=2.0, bandwidth=20.0, comm_latency=0.3, comp_latency=0.1),
            WorkerSpec("b", speed=1.0, bandwidth=10.0, comm_latency=0.5, comp_latency=0.2),
            WorkerSpec("c", speed=0.5, bandwidth=5.0, comm_latency=0.7, comp_latency=0.4),
        ]
        plan = compute_umr_plan(workers, total_load=500.0)
        for round_chunks in plan.rounds[:-1]:  # last round is rescaled
            times = [
                w.comp_latency + a / w.speed for w, a in zip(workers, round_chunks)
            ]
            assert max(times) == pytest.approx(min(times), rel=1e-6)

    def test_round_count_responds_to_startup_costs(self):
        """Higher start-up costs make many rounds expensive -> fewer rounds."""
        cheap = compute_umr_plan(
            _homogeneous(comm_latency=0.05, comp_latency=0.02), total_load=1000.0
        )
        pricey = compute_umr_plan(
            _homogeneous(comm_latency=5.0, comp_latency=2.0), total_load=1000.0
        )
        assert pricey.num_rounds <= cheap.num_rounds

    def test_predicted_makespan_exceeds_ideal(self):
        workers = _homogeneous()
        plan = compute_umr_plan(workers, total_load=1000.0)
        ideal = 1000.0 / sum(w.speed for w in workers)
        assert plan.stats.predicted_makespan > ideal

    def test_tiny_load_is_infeasible(self):
        with pytest.raises(InfeasibleScheduleError):
            compute_umr_plan(_homogeneous(comp_latency=50.0), total_load=1.0,
                             quantum=1.0)

    def test_invalid_inputs(self):
        with pytest.raises(SchedulingError):
            compute_umr_plan([], total_load=10.0)
        with pytest.raises(SchedulingError):
            compute_umr_plan(_homogeneous(), total_load=-1.0)


class TestProportionalFallback:
    def test_chunks_proportional_to_speed(self):
        workers = [
            WorkerSpec("a", speed=3.0, bandwidth=10.0),
            WorkerSpec("b", speed=1.0, bandwidth=10.0),
        ]
        plan = proportional_one_round(workers, total_load=100.0)
        assert plan.rounds[0][0] == pytest.approx(75.0)
        assert plan.rounds[0][1] == pytest.approx(25.0)
        assert math.isnan(plan.stats.growth_ratio)


class TestUMRScheduler:
    def test_end_to_end_load_conserved(self, small_grid):
        report = simulate_run(small_grid, UMR(), total_load=500.0, seed=0)
        assert sum(c.units for c in report.chunks) == pytest.approx(500.0)

    def test_fallback_on_infeasible_load(self):
        grid_workers = _homogeneous(comp_latency=60.0)
        from repro.platform.resources import Grid

        grid = Grid(workers=tuple(grid_workers))
        report = simulate_run(grid, UMR(), total_load=2.0, seed=0)
        assert report.annotations["umr_fallback_one_round"] is True

    def test_annotations_present(self, small_grid):
        report = simulate_run(small_grid, UMR(), total_load=500.0, seed=0)
        assert report.annotations["umr_rounds"] >= 1
        assert report.annotations["umr_t0"] > 0

    def test_makespan_close_to_prediction_at_gamma_zero(self):
        grid = das2_cluster(nodes=16)
        scheduler = UMR()
        report = simulate_run(grid, scheduler, total_load=10_000.0, seed=0)
        predicted = scheduler.plan.stats.predicted_makespan
        assert report.makespan == pytest.approx(predicted, rel=0.05)

    def test_beats_simple1_on_das2(self):
        """The headline Figure 2 ordering at gamma = 0."""
        from repro.core.simple import SimpleN

        grid = das2_cluster(nodes=16)
        umr = simulate_run(grid, UMR(), total_load=10_000.0, seed=1)
        simple = simulate_run(grid, SimpleN(1), total_load=10_000.0, seed=1)
        assert simple.makespan > umr.makespan * 1.2

    def test_no_advantage_on_low_latency_meteor(self):
        """Figure 3, gamma = 0: low start-up costs erase UMR's edge."""
        from repro.core.factoring import WeightedFactoring

        grid = meteor_cluster(nodes=16)
        umr = simulate_run(grid, UMR(), total_load=10_000.0, seed=1)
        wf = simulate_run(grid, WeightedFactoring(), total_load=10_000.0, seed=1)
        assert wf.makespan < umr.makespan * 1.15

    def test_respects_estimates_not_truth(self, small_grid):
        """UMR plans from probe estimates; with perfect estimates disabled
        and a noisy platform the plan differs run to run."""
        r1 = simulate_run(small_grid, UMR(), total_load=500.0, gamma=0.3, seed=1)
        r2 = simulate_run(small_grid, UMR(), total_load=500.0, gamma=0.3, seed=2)
        assert r1.makespan != r2.makespan
