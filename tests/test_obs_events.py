"""Tests for the structured event bus and its sinks."""

import io
import logging

import pytest

from repro.errors import ReproError
from repro.obs import (
    CHUNK_COMPLETED,
    CHUNK_DISPATCHED,
    EVENT_TYPES,
    JOB_SUBMITTED,
    OBS_LOGGER_NAME,
    Event,
    EventBus,
    JsonlSink,
    LoggingSink,
    RingBufferSink,
)


def _emit_n(bus, n, name=CHUNK_DISPATCHED):
    for i in range(n):
        bus.emit(name, sim_time=float(i), chunk_id=i)


class TestEvent:
    def test_dict_round_trip(self):
        event = Event(
            name=CHUNK_DISPATCHED,
            wall_time=123.5,
            sim_time=7.25,
            fields={"chunk_id": 3, "worker": "w0"},
        )
        assert Event.from_dict(event.to_dict()) == event

    def test_optional_sim_time_omitted(self):
        event = Event(name=JOB_SUBMITTED, wall_time=1.0)
        data = event.to_dict()
        assert "sim_time" not in data
        assert Event.from_dict(data).sim_time is None

    def test_malformed_record_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            Event.from_dict({"name": "x"})


class TestRingBufferSink:
    def test_eviction_keeps_newest_in_order(self):
        sink = RingBufferSink(capacity=3)
        bus = EventBus([sink])
        _emit_n(bus, 5)
        ids = [e.fields["chunk_id"] for e in sink.events()]
        assert ids == [2, 3, 4]  # oldest evicted first, order preserved
        assert len(sink) == 3

    def test_name_filter(self):
        sink = RingBufferSink(capacity=10)
        bus = EventBus([sink])
        bus.emit(CHUNK_DISPATCHED, chunk_id=0)
        bus.emit(CHUNK_COMPLETED, chunk_id=0)
        assert [e.name for e in sink.events(CHUNK_COMPLETED)] == [CHUNK_COMPLETED]

    def test_clear(self):
        sink = RingBufferSink(capacity=4)
        bus = EventBus([sink])
        _emit_n(bus, 2)
        sink.clear()
        assert len(sink) == 0

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        bus = EventBus([sink])
        _emit_n(bus, 3)
        bus.emit(JOB_SUBMITTED, job_id=1, algorithm="umr")
        bus.close()

        events = JsonlSink.read(path)
        assert len(events) == 4
        assert [e.name for e in events[:3]] == [CHUNK_DISPATCHED] * 3
        assert events[3].name == JOB_SUBMITTED
        assert events[3].fields == {"job_id": 1, "algorithm": "umr"}
        assert events[0].sim_time == 0.0

    def test_stream_target(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        bus = EventBus([sink])
        _emit_n(bus, 2)
        bus.close()  # flushes but must not close a borrowed stream
        assert len(stream.getvalue().splitlines()) == 2

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "chunk.dispatched", "wall_time": 1.0}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            JsonlSink.read(path)


class TestLoggingSink:
    def test_bridges_to_stdlib_logging(self):
        logger = logging.getLogger(f"{OBS_LOGGER_NAME}.test_bridge")
        logger.setLevel(logging.DEBUG)
        logger.propagate = False
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        logger.addHandler(handler)
        try:
            bus = EventBus([LoggingSink(logger)])
            bus.emit(CHUNK_DISPATCHED, sim_time=1.5, chunk_id=7, worker="w3")
            text = stream.getvalue()
            assert "chunk.dispatched" in text
            assert "chunk_id=7" in text
            assert "t=1.500s" in text
        finally:
            logger.removeHandler(handler)

    def test_disabled_level_suppresses(self):
        logger = logging.getLogger(f"{OBS_LOGGER_NAME}.test_quiet")
        logger.setLevel(logging.ERROR)
        logger.propagate = False
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        logger.addHandler(handler)
        try:
            bus = EventBus([LoggingSink(logger, level=logging.DEBUG)])
            bus.emit(CHUNK_DISPATCHED, chunk_id=1)
            assert stream.getvalue() == ""
        finally:
            logger.removeHandler(handler)


class TestEventBus:
    def test_unknown_event_name_rejected(self):
        bus = EventBus([RingBufferSink()])
        with pytest.raises(ReproError, match="taxonomy is closed"):
            bus.emit("chunk.teleported")

    def test_disabled_without_sinks(self):
        bus = EventBus()
        assert not bus.enabled
        bus.emit("chunk.teleported")  # no sinks: not even validated

    def test_attach_requires_write(self):
        bus = EventBus()
        with pytest.raises(ReproError, match="write"):
            bus.attach(object())
        bus.attach(RingBufferSink())
        assert bus.enabled

    def test_fan_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        bus = EventBus([a, b])
        _emit_n(bus, 2)
        assert len(a) == len(b) == 2

    def test_taxonomy_is_nonempty_and_namespaced(self):
        assert EVENT_TYPES
        assert all("." in name for name in EVENT_TYPES)
