"""End-to-end durability: SIGKILL a gateway, restart or fail over, no job lost.

These tests drive real ``apst-dv serve`` processes over a shared SQLite
store file -- the deployment shape the durable store exists for:

* crash recovery: kill a gateway mid-batch, restart it on the same
  store, and every admitted job still reaches a terminal state exactly
  once (no loss, no double-run);
* two-daemon sharding: two gateways partition tenants by consistent
  hash with zero double-claims, and when one is killed the survivor
  steals its expired leases and finishes its jobs.
"""

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.net import GatewayClient
from repro.store import TERMINAL_STATES, SqliteStore, tenant_shard

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(255) * 80)  # 20400 bytes
    (tmp_path / "probe.bin").write_bytes(bytes(100))
    return tmp_path


def _spawn_gateway(workspace, store_path, *extra_args):
    """Start ``apst-dv serve --store`` as a real process; returns (proc, port)."""
    env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--base-dir", str(workspace),
            "--store", str(store_path),
            *extra_args,
        ],
        cwd=str(workspace),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "gateway listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        raise RuntimeError("gateway did not report a listening port")
    return proc, port


def _stop(proc):
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    proc.stdout.close()


def _wait_all_terminal(port, expected_total, *, timeout_s=90.0):
    """Poll /stats until every job in the store is terminal; returns stats."""
    deadline = time.monotonic() + timeout_s
    with GatewayClient("127.0.0.1", port, timeout_s=10.0) as client:
        while time.monotonic() < deadline:
            stats = client.server_stats()
            terminal = sum(stats[state] for state in TERMINAL_STATES)
            if stats["total"] >= expected_total and terminal == stats["total"]:
                return stats
            time.sleep(0.2)
    raise AssertionError(f"jobs did not all finish within {timeout_s}s: {stats}")


def _assert_exactly_once(store, job_ids):
    """Every job is DONE and entered a terminal state exactly once."""
    for job_id in job_ids:
        assert store.get_job(job_id).state == "done"
    terminal_entries = Counter(
        t.job_id
        for t in store.transitions()
        if t.to_state in TERMINAL_STATES
    )
    doubled = {j: n for j, n in terminal_entries.items() if n != 1}
    assert not doubled, f"jobs finished more than once: {doubled}"
    assert set(job_ids) <= set(terminal_entries)


def test_gateway_crash_recovery_is_exactly_once(workspace, tmp_path):
    """SIGKILL mid-batch + restart on the same store loses nothing."""
    store_path = tmp_path / "jobs.db"
    proc, port = _spawn_gateway(workspace, store_path, "--lease", "1")
    job_ids = []
    try:
        with GatewayClient("127.0.0.1", port, timeout_s=10.0) as client:
            for _ in range(8):
                job_ids.append(client.submit(TASK_XML))
        # admitted (durably recorded) but batches may be mid-flight: the
        # crash must not lose queued jobs or double-run running ones
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
    finally:
        _stop(proc)

    assert len(job_ids) == 8
    restarted, port = _spawn_gateway(workspace, store_path, "--lease", "1")
    try:
        _wait_all_terminal(port, len(job_ids))
    finally:
        _stop(restarted)

    store = SqliteStore(store_path)
    try:
        _assert_exactly_once(store, job_ids)
        # the restart shows up in the audit as a second owner generation:
        # claims from the dead instance, then claims/steals from the new one
        owners = {record.owner for record in store.claim_audit()}
        assert len(owners) >= 2
    finally:
        store.close()


def test_two_daemon_sharding_with_failover(workspace, tmp_path):
    """Two gateways on one store: disjoint claims, survivor takes over."""
    store_path = tmp_path / "jobs.db"
    tenants = ["alpha", "beta", "gamma", "delta"]
    # consistent hashing fixes each tenant's shard; precompute both sides
    shard_of = {tenant: tenant_shard(tenant, 2) for tenant in tenants}
    assert set(shard_of.values()) == {0, 1}, shard_of

    proc_a, port_a = _spawn_gateway(
        workspace, store_path, "--shard", "0/2", "--lease", "3")
    proc_b, port_b = _spawn_gateway(
        workspace, store_path, "--shard", "1/2", "--lease", "3")
    try:
        # -- phase 1: 100 jobs across 4 tenants, both daemons healthy ------
        job_ids = []
        with GatewayClient("127.0.0.1", port_a, timeout_s=10.0) as ca, \
                GatewayClient("127.0.0.1", port_b, timeout_s=10.0) as cb:
            for i in range(100):
                client = ca if i % 2 == 0 else cb
                job_ids.append(
                    client.submit(TASK_XML, tenant=tenants[i % 4])
                )
        _wait_all_terminal(port_a, 100)

        store = SqliteStore(store_path)
        try:
            audit = store.claim_audit()
            claims_per_job = Counter(r.job_id for r in audit)
            doubled = {j: n for j, n in claims_per_job.items() if n != 1}
            assert not doubled, f"double-claimed jobs: {doubled}"
            assert not [r for r in audit if r.kind == "steal"]
            # claims partition by tenant hash: each shard's jobs were all
            # claimed by one owner, and both owners did work
            owner_of_job = {r.job_id: r.owner for r in audit}
            owner_of_shard = {}
            for job_id in job_ids:
                record = store.get_job(job_id)
                shard = shard_of[record.tenant]
                owner_of_shard.setdefault(shard, set()).add(owner_of_job[job_id])
            assert all(len(owners) == 1 for owners in owner_of_shard.values())
            assert owner_of_shard[0] != owner_of_shard[1]
            _assert_exactly_once(store, job_ids)
        finally:
            store.close()

        # -- phase 2: kill daemon A while it holds leases; B steals them ---
        (owner_a,) = owner_of_shard[0]
        (owner_b,) = owner_of_shard[1]
        shard0_tenant = next(t for t in tenants if shard_of[t] == 0)
        more_ids = []
        with GatewayClient("127.0.0.1", port_b, timeout_s=10.0) as cb:
            # a wave big enough that A is still working through it when the
            # kill lands (it claims the whole shard-0 wave in one sweep)
            for _ in range(200):
                more_ids.append(cb.submit(TASK_XML, tenant=shard0_tenant))
        store = SqliteStore(store_path)
        try:
            deadline = time.monotonic() + 30.0
            wave = set(more_ids)
            while time.monotonic() < deadline:
                claimed = {
                    r.job_id for r in store.claim_audit()
                    if r.owner == owner_a and r.job_id in wave
                }
                if claimed:
                    break
                time.sleep(0.01)
            assert claimed, "daemon A never claimed its shard's wave"
        finally:
            store.close()
        os.kill(proc_a.pid, signal.SIGKILL)
        proc_a.wait()

        _wait_all_terminal(port_b, 300, timeout_s=120.0)
        store = SqliteStore(store_path)
        try:
            _assert_exactly_once(store, job_ids + more_ids)
            steals = [r for r in store.claim_audit() if r.kind == "steal"]
            assert steals, "survivor never stole the dead daemon's leases"
            assert {r.owner for r in steals} == {owner_b}
        finally:
            store.close()
    finally:
        _stop(proc_a)
        _stop(proc_b)
