"""Unit tests for the platform description layer."""

import pytest

from repro.errors import PlatformError
from repro.platform.resources import Cluster, Grid, WorkerSpec


class TestWorkerSpec:
    def test_valid_worker(self):
        w = WorkerSpec("w0", speed=2.0, bandwidth=10.0, comm_latency=0.5, comp_latency=0.1)
        assert w.comm_comp_ratio == 5.0
        assert w.unit_compute_time() == 0.5
        assert w.unit_transfer_time() == 0.1

    @pytest.mark.parametrize("field,value", [
        ("speed", 0.0), ("speed", -1.0), ("bandwidth", 0.0),
        ("comm_latency", -0.1), ("comp_latency", -1.0),
    ])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(name="w", speed=1.0, bandwidth=1.0, comm_latency=0.0, comp_latency=0.0)
        kwargs[field] = value
        with pytest.raises(PlatformError):
            WorkerSpec(**kwargs)

    def test_empty_name_rejected(self):
        with pytest.raises(PlatformError, match="name"):
            WorkerSpec("", speed=1.0, bandwidth=1.0)

    def test_nan_speed_rejected(self):
        with pytest.raises(PlatformError):
            WorkerSpec("w", speed=float("nan"), bandwidth=1.0)

    def test_affine_compute_time(self):
        w = WorkerSpec("w", speed=2.0, bandwidth=4.0, comp_latency=1.0)
        assert w.compute_time(6.0) == pytest.approx(1.0 + 3.0)
        assert w.compute_time(0.0) == pytest.approx(1.0)

    def test_affine_transfer_time(self):
        w = WorkerSpec("w", speed=2.0, bandwidth=4.0, comm_latency=0.5)
        assert w.transfer_time(8.0) == pytest.approx(0.5 + 2.0)

    def test_negative_chunk_rejected(self):
        w = WorkerSpec("w", speed=1.0, bandwidth=1.0)
        with pytest.raises(PlatformError):
            w.compute_time(-1.0)

    def test_scaled_preserves_other_fields(self):
        w = WorkerSpec("w", speed=2.0, bandwidth=4.0, comm_latency=0.5, cluster="c")
        s = w.scaled(speed_factor=0.5, bandwidth_factor=2.0)
        assert s.speed == 1.0 and s.bandwidth == 8.0
        assert s.comm_latency == 0.5 and s.cluster == "c" and s.name == "w"


class TestCluster:
    def test_homogeneous_factory(self):
        c = Cluster.homogeneous("das2", 4, speed=1.0, bandwidth=2.0, comm_latency=0.1)
        assert len(c) == 4
        assert [w.name for w in c.workers] == [f"das2-{i:02d}" for i in range(4)]
        assert all(w.cluster == "das2" for w in c.workers)

    def test_empty_cluster_rejected(self):
        with pytest.raises(PlatformError):
            Cluster("c", ())

    def test_zero_count_rejected(self):
        with pytest.raises(PlatformError):
            Cluster.homogeneous("c", 0, speed=1.0, bandwidth=1.0)

    def test_mismatched_worker_cluster_rejected(self):
        w = WorkerSpec("w", speed=1.0, bandwidth=1.0, cluster="other")
        with pytest.raises(PlatformError, match="declares cluster"):
            Cluster("mine", (w,))


class TestGrid:
    def test_from_clusters_concatenates_in_order(self):
        a = Cluster.homogeneous("a", 2, speed=1.0, bandwidth=1.0)
        b = Cluster.homogeneous("b", 3, speed=2.0, bandwidth=2.0)
        grid = Grid.from_clusters(a, b)
        assert len(grid) == 5
        assert grid.clusters == ("a", "b")
        assert [w.cluster for w in grid] == ["a", "a", "b", "b", "b"]

    def test_duplicate_worker_names_rejected(self):
        w = WorkerSpec("same", speed=1.0, bandwidth=1.0)
        with pytest.raises(PlatformError, match="duplicate"):
            Grid(workers=(w, w))

    def test_duplicate_cluster_names_rejected(self):
        a = Cluster.homogeneous("x", 1, speed=1.0, bandwidth=1.0)
        with pytest.raises(PlatformError, match="duplicate"):
            Grid.from_clusters(a, a)

    def test_empty_grid_rejected(self):
        with pytest.raises(PlatformError):
            Grid(workers=())

    def test_total_and_mean_speed(self, hetero_grid):
        assert hetero_grid.total_speed == pytest.approx(3.5)
        assert hetero_grid.mean_speed == pytest.approx(3.5 / 3)

    def test_comm_comp_ratio_homogeneous(self, small_grid):
        assert small_grid.comm_comp_ratio == pytest.approx(10.0)

    def test_index_of(self, hetero_grid):
        assert hetero_grid.index_of("mid") == 1
        with pytest.raises(PlatformError):
            hetero_grid.index_of("missing")

    def test_subset_preserves_order(self, hetero_grid):
        sub = hetero_grid.subset([2, 0])
        assert [w.name for w in sub] == ["slow", "fast"]

    def test_subset_out_of_range(self, hetero_grid):
        with pytest.raises(PlatformError):
            hetero_grid.subset([5])

    def test_subset_empty_rejected(self, hetero_grid):
        with pytest.raises(PlatformError):
            hetero_grid.subset([])

    def test_cluster_workers(self, small_grid):
        assert len(small_grid.cluster_workers("test")) == 4
        with pytest.raises(PlatformError):
            small_grid.cluster_workers("nope")
