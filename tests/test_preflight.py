"""Tests for submission pre-flight checks."""

import pytest

from repro.apst.division import UniformBytesDivision, UniformUnitsDivision
from repro.apst.preflight import Finding, preflight_check
from repro.apst.xmlspec import DivisibilitySpec, TaskSpec
from repro.platform.resources import Cluster, Grid


@pytest.fixture
def grid():
    return Grid.from_clusters(
        Cluster.homogeneous("g", 4, speed=1.0, bandwidth=10.0)
    )


def _task(method="uniform", algorithm="umr", **kwargs):
    defaults = dict(input="load.bin", method=method, algorithm=algorithm)
    if method == "uniform":
        defaults.update(steptype="bytes", stepsize=10)
    defaults.update(kwargs)
    return TaskSpec(executable="app", divisibility=DivisibilitySpec(**defaults))


def _codes(findings):
    return [f.code for f in findings]


class TestAlgorithmChecks:
    def test_unknown_algorithm_is_error(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(_task(algorithm="warp-drive"), grid,
                                   base_dir=tmp_path)
        assert "unknown-algorithm" in _codes(findings)
        assert any(f.severity == "error" for f in findings)

    def test_simple_n_gets_performance_warning(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(_task(algorithm="simple-1"), grid,
                                   base_dir=tmp_path)
        assert "static-chunking" in _codes(findings)

    def test_clean_submission_has_no_errors(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        (tmp_path / "probe.bin").write_bytes(bytes(10))
        findings = preflight_check(_task(probe="probe.bin"), grid,
                                   base_dir=tmp_path)
        assert not [f for f in findings if f.severity == "error"]


class TestFileChecks:
    def test_missing_input(self, grid, tmp_path):
        findings = preflight_check(_task(), grid, base_dir=tmp_path)
        assert "missing-input" in _codes(findings)

    def test_empty_input(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(b"")
        findings = preflight_check(_task(), grid, base_dir=tmp_path)
        assert "empty-input" in _codes(findings)

    def test_missing_index_file(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(
            _task(method="index", indexfile="load.idx"), grid, base_dir=tmp_path
        )
        assert "missing-index" in _codes(findings)

    def test_missing_callback_program(self, grid, tmp_path):
        findings = preflight_check(
            _task(method="callback", callback="extract.pl", load=100),
            grid, base_dir=tmp_path,
        )
        assert "missing-callback" in _codes(findings)

    def test_module_callback_not_flagged(self, grid, tmp_path):
        findings = preflight_check(
            _task(method="callback",
                  callback="python -m repro.workloads.video_callback",
                  load=100),
            grid, base_dir=tmp_path,
        )
        assert "missing-callback" not in _codes(findings)


class TestProbeChecks:
    def test_probing_algorithm_without_probe_warns(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(_task(algorithm="umr"), grid, base_dir=tmp_path)
        assert "no-probe-input" in _codes(findings)

    def test_simple_does_not_need_probe(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(_task(algorithm="simple-1"), grid,
                                   base_dir=tmp_path)
        assert "no-probe-input" not in _codes(findings)

    def test_missing_probe_file_is_error(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        findings = preflight_check(_task(probe="ghost.bin"), grid,
                                   base_dir=tmp_path)
        assert "missing-probe" in _codes(findings)


class TestDivisionChecks:
    def test_coarse_division_warns(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        division = UniformUnitsDivision(total=100.0, step=50.0)
        findings = preflight_check(_task(probe_load=5), grid,
                                   base_dir=tmp_path, division=division)
        assert "coarse-division" in _codes(findings)

    def test_indivisible_load_is_error(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        division = UniformUnitsDivision(total=100.0, step=100.0)
        findings = preflight_check(_task(probe_load=5), grid,
                                   base_dir=tmp_path, division=division)
        assert "indivisible-load" in _codes(findings)

    def test_very_fine_division_warns(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(100))
        division = UniformUnitsDivision(total=1e9, step=1.0)
        findings = preflight_check(_task(probe_load=5), grid,
                                   base_dir=tmp_path, division=division)
        assert "very-fine-division" in _codes(findings)

    def test_tiny_load_warns(self, grid, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(2))
        division = UniformBytesDivision(tmp_path / "load.bin", stepsize=1)
        findings = preflight_check(_task(probe_load=1), grid,
                                   base_dir=tmp_path, division=division)
        assert "load-smaller-than-platform" in _codes(findings)


class TestFindingFormat:
    def test_str_rendering(self):
        f = Finding("warning", "demo", "something looks off")
        assert str(f) == "[warning] demo: something looks off"
