"""Tests for the XML application and platform specifications."""

import pytest

from repro.apst.division import (
    CallbackDivision,
    IndexDivision,
    SeparatorDivision,
    UniformBytesDivision,
)
from repro.apst.xmlspec import (
    DivisibilitySpec,
    build_division,
    parse_platform,
    parse_task,
    task_to_xml,
)
from repro.errors import SpecificationError

FIGURE_1 = """
<task executable="a_divisible_app" input="bigfile">
  <divisibility input="bigfile" method="uniform" start="0"
                steptype="bytes" stepsize="10"
                algorithm="rumr" probe="probefile"/>
</task>
"""

FIGURE_6 = """
<task executable="run_mencoder.sh" arguments="input.avi mpeg4.avi"
      input="input.avi" output="mpeg4.avi">
  <divisibility input="input.avi" method="callback" load="1830"
                callback="callback_avisplit.pl" arguments="input.avi"
                algorithm="rumr" probe="probe.avi" probe_load="21"/>
</task>
"""


class TestPaperListings:
    def test_figure_1_parses(self):
        spec = parse_task(FIGURE_1)
        assert spec.executable == "a_divisible_app"
        d = spec.divisibility
        assert d.method == "uniform"
        assert d.steptype == "bytes"
        assert d.stepsize == 10
        assert d.start == 0
        assert d.algorithm == "rumr"
        assert d.probe == "probefile"

    def test_figure_6_parses(self):
        spec = parse_task(FIGURE_6)
        assert spec.output == "mpeg4.avi"
        d = spec.divisibility
        assert d.method == "callback"
        assert d.load == 1830
        assert d.callback == "callback_avisplit.pl"
        assert d.probe_load == 21

    @pytest.mark.parametrize("xml", [FIGURE_1, FIGURE_6])
    def test_round_trip(self, xml):
        spec = parse_task(xml)
        assert parse_task(task_to_xml(spec)) == spec


class TestValidation:
    def test_wrong_root_element(self):
        with pytest.raises(SpecificationError, match="task"):
            parse_task("<job executable='x'/>")

    def test_missing_executable(self):
        with pytest.raises(SpecificationError, match="executable"):
            parse_task("<task><divisibility input='f' method='uniform'/></task>")

    def test_missing_divisibility(self):
        with pytest.raises(SpecificationError, match="exactly one"):
            parse_task("<task executable='x'/>")

    def test_two_divisibility_elements(self):
        xml = (
            "<task executable='x'>"
            "<divisibility input='f' method='uniform' stepsize='1'/>"
            "<divisibility input='f' method='uniform' stepsize='1'/>"
            "</task>"
        )
        with pytest.raises(SpecificationError, match="exactly one"):
            parse_task(xml)

    def test_unknown_method(self):
        with pytest.raises(SpecificationError, match="method"):
            DivisibilitySpec(input="f", method="magic")

    def test_separator_requires_separator_char(self):
        with pytest.raises(SpecificationError, match="separator"):
            DivisibilitySpec(input="f", method="uniform", steptype="separator")

    def test_index_requires_indexfile(self):
        with pytest.raises(SpecificationError, match="indexfile"):
            DivisibilitySpec(input="f", method="index")

    def test_callback_requires_program_and_load(self):
        with pytest.raises(SpecificationError, match="callback"):
            DivisibilitySpec(input="f", method="callback", load=10)
        with pytest.raises(SpecificationError, match="load"):
            DivisibilitySpec(input="f", method="callback", callback="p.pl")

    def test_non_integer_attribute(self):
        xml = (
            "<task executable='x'>"
            "<divisibility input='f' method='uniform' stepsize='ten'/>"
            "</task>"
        )
        with pytest.raises(SpecificationError, match="integer"):
            parse_task(xml)

    def test_unknown_attribute_rejected(self):
        xml = (
            "<task executable='x'>"
            "<divisibility input='f' method='uniform' stepsize='1' wibble='2'/>"
            "</task>"
        )
        with pytest.raises(SpecificationError, match="unknown"):
            parse_task(xml)

    def test_malformed_xml(self):
        with pytest.raises(SpecificationError, match="malformed"):
            parse_task("<task executable='x'")

    def test_missing_file_path(self, tmp_path):
        with pytest.raises(SpecificationError, match="not found"):
            parse_task(tmp_path / "nope.xml")


class TestBuildDivision:
    def test_uniform_bytes(self, tmp_path):
        (tmp_path / "bigfile").write_bytes(bytes(100))
        spec = parse_task(FIGURE_1).divisibility
        division = build_division(spec, tmp_path)
        assert isinstance(division, UniformBytesDivision)
        assert division.total_units == 100.0

    def test_separator(self, tmp_path):
        (tmp_path / "records").write_bytes(b"a\nb\n")
        spec = DivisibilitySpec(input="records", method="uniform",
                                steptype="separator", separator="\n")
        division = build_division(spec, tmp_path)
        assert isinstance(division, SeparatorDivision)

    def test_index(self, tmp_path):
        (tmp_path / "load").write_bytes(bytes(50))
        (tmp_path / "load.idx").write_text("25\n")
        spec = DivisibilitySpec(input="load", method="index", indexfile="load.idx")
        division = build_division(spec, tmp_path)
        assert isinstance(division, IndexDivision)

    def test_callback_module_form(self, tmp_path):
        from repro.workloads.video import write_dv_file

        write_dv_file(tmp_path / "in.tdv", frames=10, frame_bytes=64)
        spec = DivisibilitySpec(
            input="in.tdv", method="callback", load=10,
            callback="python -m repro.workloads.video_callback",
            arguments="in.tdv",
        )
        division = build_division(spec, tmp_path)
        assert isinstance(division, CallbackDivision)
        from repro.apst.division import ChunkExtent

        payload = division.extract(ChunkExtent(offset=2.0, units=3.0))
        assert payload.nbytes > 0


class TestPlatformXML:
    def test_homogeneous_cluster(self):
        grid = parse_platform(
            "<platform><cluster name='c' nodes='3' speed='1.5' bandwidth='12'"
            " comm_latency='0.5' comp_latency='0.1'/></platform>"
        )
        assert len(grid) == 3
        assert grid.workers[0].speed == 1.5
        assert grid.workers[0].comm_latency == 0.5

    def test_explicit_workers(self):
        grid = parse_platform(
            "<platform><cluster name='c'>"
            "<worker name='a' speed='1' bandwidth='2'/>"
            "<worker name='b' speed='2' bandwidth='4' comm_latency='0.3'/>"
            "</cluster></platform>"
        )
        assert [w.name for w in grid] == ["a", "b"]
        assert grid.workers[1].comm_latency == 0.3

    def test_loose_workers_form_default_cluster(self):
        grid = parse_platform(
            "<platform><worker name='x' speed='1' bandwidth='2'/></platform>"
        )
        assert grid.clusters == ("default",)

    def test_preset_reference(self):
        grid = parse_platform("<platform><preset name='grail'/></platform>")
        assert len(grid) == 7

    def test_unknown_preset(self):
        with pytest.raises(SpecificationError):
            parse_platform("<platform><preset name='fermilab'/></platform>")

    def test_empty_platform_rejected(self):
        with pytest.raises(SpecificationError, match="no workers"):
            parse_platform("<platform/>")

    def test_unknown_element_rejected(self):
        with pytest.raises(SpecificationError, match="unknown platform element"):
            parse_platform("<platform><router name='r'/></platform>")

    def test_bad_number(self):
        with pytest.raises(SpecificationError, match="number"):
            parse_platform(
                "<platform><cluster name='c' nodes='2' speed='fast' bandwidth='1'/></platform>"
            )
