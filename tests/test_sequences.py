"""Tests for the HMMER-like sequence database workload."""

import pytest

from repro.apst.division import IndexDivision, LoadTracker, SeparatorDivision
from repro.errors import ReproError
from repro.workloads.sequences import (
    SequenceScanApp,
    build_record_index,
    database_statistics,
    generate_sequence_database,
    read_records,
)


@pytest.fixture
def database(tmp_path):
    path = tmp_path / "seqs.db"
    generate_sequence_database(path, records=300, mean_length=40, seed=4)
    return path


class TestGeneration:
    def test_record_count(self, database):
        assert len(read_records(database)) == 300

    def test_deterministic(self, tmp_path):
        a = generate_sequence_database(tmp_path / "a.db", records=50, seed=9)
        b = generate_sequence_database(tmp_path / "b.db", records=50, seed=9)
        assert a.read_bytes() == b.read_bytes()

    def test_records_are_protein_like(self, database):
        records = read_records(database)
        alphabet = set(b"ACDEFGHIKLMNPQRSTVWY")
        assert all(set(r) <= alphabet for r in records)
        assert all(len(r) >= 1 for r in records)

    def test_heavy_tail_produces_outliers(self, tmp_path):
        path = generate_sequence_database(
            tmp_path / "big.db", records=5000, mean_length=50,
            outlier_rate=0.01, outlier_scale=27.0, seed=1,
        )
        stats = database_statistics(path)
        assert stats["spread"] > 5.0  # HMMER-style enormous spread
        # the defining HMMER relation: spread dwarfs the CoV (Table 1:
        # 2700% spread at 9% CoV)
        assert stats["spread"] > 3.0 * stats["cov"]

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ReproError):
            generate_sequence_database(tmp_path / "x.db", records=0)


class TestIndexing:
    def test_index_matches_record_boundaries(self, database, tmp_path):
        index = build_record_index(database, tmp_path / "seqs.idx")
        offsets = [int(line) for line in index.read_text().split()]
        data = database.read_bytes()
        assert offsets[-1] == len(data)
        for off in offsets:
            assert data[off - 1:off] == b"\n"

    def test_index_division_cuts_on_records(self, database, tmp_path):
        index = build_record_index(database, tmp_path / "seqs.idx")
        division = IndexDivision(database, index)
        tracker = LoadTracker(division)
        while not tracker.exhausted:
            extent = tracker.take(450.0)
            chunk = division.extract(extent).read_bytes()
            assert chunk.endswith(b"\n")
            # every chunk holds whole records
            assert all(r for r in chunk[:-1].split(b"\n"))

    def test_separator_division_equivalent_cutoffs(self, database, tmp_path):
        index = build_record_index(database, tmp_path / "seqs.idx")
        via_index = IndexDivision(database, index)
        via_separator = SeparatorDivision(database, separator=b"\n")
        assert via_index.cutoffs == via_separator.cutoffs

    def test_unterminated_database_rejected(self, tmp_path):
        bad = tmp_path / "bad.db"
        bad.write_bytes(b"ACDEF")  # no trailing newline
        with pytest.raises(ReproError, match="record boundary"):
            build_record_index(bad, tmp_path / "bad.idx")
        with pytest.raises(ReproError, match="record boundary"):
            read_records(bad)


class TestStatistics:
    def test_statistics_fields(self, database):
        stats = database_statistics(database)
        assert stats["records"] == 300
        assert stats["total_bytes"] == database.stat().st_size
        assert stats["mean_length"] > 0
        assert stats["spread"] >= 0.0


class TestScanApp:
    def test_result_shape(self, database):
        app = SequenceScanApp(work_per_residue=2)
        records = read_records(database)
        chunk = b"\n".join(records[:10]) + b"\n"
        result = app.process(chunk)
        assert len(result) == 32 + 8

    def test_deterministic(self, database):
        app = SequenceScanApp(work_per_residue=2)
        chunk = read_records(database)[0] + b"\n"
        assert app.process(chunk) == app.process(chunk)

    def test_empty_chunk_rejected(self):
        with pytest.raises(ReproError):
            SequenceScanApp().process(b"")

    def test_invalid_work(self):
        with pytest.raises(ReproError):
            SequenceScanApp(work_per_residue=0)


class TestEndToEnd:
    def test_sequence_scan_on_local_backend(self, database, tmp_path):
        """Separator division + real scanning app through the backend."""
        from repro.core.registry import make_scheduler
        from repro.execution.local import LocalExecutionBackend
        from repro.platform.resources import Cluster, Grid

        division = SeparatorDivision(database, separator=b"\n")
        grid = Grid.from_clusters(
            Cluster.homogeneous("lan", 3, speed=5000.0, bandwidth=50_000.0,
                                comm_latency=0.05, comp_latency=0.02)
        )
        backend = LocalExecutionBackend(
            tmp_path / "work", app=SequenceScanApp(work_per_residue=1),
            time_scale=0.02,
        )
        report = backend.execute(grid, make_scheduler("wf"), division, None,
                                 probe_units=division.total_units * 0.02)
        assert sum(c.units for c in report.chunks) == pytest.approx(
            division.total_units
        )
