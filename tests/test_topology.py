"""Tests for multi-level topologies and their collapse to the star model."""

import pytest

from repro.errors import PlatformError
from repro.platform.topology import GridTopology, paper_two_cluster_topology


def _simple_topology():
    topo = GridTopology("m")
    topo.add_link("m", "router", bandwidth=5.0, latency=1.0)
    topo.add_worker("router", "w0", speed=1.0, bandwidth=50.0, latency=0.2)
    topo.add_worker("router", "w1", speed=2.0, bandwidth=2.0, latency=0.3)
    return topo


class TestConstruction:
    def test_links_must_be_added_top_down(self):
        topo = GridTopology("m")
        with pytest.raises(PlatformError, match="top-down"):
            topo.add_link("ghost", "x", bandwidth=1.0)

    def test_no_duplicate_nodes(self):
        topo = GridTopology("m")
        topo.add_link("m", "a", bandwidth=1.0)
        with pytest.raises(PlatformError, match="already exists"):
            topo.add_link("m", "a", bandwidth=2.0)

    def test_invalid_link_parameters(self):
        topo = GridTopology("m")
        with pytest.raises(PlatformError):
            topo.add_link("m", "a", bandwidth=0.0)
        with pytest.raises(PlatformError):
            topo.add_link("m", "a", bandwidth=1.0, latency=-1.0)

    def test_add_cluster_convenience(self):
        topo = GridTopology("m")
        topo.add_cluster("m", "c", 3, uplink_bandwidth=4.0, lan_bandwidth=40.0,
                         speed=1.0)
        grid = topo.collapse_to_grid()
        assert len(grid) == 3
        assert all(w.cluster == "c" for w in grid.workers)


class TestCollapse:
    def test_bottleneck_bandwidth(self):
        topo = _simple_topology()
        # w0: min(5, 50) = 5 (WAN-bound); w1: min(5, 2) = 2 (LAN-bound)
        assert topo.path_parameters("w0") == (5.0, pytest.approx(1.2))
        assert topo.path_parameters("w1") == (2.0, pytest.approx(1.3))

    def test_latencies_sum_along_path(self):
        grid = _simple_topology().collapse_to_grid()
        w0 = grid.workers[grid.index_of("w0")]
        assert w0.comm_latency == pytest.approx(1.2)

    def test_compute_parameters_preserved(self):
        grid = _simple_topology().collapse_to_grid()
        assert grid.workers[grid.index_of("w1")].speed == 2.0

    def test_deep_paths(self):
        topo = GridTopology("m")
        topo.add_link("m", "a", bandwidth=10.0, latency=0.5)
        topo.add_link("a", "b", bandwidth=3.0, latency=0.5)
        topo.add_worker("b", "w", speed=1.0, bandwidth=7.0, latency=0.5)
        assert topo.path_parameters("w") == (3.0, pytest.approx(1.5))

    def test_nonworker_query_rejected(self):
        topo = _simple_topology()
        with pytest.raises(PlatformError, match="worker leaf"):
            topo.path_parameters("router")

    def test_empty_topology_rejected(self):
        with pytest.raises(PlatformError, match="no workers"):
            GridTopology("m").collapse_to_grid()

    def test_dangling_router_rejected(self):
        topo = _simple_topology()
        topo.add_link("router", "dead-end", bandwidth=1.0)
        with pytest.raises(PlatformError, match="dangling"):
            topo.collapse_to_grid()


class TestPaperTopology:
    def test_collapses_to_paper_scale_star(self):
        grid = paper_two_cluster_topology().collapse_to_grid()
        assert len(grid) == 16
        assert sorted(grid.clusters) == ["das2", "meteor"]

    def test_wan_is_the_bottleneck_for_das2(self):
        topo = paper_two_cluster_topology()
        from repro.platform.presets import mixed_grid

        ref = mixed_grid().cluster_workers("das2")[0]
        bandwidth, latency = topo.path_parameters("das2-00")
        assert bandwidth == pytest.approx(ref.bandwidth)
        assert latency == pytest.approx(ref.comm_latency, rel=0.01)

    def test_collapsed_grid_schedules_like_the_preset(self):
        """UMR on the collapsed topology lands close to UMR on the
        directly-calibrated mixed preset."""
        from repro.core.registry import make_scheduler
        from repro.platform.presets import PAPER_LOAD_UNITS, mixed_grid
        from repro.simulation.master import simulate_run

        collapsed = paper_two_cluster_topology().collapse_to_grid()
        preset = mixed_grid()
        a = simulate_run(collapsed, make_scheduler("umr"),
                         total_load=PAPER_LOAD_UNITS, seed=0)
        b = simulate_run(preset, make_scheduler("umr"),
                         total_load=PAPER_LOAD_UNITS, seed=0)
        assert a.makespan == pytest.approx(b.makespan, rel=0.05)
