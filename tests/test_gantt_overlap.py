"""Tests for Gantt rendering and overlap metrics."""

import pytest

from repro.analysis.gantt import (
    _intersection_length,
    _union,
    overlap_metrics,
    render_gantt,
)
from repro.core.registry import make_scheduler
from repro.errors import ReproError
from repro.platform.presets import das2_cluster
from repro.simulation.master import simulate_run
from repro.simulation.trace import ExecutionReport


class TestIntervalHelpers:
    def test_union_merges_overlaps(self):
        assert _union([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_union_of_disjoint(self):
        assert _union([(3, 4), (0, 1)]) == [(0, 1), (3, 4)]

    def test_union_touching_intervals(self):
        assert _union([(0, 1), (1, 2)]) == [(0, 2)]

    def test_intersection_length(self):
        a = [(0.0, 5.0), (10.0, 12.0)]
        b = [(3.0, 11.0)]
        assert _intersection_length(a, b) == pytest.approx(2.0 + 1.0)

    def test_intersection_empty(self):
        assert _intersection_length([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0


class TestOverlapMetrics:
    def test_umr_overlaps_better_than_simple1(self, small_grid):
        umr = overlap_metrics(
            simulate_run(small_grid, make_scheduler("umr"), total_load=2000.0, seed=0)
        )
        simple = overlap_metrics(
            simulate_run(small_grid, make_scheduler("simple-1"), total_load=2000.0, seed=0)
        )
        assert umr.overlap_fraction > simple.overlap_fraction

    def test_umr_overlap_is_high_on_das2(self):
        grid = das2_cluster(16)
        report = simulate_run(grid, make_scheduler("umr"), total_load=10_000.0, seed=0)
        metrics = overlap_metrics(report)
        # UMR's design goal: almost all communication hidden
        assert metrics.overlap_fraction > 0.85

    def test_fractions_bounded(self, hetero_grid):
        for name in ("simple-1", "wf", "umr"):
            metrics = overlap_metrics(
                simulate_run(hetero_grid, make_scheduler(name), total_load=500.0, seed=1)
            )
            assert 0.0 <= metrics.overlap_fraction <= 1.0
            assert 0.0 <= metrics.idle_fraction <= 1.0

    def test_empty_report_rejected(self):
        report = ExecutionReport(
            algorithm="x", total_load=1.0, makespan=1.0, probe_time=0.0,
            chunks=[], link_busy_time=0.0, gamma_configured=0.0,
        )
        with pytest.raises(ReproError):
            overlap_metrics(report)


class TestGanttRendering:
    def test_contains_all_workers_and_link_row(self, small_grid):
        report = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0, seed=0)
        text = render_gantt(report)
        assert "link" in text
        for w in small_grid.workers:
            assert w.name in text
        assert "#" in text and "-" in text

    def test_width_respected(self, small_grid):
        report = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0, seed=0)
        text = render_gantt(report, width=60)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert all(len(l) <= 60 + 20 for l in body_lines)

    def test_narrow_width_rejected(self, small_grid):
        report = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0, seed=0)
        with pytest.raises(ReproError):
            render_gantt(report, width=5)

    def test_transfers_can_be_hidden(self, small_grid):
        report = simulate_run(small_grid, make_scheduler("simple-1"),
                              total_load=500.0, seed=0)
        with_t = render_gantt(report, include_transfers=True)
        without_t = render_gantt(report, include_transfers=False)
        # worker rows lose their '-' marks; the link row keeps them
        worker_rows_with = [l for l in with_t.splitlines()[2:] if "|" in l]
        worker_rows_without = [l for l in without_t.splitlines()[2:] if "|" in l]
        assert sum(l.count("-") for l in worker_rows_without) < sum(
            l.count("-") for l in worker_rows_with
        )
