"""Cross-validation: analytic models vs the discrete-event simulator.

Two independent implementations of the same cost model must agree to
float precision at gamma = 0 -- the strongest correctness evidence the
repository has for either implementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_scheduler
from repro.errors import SchedulingError
from repro.platform.presets import das2_cluster, grail_lan, meteor_cluster
from repro.platform.resources import Cluster, Grid, WorkerSpec
from repro.simulation.master import simulate_run
from repro.theory.models import (
    dispatch_schedule_makespan,
    lower_bounds,
    one_round_makespan,
    report_replay_makespan,
    static_chunking_makespan,
)


class TestLowerBounds:
    def test_bounds_computed(self, small_grid):
        lb = lower_bounds(small_grid, 1000.0)
        assert lb["compute"] == pytest.approx(250.0)
        assert lb["link"] == pytest.approx(100.0)
        assert lb["combined"] >= max(lb["compute"], lb["link"])

    def test_every_algorithm_respects_bounds(self, small_grid):
        lb = lower_bounds(small_grid, 800.0)
        for name in ("simple-1", "umr", "wf", "fixed-rumr", "oneround-affine"):
            report = simulate_run(small_grid, make_scheduler(name),
                                  total_load=800.0, seed=0)
            assert report.makespan >= lb["combined"] - 1e-9

    def test_invalid_load(self, small_grid):
        with pytest.raises(SchedulingError):
            lower_bounds(small_grid, 0.0)


class TestStaticChunkingModel:
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_matches_simulator_homogeneous(self, small_grid, n):
        analytic = static_chunking_makespan(small_grid, 800.0, n)
        simulated = simulate_run(small_grid, make_scheduler(f"simple-{n}"),
                                 total_load=800.0, seed=0)
        assert simulated.makespan == pytest.approx(analytic, rel=1e-9)

    @pytest.mark.parametrize("n", [1, 3])
    def test_matches_simulator_heterogeneous(self, hetero_grid, n):
        # load divisible by N*n so unit-quantized cut-offs match W/(N*n)
        load = 360.0
        analytic = static_chunking_makespan(hetero_grid, load, n)
        simulated = simulate_run(hetero_grid, make_scheduler(f"simple-{n}"),
                                 total_load=load, seed=0)
        assert simulated.makespan == pytest.approx(analytic, rel=1e-9)

    def test_matches_on_paper_platforms(self):
        load = 5600.0  # divisible by 16 and by 7 (grail)
        for grid in (das2_cluster(16), meteor_cluster(16), grail_lan()):
            analytic = static_chunking_makespan(grid, load, 1)
            simulated = simulate_run(grid, make_scheduler("simple-1"),
                                     total_load=load, seed=0)
            assert simulated.makespan == pytest.approx(analytic, rel=1e-9)


class TestScheduleReplay:
    @pytest.mark.parametrize(
        "name",
        ["simple-5", "umr", "wf", "fixed-rumr", "oneround-affine",
         "multiinstallment-4", "tss", "gss"],
    )
    def test_replaying_any_recorded_run_reproduces_its_makespan(
        self, hetero_grid, name
    ):
        report = simulate_run(hetero_grid, make_scheduler(name),
                              total_load=400.0, seed=0)
        replayed = report_replay_makespan(hetero_grid, report)
        assert replayed == pytest.approx(report.makespan, rel=1e-9)

    def test_replay_on_paper_platform(self):
        grid = das2_cluster(16)
        report = simulate_run(grid, make_scheduler("umr"),
                              total_load=10_000.0, seed=0)
        assert report_replay_makespan(grid, report) == pytest.approx(
            report.makespan, rel=1e-9
        )

    def test_one_round_model_consistent_with_solver(self, hetero_grid):
        from repro.core.oneround import solve_one_round

        chunks = solve_one_round(list(hetero_grid.workers), 300.0, affine=True)
        makespan = one_round_makespan(hetero_grid, chunks)
        # equal-finish construction: the analytic makespan equals every
        # participating worker's finish time; just sanity-bound it
        lb = lower_bounds(hetero_grid, 300.0)
        assert makespan >= lb["compute"]

    def test_invalid_dispatches(self, small_grid):
        with pytest.raises(SchedulingError):
            dispatch_schedule_makespan(small_grid, [(99, 10.0)])
        with pytest.raises(SchedulingError):
            dispatch_schedule_makespan(small_grid, [(0, -1.0)])


@given(
    speeds=st.lists(st.floats(min_value=0.3, max_value=4.0), min_size=1,
                    max_size=6),
    ratio=st.floats(min_value=3.0, max_value=40.0),
    nlat=st.floats(min_value=0.0, max_value=3.0),
    clat=st.floats(min_value=0.0, max_value=1.0),
    load=st.floats(min_value=50.0, max_value=5000.0),
    algorithm=st.sampled_from(["simple-1", "simple-4", "umr", "wf", "gss"]),
)
@settings(max_examples=60, deadline=None)
def test_property_simulator_equals_analytic_replay(
    speeds, ratio, nlat, clat, load, algorithm
):
    grid = Grid(
        workers=tuple(
            WorkerSpec(f"w{i}", speed=s, bandwidth=s * ratio,
                       comm_latency=nlat, comp_latency=clat)
            for i, s in enumerate(speeds)
        )
    )
    report = simulate_run(grid, make_scheduler(algorithm), total_load=load,
                          seed=0)
    assert report_replay_makespan(grid, report) == pytest.approx(
        report.makespan, rel=1e-9
    )
