"""Fixture tests: each rule family fails on its violating snippet and
passes its clean one.

Every test builds a miniature package tree in ``tmp_path`` (the engine
anchors rule scopes on *relative* paths, so ``<tmp>/simulation/bad.py``
is guarded exactly like the real ``simulation/`` package) and runs one
rule family over it.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import LintEngine
from repro.analysis.lint.rules import (
    AsyncBlockingRule,
    BarePrintRule,
    ClosedTaxonomyRule,
    LayeringRule,
    ProtocolConformanceRule,
    SimTimePurityRule,
    default_rules,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"


def build_tree(tmp_path, mapping):
    """Copy fixtures into a fake package tree: {rel path: fixture name}."""
    for rel, fixture in mapping.items():
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text((FIXTURES / fixture).read_text())
    return tmp_path


def lint(root, rule, strict=False):
    return LintEngine(root, [rule], strict=strict).run()


# -- sim-time purity ---------------------------------------------------------


def test_simtime_fails_on_violating_fixture(tmp_path):
    root = build_tree(tmp_path, {"simulation/bad.py": "simtime_violation.py"})
    violations = lint(root, SimTimePurityRule())
    assert [v.rule for v in violations] == ["sim-time"] * 4
    messages = " ".join(v.message for v in violations)
    assert "time.time()" in messages
    assert "time.perf_counter()" in messages
    assert "time.sleep()" in messages
    assert "datetime.datetime.now()" in messages


def test_simtime_passes_clean_fixture(tmp_path):
    root = build_tree(tmp_path, {"simulation/good.py": "simtime_clean.py"})
    assert lint(root, SimTimePurityRule()) == []


def test_simtime_ignores_unguarded_directories(tmp_path):
    # The same wall-clock calls are fine outside simulation/dispatch/theory.
    root = build_tree(tmp_path, {"workloads/bad.py": "simtime_violation.py"})
    assert lint(root, SimTimePurityRule()) == []


def test_simtime_guards_service_clock_file(tmp_path):
    root = build_tree(tmp_path, {"service/clock.py": "simtime_violation.py"})
    assert len(lint(root, SimTimePurityRule())) == 4


# -- closed taxonomy ---------------------------------------------------------


def _taxonomy_tree(tmp_path, fixture):
    return build_tree(
        tmp_path,
        {"obs/events.py": "obs_events_mini.py", "dispatch/emitters.py": fixture},
    )


def test_taxonomy_fails_on_violating_fixture(tmp_path):
    root = _taxonomy_tree(tmp_path, "taxonomy_violation.py")
    violations = lint(root, ClosedTaxonomyRule())
    assert [v.rule for v in violations] == ["taxonomy"] * 4
    messages = " ".join(v.message for v in violations)
    assert "chunk.dispached" in messages  # the typo is named
    assert "repro_" in messages  # the prefix rule is named


def test_taxonomy_passes_clean_fixture(tmp_path):
    root = _taxonomy_tree(tmp_path, "taxonomy_clean.py")
    assert lint(root, ClosedTaxonomyRule()) == []


def test_taxonomy_skips_trees_without_events_module(tmp_path):
    # No obs/events.py in the tree: nothing to check against.
    root = build_tree(tmp_path, {"dispatch/emitters.py": "taxonomy_violation.py"})
    assert lint(root, ClosedTaxonomyRule()) == []


def test_taxonomy_logger_name_constant_is_not_an_event(tmp_path):
    root = build_tree(
        tmp_path,
        {"obs/events.py": "obs_events_mini.py"},
    )
    (root / "daemon.py").write_text(
        "def run(bus):\n    bus.emit('repro.obs')\n"
    )
    violations = lint(root, ClosedTaxonomyRule())
    assert [v.rule for v in violations] == ["taxonomy"]


# -- protocol conformance ----------------------------------------------------


def _conformance_rule(classes):
    return ProtocolConformanceRule(adapters={"backends/adapter.py": classes})


def test_conformance_fails_on_drifted_adapters(tmp_path):
    root = build_tree(
        tmp_path,
        {
            "dispatch/protocols.py": "conformance_protocols.py",
            "backends/adapter.py": "conformance_violation.py",
        },
    )
    rule = _conformance_rule(
        {"BadClock": "Clock", "BadTransport": "Transport", "BadHost": "ComputeHost"}
    )
    violations = lint(root, rule)
    assert {v.rule for v in violations} == {"protocol"}
    messages = " ".join(v.message for v in violations)
    assert "now() missing" in messages
    assert "supports_outputs" in messages
    assert "busy" in messages
    assert "drifts" in messages  # send(chunk, units) parameter drift
    assert "enqueue" in messages  # undefaulted extra parameter
    assert len(violations) == 5


def test_conformance_passes_clean_adapters(tmp_path):
    root = build_tree(
        tmp_path,
        {
            "dispatch/protocols.py": "conformance_protocols.py",
            "backends/adapter.py": "conformance_clean.py",
        },
    )
    rule = _conformance_rule(
        {"GoodClock": "Clock", "GoodTransport": "Transport", "GoodHost": "ComputeHost"}
    )
    assert lint(root, rule) == []


def test_conformance_flags_stale_registry_entries(tmp_path):
    root = build_tree(
        tmp_path, {"dispatch/protocols.py": "conformance_protocols.py"}
    )
    rule = ProtocolConformanceRule(
        adapters={"backends/gone.py": {"Ghost": "Clock"}}
    )
    violations = lint(root, rule)
    assert len(violations) == 1
    assert "stale adapter registry entry" in violations[0].message


def test_conformance_flags_renamed_adapter_class(tmp_path):
    root = build_tree(
        tmp_path,
        {
            "dispatch/protocols.py": "conformance_protocols.py",
            "backends/adapter.py": "conformance_clean.py",
        },
    )
    rule = _conformance_rule({"RenamedAway": "Clock"})
    violations = lint(root, rule)
    assert len(violations) == 1
    assert "RenamedAway" in violations[0].message


# -- async blocking-call detection -------------------------------------------


def test_asyncblock_fails_on_violating_fixture(tmp_path):
    root = build_tree(tmp_path, {"net/bad.py": "asyncblock_violation.py"})
    violations = lint(root, AsyncBlockingRule())
    assert [v.rule for v in violations] == ["async-blocking"] * 4
    messages = " ".join(v.message for v in violations)
    assert "time.sleep()" in messages
    assert "socket.create_connection()" in messages
    assert "open()" in messages


def test_asyncblock_passes_clean_fixture(tmp_path):
    root = build_tree(tmp_path, {"net/good.py": "asyncblock_clean.py"})
    assert lint(root, AsyncBlockingRule()) == []


def test_asyncblock_only_guards_net(tmp_path):
    root = build_tree(tmp_path, {"apst/bad.py": "asyncblock_violation.py"})
    assert lint(root, AsyncBlockingRule()) == []


# -- layering + bare-print ---------------------------------------------------


def test_layering_fails_on_violating_fixture(tmp_path):
    root = build_tree(tmp_path, {"execution/bad.py": "layering_violation.py"})
    violations = lint(root, LayeringRule())
    assert [v.rule for v in violations] == ["layering"] * 2
    messages = " ".join(v.message for v in violations)
    assert "core.base" in messages
    assert "next_dispatch" in messages


def test_layering_passes_clean_fixture(tmp_path):
    root = build_tree(tmp_path, {"execution/good.py": "layering_clean.py"})
    assert lint(root, LayeringRule()) == []


def test_layering_allows_dispatch_to_drive(tmp_path):
    # The dispatch package itself may (must) touch next_dispatch.
    root = build_tree(tmp_path, {"dispatch/core.py": "layering_violation.py"})
    assert lint(root, LayeringRule()) == []


def test_store_layering_fails_on_violating_fixture(tmp_path):
    root = build_tree(tmp_path, {"store/bad.py": "store_layering_violation.py"})
    violations = lint(root, LayeringRule())
    assert [v.rule for v in violations] == ["layering"] * 4
    messages = " ".join(v.message for v in violations)
    assert "store imports dispatch" in messages
    assert "store imports simulation" in messages


def test_store_layering_passes_clean_fixture(tmp_path):
    root = build_tree(tmp_path, {"store/sqlite.py": "store_layering_clean.py"})
    assert lint(root, LayeringRule()) == []


def test_store_layering_only_guards_store(tmp_path):
    # The same imports are fine above the persistence layer (the service
    # and gateway naturally touch both stores and scheduling).
    root = build_tree(tmp_path, {"service/bad.py": "store_layering_violation.py"})
    assert lint(root, LayeringRule()) == []


def test_conformance_name_override_scopes_pragmas(tmp_path):
    # The store backends get their own rule instance under a distinct
    # name, so violations/pragmas are addressable separately from the
    # substrate-adapter check.
    root = build_tree(
        tmp_path,
        {
            "dispatch/protocols.py": "conformance_protocols.py",
            "backends/adapter.py": "conformance_violation.py",
        },
    )
    rule = ProtocolConformanceRule(
        adapters={"backends/adapter.py": {"BadClock": "Clock"}},
        name="store-protocol",
    )
    violations = lint(root, rule)
    assert violations
    assert {v.rule for v in violations} == {"store-protocol"}


def test_default_rules_include_store_instances():
    names = [rule.name for rule in default_rules()]
    assert "store-protocol" in names
    assert len(names) == len(set(names))


def test_bare_print_fails_on_violating_fixture(tmp_path):
    root = build_tree(tmp_path, {"apst/helper.py": "bareprint_violation.py"})
    violations = lint(root, BarePrintRule())
    assert [v.rule for v in violations] == ["bare-print"]


def test_bare_print_passes_clean_fixture(tmp_path):
    root = build_tree(tmp_path, {"apst/helper.py": "bareprint_clean.py"})
    assert lint(root, BarePrintRule()) == []


def test_bare_print_exempts_renderers(tmp_path):
    root = build_tree(tmp_path, {"cli.py": "bareprint_violation.py"})
    assert lint(root, BarePrintRule()) == []


def test_bare_print_pragma_suppresses(tmp_path):
    root = tmp_path
    (root / "apst").mkdir()
    (root / "apst" / "helper.py").write_text(
        "def announce(line):\n"
        "    print(line)  # repro: allow[bare-print] -- wire protocol line\n"
    )
    assert lint(root, BarePrintRule(), strict=True) == []


@pytest.mark.parametrize(
    "fixture",
    sorted(p.name for p in FIXTURES.glob("*_violation.py")),
)
def test_violating_fixtures_parse(fixture):
    # The fixtures must stay valid Python: the rules must fire on AST
    # content, never on syntax errors.
    compile((FIXTURES / fixture).read_text(), fixture, "exec")
