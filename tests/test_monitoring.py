"""Tests for the monitoring-service estimate source (paper Section 3.5)."""

import numpy as np
import pytest

from repro.apst.monitoring import MonitoringConfig, MonitoringService
from repro.core.registry import make_scheduler
from repro.errors import ProbeError, SimulationError
from repro.simulation.master import SimulationOptions, simulate_run


class TestMonitoringService:
    def test_estimates_are_free(self, small_grid):
        service = MonitoringService(list(small_grid.workers), seed=0)
        result = service.estimates()
        assert result.duration == 0.0
        assert len(result.estimates) == len(small_grid)

    def test_errors_are_persistent_across_queries(self, small_grid):
        service = MonitoringService(list(small_grid.workers), seed=0)
        first = service.estimates().estimates
        second = service.estimates().estimates
        assert [w.speed for w in first] == [w.speed for w in second]

    def test_translation_error_magnitude(self, small_grid):
        errors = []
        for seed in range(200):
            service = MonitoringService(
                list(small_grid.workers),
                MonitoringConfig(translation_error=0.25),
                seed=seed,
            )
            est = service.estimates().estimates[0]
            errors.append(est.speed / small_grid.workers[0].speed - 1.0)
        assert abs(float(np.mean(errors))) < 0.06
        assert float(np.std(errors)) == pytest.approx(0.25, rel=0.2)

    def test_zero_error_config_returns_truth(self, small_grid):
        service = MonitoringService(
            list(small_grid.workers),
            MonitoringConfig(translation_error=0.0, latency_error=0.0),
            seed=1,
        )
        for est, true in zip(service.estimates().estimates, small_grid.workers):
            assert est.speed == pytest.approx(true.speed)
            assert est.comm_latency == pytest.approx(true.comm_latency)

    def test_empty_platform_rejected(self):
        with pytest.raises(ProbeError):
            MonitoringService([])

    def test_invalid_config(self):
        with pytest.raises(ProbeError):
            MonitoringConfig(translation_error=-0.1)


class TestEstimateSourceOption:
    def test_monitor_source_runs_and_conserves(self, small_grid):
        options = SimulationOptions(estimate_source="monitor")
        report = simulate_run(small_grid, make_scheduler("umr"), total_load=800.0,
                              seed=2, options=options)
        assert sum(c.units for c in report.chunks) == pytest.approx(800.0)
        assert report.probe_time == 0.0

    def test_monitor_estimates_degrade_umr_vs_probe(self, small_grid):
        """The paper's rationale for probing: monitored info is free but
        mispredicts application-level rates, hurting plan-based UMR."""
        import statistics

        def mean_makespan(source):
            return statistics.mean(
                simulate_run(
                    small_grid, make_scheduler("umr"), total_load=2000.0,
                    gamma=0.0, seed=seed,
                    options=SimulationOptions(estimate_source=source),
                ).makespan
                for seed in range(8)
            )

        monitored = mean_makespan("monitor")
        probed = mean_makespan("probe")
        assert monitored > probed * 1.01

    def test_unknown_source_rejected(self, small_grid):
        options = SimulationOptions(estimate_source="astrology")
        with pytest.raises(SimulationError, match="estimate_source"):
            simulate_run(small_grid, make_scheduler("umr"), total_load=100.0,
                         options=options)

    def test_bad_monitoring_config_type_rejected(self, small_grid):
        options = SimulationOptions(estimate_source="monitor", monitoring=42)
        with pytest.raises(SimulationError, match="MonitoringConfig"):
            simulate_run(small_grid, make_scheduler("umr"), total_load=100.0,
                         options=options)

    def test_perfect_estimates_still_wins(self, small_grid):
        options = SimulationOptions(perfect_estimates=True,
                                    estimate_source="monitor")
        report = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0,
                              seed=0, options=options)
        assert report.probe_time == 0.0
