"""Tests for automatic algorithm selection (the Section 3.3 hook)."""

import pytest

from repro.apst.advisor import Recommendation, recommend_algorithm
from repro.apst.client import APSTClient
from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.errors import ReproError
from repro.platform.presets import das2_cluster, grail_lan


class TestRecommendation:
    def test_low_uncertainty_selects_umr_family(self):
        grid = das2_cluster(16)
        rec = recommend_algorithm(grid, 10_000.0, gamma=None)
        # UMR or its two-phase sibling (they tie within <1% at gamma = 0);
        # the point is that pure Factoring is NOT selected here
        assert rec.algorithm in ("umr", "fixed-rumr")
        assert rec.trials["wf"] > rec.expected_makespan
        assert "gamma = 0" in rec.rationale

    def test_moderate_uncertainty_selects_robust_algorithm(self):
        grid = das2_cluster(16)
        rec = recommend_algorithm(grid, 10_000.0, gamma=0.10)
        assert rec.algorithm in ("fixed-rumr", "wf")
        assert "10.0%" in rec.rationale

    def test_high_uncertainty_on_grail(self):
        rec = recommend_algorithm(grail_lan(), 1830.0, gamma=0.20,
                                  autocorrelation=0.6)
        assert rec.algorithm in ("wf", "fixed-rumr")

    def test_trials_cover_all_candidates(self):
        rec = recommend_algorithm(das2_cluster(8), 5000.0, gamma=None,
                                  candidates=("umr", "wf"))
        assert set(rec.trials) == {"umr", "wf"}
        assert rec.expected_makespan == min(rec.trials.values())

    def test_build_returns_fresh_scheduler(self):
        rec = recommend_algorithm(das2_cluster(4), 2000.0, gamma=None)
        assert rec.build().name == rec.algorithm

    def test_invalid_inputs(self):
        grid = das2_cluster(4)
        with pytest.raises(ReproError):
            recommend_algorithm(grid, 0.0)
        with pytest.raises(ReproError):
            recommend_algorithm(grid, 100.0, candidates=())


class TestDaemonAuto:
    def _daemon(self, tmp_path, gamma=0.0):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        return APSTDaemon(
            das2_cluster(8, total_load=10_000.0),
            config=DaemonConfig(base_dir=tmp_path, gamma=gamma, seed=1),
        )

    XML = (
        "<task executable='a' input='load.bin'>"
        "<divisibility input='load.bin' method='uniform' stepsize='10'"
        " algorithm='auto'/></task>"
    )

    def test_auto_selects_umr_family_without_uncertainty(self, tmp_path):
        daemon = self._daemon(tmp_path)
        client = APSTClient(daemon)
        report = client.submit_and_run(self.XML)
        assert report.algorithm in ("umr", "fixed-rumr")
        job = daemon.job(1)
        assert any("auto-selected" in w for w in job.warnings)

    def test_auto_respects_configured_gamma(self, tmp_path):
        daemon = self._daemon(tmp_path, gamma=0.15)
        client = APSTClient(daemon)
        report = client.submit_and_run(self.XML)
        assert report.algorithm in ("fixed-rumr", "wf")
