"""Tests for report serialization (JSON round trip, CSV export)."""

import json

import pytest

from repro.apst.report_io import (
    chunks_to_csv,
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.core.registry import make_scheduler
from repro.errors import ReproError
from repro.simulation.master import simulate_run


@pytest.fixture
def report(small_grid):
    return simulate_run(small_grid, make_scheduler("fixed-rumr"),
                        total_load=500.0, gamma=0.1, seed=7)


class TestJSONRoundTrip:
    def test_dict_round_trip_preserves_everything(self, report):
        rebuilt = report_from_dict(report_to_dict(report))
        assert rebuilt.algorithm == report.algorithm
        assert rebuilt.makespan == report.makespan
        assert rebuilt.annotations == report.annotations
        assert len(rebuilt.chunks) == len(report.chunks)
        for a, b in zip(rebuilt.chunks, report.chunks):
            assert (a.chunk_id, a.units, a.send_start, a.compute_end) == (
                b.chunk_id, b.units, b.send_start, b.compute_end
            )

    def test_file_round_trip_validates(self, report, tmp_path):
        path = save_report(report, tmp_path / "report.json")
        loaded = load_report(path)
        assert loaded.makespan == report.makespan
        assert loaded.observed_gamma() == pytest.approx(report.observed_gamma())

    def test_json_is_deterministic(self, report, tmp_path):
        a = save_report(report, tmp_path / "a.json").read_text()
        b = save_report(report, tmp_path / "b.json").read_text()
        assert a == b

    def test_version_checked(self, report):
        data = report_to_dict(report)
        data["format_version"] = 999
        with pytest.raises(ReproError, match="version"):
            report_from_dict(data)

    def test_missing_field_reported(self, report):
        data = report_to_dict(report)
        del data["makespan"]
        with pytest.raises(ReproError, match="missing"):
            report_from_dict(data)

    def test_malformed_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="malformed"):
            load_report(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_report(tmp_path / "nope.json")

    def test_non_object_payload(self):
        with pytest.raises(ReproError):
            report_from_dict([1, 2, 3])

    def test_loaded_report_is_validated(self, report, tmp_path):
        data = report_to_dict(report)
        data["total_load"] = 999999.0  # break conservation
        path = tmp_path / "corrupt.json"
        path.write_text(json.dumps(data))
        with pytest.raises(Exception, match="not conserved"):
            load_report(path)


class TestCSV:
    def test_header_and_rows(self, report):
        text = chunks_to_csv(report)
        lines = text.strip().splitlines()
        assert lines[0].startswith("chunk_id,worker_index,worker_name")
        assert len(lines) == 1 + report.num_chunks

    def test_written_to_file(self, report, tmp_path):
        path = tmp_path / "chunks.csv"
        chunks_to_csv(report, path)
        assert path.read_text().count("\n") >= report.num_chunks
