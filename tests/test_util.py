"""Tests for the shared helper utilities."""

import pytest

from repro._util import (
    almost_equal,
    check_nonnegative,
    check_positive,
    coefficient_of_variation,
    cumulative_sums,
    format_seconds,
    mean,
    require,
)
from repro.errors import ReproError


class TestValidation:
    def test_require_passes_and_raises(self):
        require(True, ReproError, "fine")
        with pytest.raises(ReproError, match="broken"):
            require(False, ReproError, "broken")

    @pytest.mark.parametrize("value", [1, 0.5, 1e9])
    def test_check_positive_accepts(self, value):
        check_positive("x", value, ReproError)

    @pytest.mark.parametrize("value", [0, -1, float("inf"), float("nan"), "3", True])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ReproError):
            check_positive("x", value, ReproError)

    @pytest.mark.parametrize("value", [0, 0.0, 5])
    def test_check_nonnegative_accepts(self, value):
        check_nonnegative("x", value, ReproError)

    @pytest.mark.parametrize("value", [-1e-9, float("nan"), None, False])
    def test_check_nonnegative_rejects(self, value):
        with pytest.raises(ReproError):
            check_nonnegative("x", value, ReproError)


class TestNumerics:
    def test_almost_equal(self):
        assert almost_equal(1.0, 1.0 + 1e-12)
        assert not almost_equal(1.0, 1.01)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        # mean 10, unbiased sample sd = sqrt(8) ~= 2.828 -> CoV ~= 0.283
        assert coefficient_of_variation([8.0, 12.0]) == pytest.approx(0.28284, rel=1e-3)

    def test_cov_zero_mean(self):
        assert coefficient_of_variation([-1.0, 1.0]) == 0.0

    def test_cumulative_sums(self):
        assert cumulative_sums([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]
        assert cumulative_sums([]) == []


class TestFormatting:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0, "0.00s"),
        (5.25, "5.25s"),
        (65.0, "1m 05s"),
        (3661.0, "1h 01m 01s"),
        (7200.0, "2h 00m 00s"),
    ])
    def test_format_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_negative_duration(self):
        assert format_seconds(-65.0) == "-1m 05s"
