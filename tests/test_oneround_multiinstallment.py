"""Tests for the lineage algorithms: one-round DLS and multi-installment."""

import pytest

from repro.core.multiinstallment import MultiInstallment
from repro.core.oneround import OneRound, solve_one_round
from repro.errors import InfeasibleScheduleError, SchedulingError
from repro.platform.resources import Grid, WorkerSpec
from repro.simulation.master import simulate_run


def _workers(n=3, speed=1.0, bandwidth=10.0, comm_latency=0.0, comp_latency=0.0):
    return [
        WorkerSpec(f"w{i}", speed=speed, bandwidth=bandwidth,
                   comm_latency=comm_latency, comp_latency=comp_latency)
        for i in range(n)
    ]


def _finish_times(workers, chunks, affine=True):
    """Analytic finish time per worker under serialized transfers."""
    t = 0.0
    finishes = []
    for w, a in zip(workers, chunks):
        if a <= 0:
            continue
        t += (w.comm_latency if affine else 0.0) + a / w.bandwidth
        finishes.append(t + (w.comp_latency if affine else 0.0) + a / w.speed)
    return finishes


class TestSolveOneRound:
    def test_load_conserved(self):
        chunks = solve_one_round(_workers(), total_load=300.0)
        assert sum(chunks) == pytest.approx(300.0)

    def test_equal_finish_times_linear(self):
        workers = _workers(4, bandwidth=5.0)
        chunks = solve_one_round(workers, total_load=200.0, affine=False)
        finishes = _finish_times(workers, chunks, affine=False)
        assert max(finishes) == pytest.approx(min(finishes), rel=1e-9)

    def test_equal_finish_times_affine(self):
        workers = _workers(4, bandwidth=5.0, comm_latency=0.7, comp_latency=0.3)
        chunks = solve_one_round(workers, total_load=200.0, affine=True)
        finishes = _finish_times(workers, chunks, affine=True)
        assert max(finishes) == pytest.approx(min(finishes), rel=1e-9)

    def test_heterogeneous_faster_worker_gets_more(self):
        workers = [
            WorkerSpec("fast", speed=4.0, bandwidth=10.0),
            WorkerSpec("slow", speed=1.0, bandwidth=10.0),
        ]
        chunks = solve_one_round(workers, total_load=100.0, affine=False)
        assert chunks[0] > chunks[1]

    def test_early_workers_get_more_under_linear_model(self):
        """Workers served first start computing sooner, so equal finish
        times give them larger chunks."""
        workers = _workers(3, bandwidth=2.0)
        chunks = solve_one_round(workers, total_load=100.0, affine=False)
        assert chunks[0] > chunks[1] > chunks[2]

    def test_infeasible_worker_excluded(self):
        workers = [
            WorkerSpec("good", speed=1.0, bandwidth=10.0),
            WorkerSpec("awful", speed=0.001, bandwidth=10.0, comp_latency=10_000.0),
        ]
        chunks = solve_one_round(workers, total_load=10.0, affine=True)
        assert chunks[1] == 0.0
        assert chunks[0] == pytest.approx(10.0)

    def test_invalid_inputs(self):
        with pytest.raises(SchedulingError):
            solve_one_round([], 10.0)
        with pytest.raises(SchedulingError):
            solve_one_round(_workers(), 0.0)


class TestOneRoundScheduler:
    def test_end_to_end_conservation(self, small_grid):
        report = simulate_run(small_grid, OneRound(), total_load=400.0, seed=0)
        assert sum(c.units for c in report.chunks) == pytest.approx(400.0)
        assert report.num_rounds <= 2  # one round plus possible slack chunk

    def test_simultaneous_finish_in_simulation(self, latency_free_grid):
        report = simulate_run(
            latency_free_grid, OneRound(affine=False), total_load=400.0, seed=0
        )
        ends = [max(c.compute_end for c in report.chunks if c.worker_index == i)
                for i in range(4)]
        assert max(ends) - min(ends) < 0.05 * report.makespan

    def test_multi_round_beats_one_round_with_latencies(self, small_grid):
        from repro.core.umr import UMR

        one = simulate_run(small_grid, OneRound(), total_load=2000.0, seed=0)
        multi = simulate_run(small_grid, UMR(), total_load=2000.0, seed=0)
        assert multi.makespan < one.makespan

    def test_annotations(self, small_grid):
        report = simulate_run(small_grid, OneRound(), total_load=400.0, seed=0)
        assert report.annotations["oneround_affine"] is True
        assert report.annotations["oneround_excluded_workers"] == []


class TestMultiInstallment:
    def test_geometric_round_growth(self):
        s = MultiInstallment(rounds=4)
        from repro.core.base import SchedulerConfig

        s.configure(SchedulerConfig(estimates=_workers(2, bandwidth=8.0),
                                    total_load=1000.0))
        sizes = [r.units for r in s._queue]
        # ratio = B / (N * S) = 8 / 2 = 4
        assert sizes[2] / sizes[0] == pytest.approx(4.0)

    def test_load_conserved_end_to_end(self, small_grid):
        report = simulate_run(small_grid, MultiInstallment(5), total_load=900.0, seed=0)
        assert sum(c.units for c in report.chunks) == pytest.approx(900.0)
        assert report.num_rounds <= 6

    def test_invalid_rounds(self):
        with pytest.raises(SchedulingError):
            MultiInstallment(0)

    def test_umr_beats_fixed_installments_with_startup_costs(self):
        """The UMR paper's motivating comparison: optimized round count and
        affine costs beat a 'magically fixed' round count."""
        from repro.core.umr import UMR
        from repro.platform.presets import das2_cluster

        grid = das2_cluster(nodes=16)
        umr = simulate_run(grid, UMR(), total_load=10_000.0, seed=0)
        best_fixed = min(
            simulate_run(grid, MultiInstallment(m), total_load=10_000.0, seed=0).makespan
            for m in (2, 5)
        )
        assert umr.makespan < best_fixed * 1.02
