"""Integration: pre-flight checks inside the daemon."""

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.errors import SpecificationError
from repro.platform.presets import das2_cluster


def _daemon(tmp_path):
    return APSTDaemon(
        das2_cluster(4, total_load=10_000.0),
        config=DaemonConfig(base_dir=tmp_path, seed=0),
    )


class TestDaemonPreflight:
    def test_unknown_algorithm_fails_with_preflight_message(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        daemon = _daemon(tmp_path)
        job_id = daemon.submit(
            "<task executable='a' input='load.bin'>"
            "<divisibility input='load.bin' method='uniform' stepsize='10'"
            " algorithm='quantum'/></task>"
        )
        with pytest.raises(SpecificationError, match="pre-flight"):
            daemon.run_pending()
        assert daemon.job(job_id).state is JobState.FAILED

    def test_warnings_recorded_on_job(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        daemon = _daemon(tmp_path)
        job_id = daemon.submit(
            "<task executable='a' input='load.bin'>"
            "<divisibility input='load.bin' method='uniform' stepsize='10'"
            " algorithm='umr'/></task>"
        )
        daemon.run_pending()
        job = daemon.job(job_id)
        assert job.state is JobState.DONE
        assert any("no-probe-input" in w for w in job.warnings)

    def test_missing_input_caught_before_execution(self, tmp_path):
        daemon = _daemon(tmp_path)
        job_id = daemon.submit(
            "<task executable='a' input='ghost.bin'>"
            "<divisibility input='ghost.bin' method='uniform' stepsize='10'"
            " algorithm='umr'/></task>"
        )
        with pytest.raises(SpecificationError, match="ghost.bin"):
            daemon.run_pending()
        assert daemon.job(job_id).error is not None

    def test_clean_run_has_only_expected_warnings(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10_000))
        (tmp_path / "probe.bin").write_bytes(bytes(20))
        daemon = _daemon(tmp_path)
        job_id = daemon.submit(
            "<task executable='a' input='load.bin'>"
            "<divisibility input='load.bin' method='uniform' stepsize='10'"
            " algorithm='umr' probe='probe.bin'/></task>"
        )
        daemon.run_pending()
        assert daemon.job(job_id).warnings == []
