"""Shared fixtures for the APST-DV reproduction test suite."""

from __future__ import annotations

import pytest

from repro.analysis import lockwatch
from repro.platform.resources import Cluster, Grid, WorkerSpec


@pytest.fixture(autouse=True)
def _no_lock_order_cycles():
    """When REPRO_LOCKWATCH=1, fail any test that grew a lock-order cycle.

    The watcher is process-global and edges accumulate across tests by
    design (orderings from different tests can combine into a hazard no
    single test exhibits); asserting after every test pins down the
    first test whose acquisitions closed a cycle.
    """
    yield
    if lockwatch.enabled():
        lockwatch.watcher().assert_no_cycles()


@pytest.fixture
def small_grid() -> Grid:
    """A tiny homogeneous grid: 4 workers, mild latencies, r = 10."""
    return Grid.from_clusters(
        Cluster.homogeneous(
            "test", 4, speed=1.0, bandwidth=10.0, comm_latency=0.5, comp_latency=0.2
        )
    )


@pytest.fixture
def hetero_grid() -> Grid:
    """A heterogeneous 3-worker grid (speeds 2:1:0.5, distinct links)."""
    workers = (
        WorkerSpec("fast", speed=2.0, bandwidth=20.0, comm_latency=0.2,
                   comp_latency=0.1, cluster="h"),
        WorkerSpec("mid", speed=1.0, bandwidth=10.0, comm_latency=0.4,
                   comp_latency=0.2, cluster="h"),
        WorkerSpec("slow", speed=0.5, bandwidth=5.0, comm_latency=0.8,
                   comp_latency=0.4, cluster="h"),
    )
    return Grid(workers=workers)


@pytest.fixture
def latency_free_grid() -> Grid:
    """Homogeneous grid with zero start-up costs (pure linear model)."""
    return Grid.from_clusters(
        Cluster.homogeneous("lin", 4, speed=1.0, bandwidth=8.0)
    )


@pytest.fixture
def load_file(tmp_path):
    """A 10 kB binary input file."""
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(range(256)) * 40)
    return path
