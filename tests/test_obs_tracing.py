"""Tests for wall-clock tracing, profiling, and the Chrome-trace export."""

import json

import pytest

from repro.obs import (
    EngineProfiler,
    Observability,
    Tracer,
    build_chrome_trace,
    lease_trace_events,
    write_chrome_trace,
)
from repro.obs.chrome_trace import LEASE_PID, SIM_PID_BASE, WALL_PID
from repro.platform.presets import das2_cluster
from repro.service import LeaseSegment
from repro.simulation import SimulationOptions, simulate_run
from repro import make_scheduler


def _instrumented_report(obs):
    grid = das2_cluster(nodes=4)
    return simulate_run(
        grid,
        make_scheduler("umr"),
        total_load=10_000.0,
        seed=3,
        options=SimulationOptions(observability=obs),
    )


class TestTracer:
    def test_spans_nest_and_accumulate(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # completion order
        inner, outer = spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.duration >= inner.duration
        assert outer.args == {"kind": "test"}
        assert tracer.total("outer") == outer.duration

    def test_add_span_external_measurement(self):
        tracer = Tracer()
        tracer.add_span("engine.run", start=1.0, duration=0.5, category="engine")
        (span,) = tracer.spans("engine.run")
        assert span.end == 1.5
        assert span.category == "engine"


class TestEngineProfiler:
    def test_engine_reports_throughput_and_heap(self):
        obs = Observability.armed()
        _instrumented_report(obs)
        profile = obs.profiler.report()
        assert profile.events_processed > 0
        assert profile.engine_runs >= 1
        assert profile.heap_high_water >= 1
        assert profile.events_per_second > 0
        text = profile.render()
        assert "events/s" in text and "heap high-water" in text

    def test_phase_accumulation(self):
        profiler = EngineProfiler()
        with profiler.phase("plan"):
            pass
        profiler.add_phase_time("plan", 0.25, calls=3)
        stat = profiler.report().phases["plan"]
        assert stat.calls == 4
        assert stat.seconds >= 0.25


class TestChromeTrace:
    def test_trace_is_valid_json_with_required_fields(self, tmp_path):
        obs = Observability.armed()
        report = _instrumented_report(obs)
        trace = build_chrome_trace(
            reports={1: report},
            tracer=obs.tracer,
            metadata={"algorithm": report.algorithm},
        )
        out = write_chrome_trace(tmp_path / "trace.json", trace)

        loaded = json.loads(out.read_text())  # must be parseable JSON
        events = loaded["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0

    def test_sim_and_wall_groups_are_separate_pids(self):
        obs = Observability.armed()
        report = _instrumented_report(obs)
        trace = build_chrome_trace(reports={1: report}, tracer=obs.tracer)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert WALL_PID in pids
        assert SIM_PID_BASE in pids
        wall_cats = {
            e.get("cat")
            for e in trace["traceEvents"]
            if e["pid"] == WALL_PID and e["ph"] == "X"
        }
        assert wall_cats  # the tracer contributed spans (probe/plan/engine)

    def test_one_lane_per_worker(self):
        obs = Observability.armed()
        report = _instrumented_report(obs)
        trace = build_chrome_trace(reports={1: report})
        thread_names = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == SIM_PID_BASE
        ]
        # 4 workers + the master-link lane
        assert len(thread_names) == 5

    def test_lease_lanes(self):
        segments = [
            LeaseSegment(job_id=1, workers=(0, 1), start=0.0, end=10.0),
            LeaseSegment(job_id=2, workers=(1,), start=10.0, end=12.0),
        ]
        events = lease_trace_events(segments)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3  # one per (segment, worker)
        assert all(e["pid"] == LEASE_PID for e in spans)
        assert {e["name"] for e in spans} == {"job 1", "job 2"}

    def test_incomplete_chunks_skipped(self):
        obs = Observability.armed()
        report = _instrumented_report(obs)
        report.chunks[0].compute_end = -1.0  # preempted mid-compute
        trace = build_chrome_trace(reports={1: report})
        names = [e["name"] for e in trace["traceEvents"] if e["ph"] == "X"]
        assert f"xfer #{report.chunks[0].chunk_id}" not in names


class TestObservabilityHandle:
    def test_disabled_handle_is_inert(self):
        from repro.obs import OBS_DISABLED

        assert not OBS_DISABLED.enabled
        OBS_DISABLED.emit("job.submitted", job_id=1)  # no bus: silently dropped
        with OBS_DISABLED.span("anything"):
            pass
        assert OBS_DISABLED.ring_events() == []

    def test_armed_handle_collects_everything(self):
        obs = Observability.armed()
        assert obs.enabled
        report = _instrumented_report(obs)
        assert report.makespan > 0
        dispatched = obs.ring_events("chunk.dispatched")
        completed = obs.ring_events("chunk.completed")
        assert len(dispatched) == len(completed) == report.num_chunks
        samples = obs.metrics.render_prometheus()
        assert "repro_chunks_dispatched_total" in samples
        assert obs.tracer.spans("engine.run")

    def test_sim_time_stamps_match_report(self):
        obs = Observability.armed()
        report = _instrumented_report(obs)
        by_id = {c.chunk_id: c for c in report.chunks}
        for event in obs.ring_events("chunk.completed"):
            chunk = by_id[event.fields["chunk_id"]]
            assert event.sim_time == pytest.approx(chunk.compute_end)
