"""Integration: the daemon driving the real local execution backend.

The paper's Figure 5 flow, but through the daemon/client surface rather
than the backend API directly -- submit the case-study XML, run, collect
output files, merge, verify.
"""

import pytest

from repro.apst.client import APSTClient
from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.execution.local import LocalExecutionBackend
from repro.platform.resources import Cluster, Grid
from repro.workloads.video import (
    avimerge,
    mencoder_encode,
    write_dv_file,
)

FRAMES = 36


class _EncodeApp:
    def __init__(self, scratch):
        self._scratch = scratch
        self._n = 0

    def process(self, data, units=None):
        self._n += 1
        src = self._scratch / f"c{self._n}.tdv"
        src.write_bytes(data)
        dst = src.with_suffix(".tm4v")
        mencoder_encode(src, dst)
        return dst.read_bytes()


@pytest.fixture
def case_study(tmp_path):
    video = tmp_path / "input.tdv"
    write_dv_file(video, frames=FRAMES, frame_bytes=256, seed=2)
    xml = f"""
    <task executable="run_mencoder.sh" input="input.tdv" output="mpeg4.tm4v">
      <divisibility input="input.tdv" method="callback" load="{FRAMES}"
                    callback="python -m repro.workloads.video_callback"
                    arguments="input.tdv"
                    algorithm="wf" probe_load="3"/>
    </task>
    """
    grid = Grid.from_clusters(
        Cluster.homogeneous("lan", 3, speed=12.0, bandwidth=150.0,
                            comm_latency=0.1, comp_latency=0.05)
    )
    backend = LocalExecutionBackend(tmp_path / "work", app=_EncodeApp(tmp_path),
                                    time_scale=0.01)
    daemon = APSTDaemon(grid, backend=backend,
                        config=DaemonConfig(base_dir=tmp_path))
    return tmp_path, video, xml, daemon


class TestDaemonWithLocalBackend:
    def test_full_case_study_flow(self, case_study):
        tmp, video, xml, daemon = case_study
        client = APSTClient(daemon)
        job_id = client.submit(xml)
        client.run()

        job = client.job(job_id)
        assert job.state is JobState.DONE
        report = client.report(job_id)
        assert report.annotations["backend"] == "local-execution"
        assert sum(c.units for c in report.chunks) == pytest.approx(FRAMES)

        outputs = client.outputs(job_id)
        assert outputs
        merged = tmp / "mpeg4.tm4v"
        avimerge(outputs, merged)
        serial = tmp / "serial.tm4v"
        mencoder_encode(video, serial)
        assert merged.read_bytes() == serial.read_bytes()

    def test_probe_load_respected(self, case_study):
        """probe_load=3 frames: the backend probes with 3 work units."""
        tmp, video, xml, daemon = case_study
        client = APSTClient(daemon)
        report = client.submit_and_run(xml)
        assert report.probe_time > 0

    def test_algorithm_override_on_local_backend(self, case_study):
        tmp, video, xml, daemon = case_study
        client = APSTClient(daemon)
        report = client.submit_and_run(xml, algorithm="simple-2")
        assert report.algorithm == "simple-2"
