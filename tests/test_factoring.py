"""Tests for Weighted Factoring, plain Factoring, and GSS."""

import pytest

from repro.core.base import ChunkInfo, SchedulerConfig, WorkerState
from repro.core.factoring import (
    GuidedSelfScheduling,
    PlainFactoring,
    WeightedFactoring,
)
from repro.errors import SchedulingError
from repro.platform.resources import WorkerSpec
from repro.simulation.master import simulate_run


def _estimates(speeds=(1.0, 1.0), bandwidth=10.0, comm_latency=0.0, comp_latency=0.0):
    return [
        WorkerSpec(f"w{i}", speed=s, bandwidth=bandwidth,
                   comm_latency=comm_latency, comp_latency=comp_latency)
        for i, s in enumerate(speeds)
    ]


def _states(n):
    return [WorkerState(index=i, name=f"w{i}") for i in range(n)]


def _dispatch_and_commit(s, workers, cid=0):
    req = s.next_dispatch(0.0, workers)
    if req is None:
        return None
    s.notify_dispatched(ChunkInfo(cid, req.worker_index, req.units, req.round_index, req.phase))
    return req


class TestChunkSizes:
    def test_first_chunks_halve_the_load_collectively(self):
        s = WeightedFactoring(min_chunk=1.0)
        s.configure(SchedulerConfig(estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        workers = _states(2)
        first = _dispatch_and_commit(s, workers, 0)
        # batch factor 0.5, weight 0.5 -> 250 units
        assert first.units == pytest.approx(250.0)

    def test_weights_proportional_to_speed(self):
        s = WeightedFactoring(min_chunk=1.0, adaptive=False)
        s.configure(SchedulerConfig(estimates=_estimates((3.0, 1.0)), total_load=800.0))
        workers = _states(2)
        # force dispatch to each worker by marking the other busy
        workers[1].outstanding = 99
        fast = _dispatch_and_commit(s, workers, 0)
        assert fast.worker_index == 0
        assert fast.units == pytest.approx(800.0 * 0.5 * 0.75)

    def test_chunk_sizes_decay_geometrically(self):
        s = WeightedFactoring(min_chunk=0.1)
        s.configure(SchedulerConfig(estimates=_estimates((1.0,)), total_load=1000.0,
                                    quantum=0.1))
        workers = _states(1)
        sizes = []
        for cid in range(8):
            req = _dispatch_and_commit(s, workers, cid)
            sizes.append(req.units)
        for a, b in zip(sizes, sizes[1:]):
            assert b == pytest.approx(a / 2, rel=1e-6)

    def test_min_chunk_floor_stops_decay(self):
        s = WeightedFactoring(min_chunk=50.0)
        s.configure(SchedulerConfig(estimates=_estimates((1.0,)), total_load=1000.0))
        workers = _states(1)
        sizes = []
        while True:
            req = _dispatch_and_commit(s, workers, len(sizes))
            if req is None:
                break
            sizes.append(req.units)
        assert all(size >= 50.0 - 1e-9 or size == sizes[-1] for size in sizes)
        assert sum(sizes) == pytest.approx(1000.0)

    def test_derived_min_chunk_scales_with_startup(self):
        cheap = WeightedFactoring()
        cheap.configure(SchedulerConfig(
            estimates=_estimates((1.0,), comm_latency=0.1, comp_latency=0.1),
            total_load=1000.0))
        pricey = WeightedFactoring()
        pricey.configure(SchedulerConfig(
            estimates=_estimates((1.0,), comm_latency=5.0, comp_latency=1.0),
            total_load=1000.0))
        assert pricey.annotations()["min_chunk"] > cheap.annotations()["min_chunk"]


class TestGreedyDispatch:
    def test_prefetch_limit_blocks_busy_workers(self):
        s = WeightedFactoring(prefetch_depth=2)
        s.configure(SchedulerConfig(estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        workers = _states(2)
        workers[0].outstanding = 2
        workers[1].outstanding = 2
        assert s.next_dispatch(0.0, workers) is None

    def test_most_starved_worker_served_first(self):
        s = WeightedFactoring()
        s.configure(SchedulerConfig(estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        workers = _states(2)
        workers[0].outstanding = 1
        workers[0].outstanding_units = 100.0
        req = s.next_dispatch(0.0, workers)
        assert req.worker_index == 1

    def test_all_load_dispatched_eventually(self):
        s = WeightedFactoring(min_chunk=1.0)
        s.configure(SchedulerConfig(estimates=_estimates((2.0, 1.0)), total_load=500.0))
        workers = _states(2)
        total = 0.0
        for cid in range(10_000):
            req = _dispatch_and_commit(s, workers, cid)
            if req is None:
                break
            total += req.units
        assert total == pytest.approx(500.0)


class TestAdaptation:
    def test_speed_estimate_moves_toward_observation(self):
        s = WeightedFactoring(adaptation_gain=0.5)
        s.configure(SchedulerConfig(
            estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        # worker 0 actually runs twice as fast as estimated
        s.notify_completion(ChunkInfo(0, 0, 100.0, 0, "factoring"),
                            now=50.0, predicted_time=100.0, actual_time=50.0)
        assert s._speeds[0] == pytest.approx(0.5 * 1.0 + 0.5 * 2.0)
        assert s._speeds[1] == 1.0
        assert s.annotations()["speed_adaptations"] == 1

    def test_non_adaptive_variant_ignores_observations(self):
        s = WeightedFactoring(adaptive=False)
        s.configure(SchedulerConfig(estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        s.notify_completion(ChunkInfo(0, 0, 100.0, 0, "factoring"),
                            now=50.0, predicted_time=100.0, actual_time=50.0)
        assert s._speeds[0] == 1.0

    def test_adaptation_rebalances_under_wrong_estimates(self, small_grid):
        """With probe noise, the adaptive WF still balances completion times."""
        report = simulate_run(small_grid, WeightedFactoring(), total_load=2000.0,
                              gamma=0.15, seed=5)
        ends = [w.last_end for w in report.worker_summaries()]
        assert (max(ends) - min(ends)) / report.makespan < 0.15


class TestVariants:
    def test_plain_factoring_is_unweighted(self):
        s = PlainFactoring(min_chunk=1.0)
        s.configure(SchedulerConfig(estimates=_estimates((4.0, 1.0)), total_load=1000.0))
        workers = _states(2)
        workers[1].outstanding = 99
        req = s.next_dispatch(0.0, workers)
        # unweighted: 1000 * 0.5 / 2 regardless of speed
        assert req.units == pytest.approx(250.0)
        assert s.name == "factoring"

    def test_gss_chunk_is_remaining_over_n(self):
        s = GuidedSelfScheduling(min_chunk=1.0)
        s.configure(SchedulerConfig(estimates=_estimates((1.0, 1.0)), total_load=1000.0))
        workers = _states(2)
        first = _dispatch_and_commit(s, workers, 0)
        assert first.units == pytest.approx(500.0)
        second = _dispatch_and_commit(s, workers, 1)
        assert second.units == pytest.approx(250.0)

    def test_invalid_parameters(self):
        with pytest.raises(SchedulingError):
            WeightedFactoring(factor=1.0)
        with pytest.raises(SchedulingError):
            WeightedFactoring(factor=0.0)
        with pytest.raises(SchedulingError):
            WeightedFactoring(prefetch_depth=0)
        with pytest.raises(SchedulingError):
            GuidedSelfScheduling(prefetch_depth=0)
        with pytest.raises(SchedulingError):
            WeightedFactoring(adaptation_gain=0.0)

    def test_factoring_ends_with_small_chunks(self, small_grid):
        """The uncertainty-tolerance property: final chunks are the smallest."""
        report = simulate_run(small_grid, WeightedFactoring(), total_load=2000.0, seed=0)
        by_send = sorted(report.chunks, key=lambda c: c.send_start)
        first_quarter = [c.units for c in by_send[: len(by_send) // 4]]
        last_quarter = [c.units for c in by_send[-len(by_send) // 4:]]
        assert min(first_quarter) > max(last_quarter)
