"""Distributed tracing and telemetry aggregation (repro.obs.distributed).

Unit coverage for the trace-context header, span identity, clock-offset
estimation, the telemetry buffer/aggregator pair, the degraded-healthz
window, and the fsync-on-close event log -- plus the end-to-end check:
a job submitted through a real TCP gateway to two socket workers
exports one merged Perfetto trace whose worker spans causally link back
into the daemon process with clock-corrected timestamps.
"""

import io
import json
import time

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.execution.appspec import app_spec
from repro.execution.local import DigestApp
from repro.net import (
    GatewayClient,
    GatewayConfig,
    JobGateway,
    RemoteWorkerPool,
)
from repro.net.protocol import http_status_for
from repro.obs import (
    CHUNK_COMPLETED,
    ClockOffsetEstimator,
    EventBus,
    JsonlSink,
    MetricsRegistry,
    Observability,
    TelemetryAggregator,
    TelemetryBuffer,
    TraceContext,
    Tracer,
    distributed_trace_events,
    parse_traceparent,
    span_record,
)
from repro.platform.presets import das2_cluster

from tests.validate_trace import validate_trace_file


class TestTraceContext:
    def test_roundtrip(self):
        context = TraceContext.new_root()
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed == context

    def test_new_root_shapes(self):
        context = TraceContext.new_root()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16

    def test_new_root_uses_tracer_span_ids(self):
        tracer = Tracer()
        context = TraceContext.new_root(tracer)
        assert len(context.span_id) == 16

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-header",
        "00-short-abcdefabcdefabcd-01",                       # trace_id wrong length
        "00-" + "a" * 32 + "-" + "b" * 20 + "-01",            # span_id wrong length
        "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",            # unknown version
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",            # all-zero trace_id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",            # all-zero span_id
        "00-" + "g" * 32 + "-" + "b" * 16 + "-01",            # non-hex
    ])
    def test_lenient_parse_rejects_garbage_as_none(self, header):
        assert parse_traceparent(header) is None

    def test_lenient_parse_accepts_valid(self):
        header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "a" * 32


class TestTracerIdentity:
    def test_no_context_means_no_identity(self):
        tracer = Tracer()
        with tracer.span("plain"):
            pass
        (span,) = tracer.spans()
        assert span.trace_id is None
        assert span.span_id is None
        assert span.parent_span_id is None
        assert tracer.current_traceparent() is None

    def test_span_ids_are_w3c_width(self):
        tracer = Tracer()
        for _ in range(3):
            span_id = tracer.new_span_id()
            assert len(span_id) == 16
            assert int(span_id, 16) > 0

    def test_nesting_parents_within_a_process(self):
        tracer = Tracer()
        context = TraceContext.new_root(tracer)
        with tracer.activate(context):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        inner, outer = tracer.spans()
        assert outer.trace_id == context.trace_id
        assert outer.parent_span_id == context.span_id
        assert inner.parent_span_id == outer.span_id

    def test_activate_restores_previous_context(self):
        tracer = Tracer()
        context = TraceContext.new_root(tracer)
        with tracer.activate(context):
            assert tracer.context is context
        assert tracer.context is None

    def test_current_traceparent_names_innermost_open_span(self):
        tracer = Tracer()
        context = TraceContext.new_root(tracer)
        with tracer.activate(context):
            assert tracer.current_traceparent().split("-")[2] == context.span_id
            with tracer.span("probe"):
                header = tracer.current_traceparent()
        (probe,) = tracer.spans()
        assert header == f"00-{context.trace_id}-{probe.span_id}-01"

    def test_open_span_traceparent_propagates_across_the_wire(self):
        master = Tracer()
        with master.activate(TraceContext.new_root(master)):
            open_span = master.start_span("chunk.dispatch", chunk_id=7)
        worker = Tracer()
        worker.set_context(parse_traceparent(open_span.traceparent))
        with worker.span("chunk.process"):
            pass
        worker.set_context(None)
        (processed,) = worker.spans()
        assert processed.trace_id == open_span.trace_id
        assert processed.parent_span_id == open_span.span_id
        master.finish(open_span)
        (dispatched,) = master.spans()
        assert dispatched.span_id == open_span.span_id

    def test_open_span_without_context_has_no_header(self):
        tracer = Tracer()
        open_span = tracer.start_span("chunk.dispatch")
        assert open_span.traceparent is None


class TestClockOffsetEstimator:
    def test_symmetric_exchange_recovers_skew(self):
        estimator = ClockOffsetEstimator()
        # remote clock 10s ahead; 1ms each way; 5ms compute between t1/t2
        estimator.add_sample("w", t0=0.0, t1=10.001, t2=10.006, t3=0.007)
        assert estimator.offset("w") == pytest.approx(10.0, abs=1e-9)
        assert estimator.quality("w") == pytest.approx(0.002, abs=1e-9)

    def test_compute_time_between_recv_and_send_does_not_bias(self):
        estimator = ClockOffsetEstimator()
        estimator.add_sample("w", t0=0.0, t1=5.001, t2=5.001 + 60.0, t3=60.002)
        assert estimator.offset("w") == pytest.approx(5.0, abs=1e-9)

    def test_min_rtt_sample_wins(self):
        estimator = ClockOffsetEstimator()
        estimator.add_sample("w", t0=0.0, t1=1.050, t2=1.050, t3=0.100)  # noisy
        estimator.add_sample("w", t0=0.0, t1=1.001, t2=1.001, t3=0.002)  # clean
        estimator.add_sample("w", t0=0.0, t1=1.200, t2=1.200, t3=0.400)  # noisier
        assert estimator.offset("w") == pytest.approx(1.0, abs=1e-3)
        assert estimator.to_dict()["w"]["samples"] == 3

    def test_negative_rtt_sample_is_rejected(self):
        estimator = ClockOffsetEstimator()
        estimator.add_sample("w", t0=0.0, t1=1.0, t2=3.0, t3=0.5)  # t2-t1 > t3-t0
        assert estimator.offset("w") == 0.0
        assert estimator.quality("w") is None

    def test_unknown_process_reads_zero(self):
        assert ClockOffsetEstimator().offset("nobody") == 0.0


class TestTelemetryBuffer:
    def _traced_buffer(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        buffer = TelemetryBuffer("w0", tracer=tracer, metrics=metrics)
        return tracer, metrics, buffer

    def test_drain_empty_returns_none(self):
        _, _, buffer = self._traced_buffer()
        assert buffer.drain() is None

    def test_drain_collects_spans_events_and_metrics(self):
        tracer, metrics, buffer = self._traced_buffer()
        bus = EventBus([buffer])
        with tracer.span("chunk.process", chunk_id=1):
            pass
        bus.emit(CHUNK_COMPLETED, chunk_id=1, worker="w0")
        metrics.counter("repro_worker_chunks_total", "chunks").inc()
        batch = buffer.drain()
        assert batch["process"] == "w0"
        assert [s["name"] for s in batch["spans"]] == ["chunk.process"]
        assert batch["spans"][0]["start"] > 1e9  # absolute unix seconds
        assert [e["name"] for e in batch["events"]] == [CHUNK_COMPLETED]
        assert "repro_worker_chunks_total" in batch["metrics"]

    def test_drain_cursor_ships_each_span_once(self):
        tracer, _, buffer = self._traced_buffer()
        with tracer.span("one"):
            pass
        assert len(buffer.drain()["spans"]) == 1
        with tracer.span("two"):
            pass
        batch = buffer.drain()
        assert [s["name"] for s in batch["spans"]] == ["two"]

    def test_span_and_event_bounds(self):
        tracer = Tracer()
        buffer = TelemetryBuffer("w0", tracer=tracer, max_spans=4, max_events=3)
        bus = EventBus([buffer])
        for index in range(8):
            with tracer.span(f"s{index}"):
                pass
            bus.emit(CHUNK_COMPLETED, chunk_id=index)
        batch = buffer.drain()
        assert len(batch["spans"]) == 4      # newest spans kept
        assert batch["spans"][-1]["name"] == "s7"
        assert len(batch["events"]) == 3     # oldest events evicted
        assert batch["events"][0]["fields"]["chunk_id"] == 5


class TestTelemetryAggregator:
    def test_ingest_rekeys_to_registered_name(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest(
            {"process": "self-reported", "spans": [{"name": "x", "start": 1.0}]},
            process="endpoint-name",
        )
        (span,) = aggregator.spans()
        assert span["process"] == "endpoint-name"
        assert aggregator.processes() == ["endpoint-name"]

    def test_remote_spans_are_clock_corrected_locals_are_not(self):
        aggregator = TelemetryAggregator()
        aggregator.add_offset_sample("w0", t0=0.0, t1=100.001, t2=100.001, t3=0.002)
        aggregator.ingest(
            {"spans": [{"name": "chunk.process", "start": 200.0, "duration": 1.0}]},
            process="w0",
        )
        aggregator.record_span(
            {"name": "job.run", "process": "daemon", "start": 100.0, "duration": 2.0}
        )
        by_name = {s["name"]: s for s in aggregator.spans()}
        corrected = by_name["chunk.process"]
        assert corrected["start"] == pytest.approx(100.0, abs=1e-3)
        assert corrected["raw_start"] == 200.0
        assert corrected["clock_offset"] == pytest.approx(100.0, abs=1e-3)
        assert by_name["job.run"]["clock_offset"] == 0.0

    def test_sync_tracer_is_idempotent_per_span(self):
        aggregator = TelemetryAggregator()
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert aggregator.sync_tracer(tracer, process="daemon") == 1
        assert aggregator.sync_tracer(tracer, process="daemon") == 0
        with tracer.span("b"):
            pass
        assert aggregator.sync_tracer(tracer, process="daemon") == 1
        assert len(aggregator.spans()) == 2

    def test_ingest_tolerates_garbage(self):
        aggregator = TelemetryAggregator()
        aggregator.ingest("not a dict")
        aggregator.ingest({"spans": ["nope", 3, {"no_name": True}]})
        aggregator.ingest({"events": [17], "metrics": 42})
        assert aggregator.spans() == []

    def test_remote_prometheus_rendering_labels_by_process(self):
        metrics = MetricsRegistry()
        metrics.counter("repro_worker_chunks_total", "chunks").inc(3)
        metrics.histogram(
            "repro_worker_compute_seconds", "compute", buckets=(0.1, 1.0)
        ).observe(0.5)
        aggregator = TelemetryAggregator()
        aggregator.ingest({"metrics": metrics.to_json()}, process="w0")
        text = aggregator.render_remote_prometheus()
        assert 'repro_worker_chunks_total{process="w0"} 3' in text
        assert 'repro_worker_compute_seconds_count{process="w0"} 1' in text
        assert 'le=' in text

    def test_to_dict_shape_matches_the_trace_verb(self):
        aggregator = TelemetryAggregator()
        store = aggregator.to_dict()
        assert set(store) == {
            "spans", "events", "clock_offsets", "processes", "trace_ids"
        }


class TestDistributedChromeTrace:
    def _record(self, **overrides):
        record = {
            "name": "chunk.process", "process": "w0", "category": "compute",
            "start": 100.0, "duration": 0.5, "trace_id": "a" * 32,
            "span_id": "b" * 16, "parent_span_id": "c" * 16,
            "args": {"lane": 2, "chunk_id": 1},
        }
        record.update(overrides)
        return record

    def test_track_groups_order_gateway_daemon_workers(self):
        events = distributed_trace_events([
            self._record(process="w1", start=101.0),
            self._record(process="gateway", name="gateway.submit", args={}),
            self._record(process="daemon", name="job.run", args={}),
        ])
        names = {
            e["args"]["name"]: e["pid"]
            for e in events if e.get("name") == "process_name"
        }
        assert names["distributed: gateway"] < names["distributed: daemon"]
        assert names["distributed: daemon"] < names["distributed: w1"]

    def test_lane_arg_selects_thread_and_timeline_rezeroed(self):
        events = distributed_trace_events(
            [self._record(start=50.0), self._record(start=51.0, args={})]
        )
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0           # earliest span is the zero
        assert complete[0]["tid"] == 2            # lane arg moved to tid
        assert complete[1]["tid"] == 0
        assert complete[0]["args"]["span_id"] == "b" * 16
        assert "lane" not in complete[0]["args"]

    def test_incomplete_spans_are_skipped(self):
        assert distributed_trace_events([self._record(duration=None)]) == []


class TestHealthzDegradedWindow:
    def _gateway(self, tmp_path, **config_kwargs):
        daemon = APSTDaemon(
            das2_cluster(nodes=2, total_load=400.0),
            config=DaemonConfig(base_dir=tmp_path, seed=1),
        )
        return JobGateway(daemon, config=GatewayConfig(**config_kwargs))

    def test_healthy_until_the_window_elapses(self, tmp_path):
        gateway = self._gateway(tmp_path, degraded_window_s=30.0)
        assert gateway._healthz_response()["status"] == "ok"
        gateway._note_queue_full()
        assert gateway._healthz_response()["status"] == "ok"  # within window

    def test_sustained_saturation_reports_degraded_503(self, tmp_path):
        gateway = self._gateway(tmp_path, degraded_window_s=0.05)
        gateway._note_queue_full()
        time.sleep(0.08)
        response = gateway._healthz_response()
        assert response["status"] == "error"
        assert response["error_code"] == "degraded"
        assert http_status_for(response) == 503

    def test_successful_admission_clears_saturation(self, tmp_path):
        gateway = self._gateway(tmp_path, degraded_window_s=0.05)
        gateway._note_queue_full()
        time.sleep(0.08)
        gateway._note_admitted()
        assert gateway._healthz_response()["status"] == "ok"


class TestJsonlSinkDurability:
    def test_close_flushes_and_fsyncs_owned_files(self, tmp_path, monkeypatch):
        synced = []
        import repro.obs.events as events_module
        real_fsync = events_module.os.fsync
        monkeypatch.setattr(
            events_module.os, "fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        path = tmp_path / "events.jsonl"
        bus = EventBus([JsonlSink(path)])
        bus.emit(CHUNK_COMPLETED, chunk_id=1, worker="w0")
        bus.close()
        assert synced, "close() must fsync the event log"
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["name"] == CHUNK_COMPLETED

    def test_close_tolerates_streams_without_a_real_fd(self):
        stream = io.StringIO()
        bus = EventBus([JsonlSink(stream)])
        bus.emit(CHUNK_COMPLETED, chunk_id=2)
        bus.close()  # StringIO.fileno() raises; close must swallow it
        assert json.loads(stream.getvalue())["fields"]["chunk_id"] == 2


TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


class TestDistributedTraceEndToEnd:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        """One job through a real gateway to 2 socket workers, trace fetched."""
        tmp_path = tmp_path_factory.mktemp("dist_trace")
        (tmp_path / "load.bin").write_bytes(bytes(255) * 8)  # 2040 bytes
        (tmp_path / "probe.bin").write_bytes(bytes(100))
        observability = Observability.armed(distributed=True)
        daemon = APSTDaemon(
            das2_cluster(nodes=2, total_load=2040.0),
            config=DaemonConfig(base_dir=tmp_path, seed=3,
                                observability=observability),
        )
        pool = RemoteWorkerPool()
        pool.spawn(2, app_spec(DigestApp), tmp_path / "workers")
        gateway = JobGateway(daemon, config=GatewayConfig(), worker_pool=pool)
        gateway.start_in_background()
        try:
            with GatewayClient(gateway.host, gateway.port) as client:
                assert client.ping()["workers"] == 2
                job_id = client.submit(TASK_XML)
                assert client.wait(job_id, timeout_s=120)["state"] == "done"
                trace = client.trace()
            yield gateway, trace, tmp_path
        finally:
            gateway.shutdown()

    def test_merged_trace_links_every_process(self, traced_run):
        _, trace, _ = traced_run
        spans = trace["spans"]
        processes = {s["process"] for s in spans}
        worker_processes = {p for p in processes if p.startswith("netw")}
        assert {"gateway", "daemon"} <= processes
        assert len(worker_processes) == 2

        # one trace: every identified span shares the submit's trace id
        trace_ids = {s["trace_id"] for s in spans if s.get("trace_id")}
        assert len(trace_ids) == 1
        assert trace["trace_ids"] == sorted(trace_ids)

        # causal links: every worker chunk span has a parent span that
        # was recorded in the daemon process
        by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
        worker_chunk_spans = [
            s for s in spans
            if s["process"] in worker_processes and s["name"].startswith("chunk.")
        ]
        assert worker_chunk_spans
        for span in worker_chunk_spans:
            parent = by_id.get(span.get("parent_span_id"))
            assert parent is not None, f"unparented worker span: {span}"
            assert parent["process"] == "daemon"

        # both workers measured an offset from real round trips
        assert set(trace["clock_offsets"]) == worker_processes
        for estimate in trace["clock_offsets"].values():
            assert estimate["samples"] >= 1
            assert estimate["rtt_s"] >= 0.0

    def test_children_start_after_parents_post_correction(self, traced_run):
        _, trace, _ = traced_run
        spans = trace["spans"]
        by_id = {s["span_id"]: s for s in spans if s.get("span_id")}
        checked = 0
        for span in spans:
            parent = by_id.get(span.get("parent_span_id"))
            if parent is None:
                continue
            checked += 1
            # corrected timestamps: children cannot start before their
            # parent (tolerance = the offset estimates' RTT bound)
            tolerance = 2 * max(
                (e["rtt_s"] for e in trace["clock_offsets"].values()),
                default=0.0,
            )
            assert span["start"] >= parent["start"] - tolerance, (
                f"{span['name']} in {span['process']} starts "
                f"{parent['start'] - span['start']:.6f}s before its parent "
                f"{parent['name']}"
            )
        assert checked >= 8  # job.run + engine + dispatch/process chains

    def test_exported_chrome_trace_validates_against_schema(self, traced_run):
        gateway, _, tmp_path = traced_run
        out = tmp_path / "distributed_trace.json"
        gateway.export_trace(out)
        assert validate_trace_file(out) == []
        chrome = json.loads(out.read_text())
        track_names = {
            e["args"]["name"]
            for e in chrome["traceEvents"] if e.get("name") == "process_name"
        }
        assert {"distributed: gateway", "distributed: daemon"} <= track_names
        assert len(track_names) == 4

    def test_gateway_metrics_include_worker_histograms_and_e2e(self, traced_run):
        gateway, trace, _ = traced_run
        aggregator = gateway._obs.aggregator
        remote_text = aggregator.render_remote_prometheus()
        assert 'repro_worker_chunks_total{process="netw0"}' in remote_text
        assert "repro_worker_compute_seconds_bucket" in remote_text
        local_text = gateway._obs.metrics.render_prometheus()
        assert "repro_net_job_e2e_seconds_count 1" in local_text
        assert trace["gateway"]["queue_depth"]  # time series captured
