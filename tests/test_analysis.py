"""Tests for the analysis layer: statistics, experiment harness, tables."""

import pytest

from repro.analysis.experiments import (
    ExperimentConfig,
    compare_to_paper,
    run_experiment,
)
from repro.analysis.metrics import (
    mean_slowdown_across,
    slowdowns_vs_best,
    summarize,
)
from repro.analysis.tables import render_slowdown_table, render_table
from repro.errors import ReproError
from repro.platform.resources import Cluster, Grid


def _grid_factory():
    return Grid.from_clusters(
        Cluster.homogeneous("t", 3, speed=1.0, bandwidth=10.0,
                            comm_latency=0.3, comp_latency=0.1)
    )


class TestMetrics:
    def test_summarize(self):
        stats = summarize("alg", [10.0, 12.0, 11.0])
        assert stats.runs == 3
        assert stats.mean == pytest.approx(11.0)
        assert stats.minimum == 10.0 and stats.maximum == 12.0
        assert stats.std == pytest.approx(1.0)
        assert stats.cov == pytest.approx(1.0 / 11.0)

    def test_summarize_single_run(self):
        stats = summarize("alg", [5.0])
        assert stats.std == 0.0
        assert stats.confidence_halfwidth() == 0.0

    def test_summarize_rejects_bad_input(self):
        with pytest.raises(ReproError):
            summarize("alg", [])
        with pytest.raises(ReproError):
            summarize("alg", [1.0, -2.0])

    def test_slowdowns_vs_best(self):
        stats = [summarize("a", [100.0]), summarize("b", [126.0]),
                 summarize("c", [118.0])]
        slow = slowdowns_vs_best(stats)
        assert slow["a"] == pytest.approx(0.0)
        assert slow["b"] == pytest.approx(0.26)
        assert slow["c"] == pytest.approx(0.18)

    def test_mean_slowdown_across_scenarios(self):
        scenarios = [
            {"a": 0.0, "b": 0.30},
            {"a": 0.10, "b": 0.26},
        ]
        means = mean_slowdown_across(scenarios)
        assert means["b"] == pytest.approx(0.28)

    def test_mean_slowdown_requires_common_algorithms(self):
        with pytest.raises(ReproError):
            mean_slowdown_across([{"a": 0.0}, {"b": 0.0}])
        with pytest.raises(ReproError):
            mean_slowdown_across([])


class TestExperimentHarness:
    def test_runs_all_algorithms_with_stats(self):
        config = ExperimentConfig(
            label="unit", grid_factory=_grid_factory, total_load=300.0,
            algorithms=("simple-1", "umr"), runs=3,
        )
        result = run_experiment(config)
        assert set(result.by_algorithm) == {"simple-1", "umr"}
        assert result.by_algorithm["umr"].stats.runs == 3
        assert result.best_algorithm == "umr"
        assert result.slowdowns()["umr"] == 0.0

    def test_gamma_zero_runs_have_zero_variance(self):
        config = ExperimentConfig(
            label="unit", grid_factory=_grid_factory, total_load=300.0,
            algorithms=("umr",), runs=3,
        )
        result = run_experiment(config)
        assert result.by_algorithm["umr"].stats.std == pytest.approx(0.0)

    def test_annotations_collected_per_run(self):
        config = ExperimentConfig(
            label="unit", grid_factory=_grid_factory, total_load=300.0,
            algorithms=("rumr",), runs=2,
        )
        result = run_experiment(config)
        anns = result.by_algorithm["rumr"].annotations
        assert len(anns) == 2
        assert all("rumr_mode" in a for a in anns)

    def test_config_validation(self):
        with pytest.raises(ReproError):
            ExperimentConfig(label="x", grid_factory=_grid_factory,
                             total_load=10.0, algorithms=(), runs=1)
        with pytest.raises(ReproError):
            ExperimentConfig(label="x", grid_factory=_grid_factory,
                             total_load=10.0, algorithms=("umr",), runs=0)

    def test_compare_to_paper_rows(self):
        config = ExperimentConfig(
            label="unit", grid_factory=_grid_factory, total_load=300.0,
            algorithms=("simple-1", "umr"), runs=2,
        )
        result = run_experiment(config)
        rows = compare_to_paper(result, {"simple-1": 0.26, "umr": 0.0})
        assert len(rows) == 2
        by_name = {r["algorithm"]: r for r in rows}
        assert by_name["simple-1"]["paper_slowdown"] == 0.26
        assert by_name["umr"]["measured_slowdown"] == 0.0

    def test_compare_to_paper_missing_algorithm(self):
        config = ExperimentConfig(
            label="unit", grid_factory=_grid_factory, total_load=300.0,
            algorithms=("umr",), runs=1,
        )
        result = run_experiment(config)
        with pytest.raises(ReproError, match="missing"):
            compare_to_paper(result, {"wf": 0.1})


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1.5], ["bb", None]])
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "N/A" in lines[3]

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_table_needs_headers(self):
        with pytest.raises(ReproError):
            render_table([], [])

    def test_render_slowdown_table(self):
        text = render_slowdown_table(
            "Figure 2",
            {"umr": 0.0, "simple-1": 0.26},
            makespans={"umr": 6000.0, "simple-1": 7560.0},
            paper={"umr": 0.0, "simple-1": 0.26},
        )
        assert "Figure 2" in text
        assert "+26.0%" in text
        assert "6000.0" in text
