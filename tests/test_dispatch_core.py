"""The unified dispatch core: cross-backend parity, retry, observability.

The four backends (simulation, threaded local, worker processes, remote
socket workers) are adapters over one
:class:`repro.dispatch.core.DispatchCore`.  These tests pin the property
that justifies the refactor: the scheduling algorithm makes identical
decisions no matter which substrate executes them.
"""

import json

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.dispatch import DispatchOptions, RetryPolicy
from repro.dispatch.parity import chunk_signature, parity_options, run_backend
from repro.errors import ExecutionError
from repro.execution.local import LocalExecutionBackend
from repro.execution.testing import FlakyApp
from repro.obs import (
    CHUNK_COMPLETED,
    CHUNK_DISPATCHED,
    CHUNK_RETRANSMITTED,
    PROBE_FINISHED,
    Observability,
    build_chrome_trace,
    write_chrome_trace,
)
from repro.platform.resources import Cluster, Grid
from repro.simulation.compute import DETERMINISTIC, ComputeModel
from repro.simulation.master import SimulationOptions, simulate_run
from repro.apst.probing import run_probe_phase

LOAD_BYTES = 1024
STEPSIZE = 64


@pytest.fixture
def grid():
    """Heterogeneous platform, so assignments actually differ per worker."""
    return Grid.from_clusters(
        Cluster.homogeneous("fast", 2, speed=800.0, bandwidth=8000.0,
                            comm_latency=0.02, comp_latency=0.01),
        Cluster.homogeneous("slow", 1, speed=300.0, bandwidth=4000.0,
                            comm_latency=0.05, comp_latency=0.02),
    )


@pytest.fixture
def load_file(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(LOAD_BYTES))
    return path


class TestCrossBackendParity:
    @pytest.mark.parametrize("algorithm", ["simple-2", "umr"])
    def test_identical_decision_sequence_on_all_backends(
        self, grid, load_file, tmp_path, algorithm
    ):
        """DETERMINISTIC costs + oracle estimates -> same (units, worker)

        sequence on the simulator, the threaded backend, the process
        backend, and the remote socket backend.  This is the refactor's
        core guarantee: one loop, four substrates, zero behavioral drift.
        """
        signatures = {
            kind: chunk_signature(
                run_backend(kind, grid, algorithm, load_file,
                            stepsize=STEPSIZE, workdir=tmp_path,
                            time_scale=0.01)
            )
            for kind in ("simulation", "local", "process", "remote")
        }
        assert signatures["local"] == signatures["simulation"]
        assert signatures["process"] == signatures["simulation"]
        assert signatures["remote"] == signatures["simulation"]
        assert len(signatures["simulation"]) > 0

    def test_signatures_conserve_load(self, grid, load_file, tmp_path):
        signature = chunk_signature(
            run_backend("local", grid, "umr", load_file,
                        stepsize=STEPSIZE, workdir=tmp_path, time_scale=0.01)
        )
        assert sum(units for units, _ in signature) == pytest.approx(LOAD_BYTES)
        assert {worker for _, worker in signature} <= {0, 1, 2}


class TestUnifiedProbing:
    def test_sim_probe_time_matches_probe_phase(self, grid):
        """The master's reported probe_time is exactly run_probe_phase's."""
        model = ComputeModel(grid.workers, DETERMINISTIC, seed=0)
        expected = run_probe_phase(list(grid.workers), model, 32.0).duration
        report = simulate_run(
            grid, make_scheduler("wf"), total_load=float(LOAD_BYTES), seed=0,
            options=SimulationOptions(probe_units=32.0),
        )
        assert report.probe_time == pytest.approx(expected)
        assert report.probe_time > 0

    def test_sim_probe_time_matches_under_noise(self, grid):
        """Same equality when estimates inherit single-sample noise."""
        from repro.simulation.compute import UncertaintyModel

        uncertainty = UncertaintyModel(gamma=0.3)
        model = ComputeModel(grid.workers, uncertainty, seed=7)
        expected = run_probe_phase(list(grid.workers), model, 32.0).duration
        report = simulate_run(
            grid, make_scheduler("wf"), total_load=float(LOAD_BYTES),
            gamma=0.3, seed=7, options=SimulationOptions(probe_units=32.0),
        )
        assert report.probe_time == pytest.approx(expected)

    def test_simple_n_skips_probing_on_every_backend(self, grid, load_file, tmp_path):
        """SIMPLE-n 'uses no probing' (paper Section 3.6) -- uniformly now."""
        for kind in ("simulation", "local"):
            report = run_backend(
                kind, grid, "simple-1", load_file, stepsize=STEPSIZE,
                workdir=tmp_path, time_scale=0.01,
                options=DispatchOptions(),  # estimate_source="probe"
            )
            assert report.probe_time == 0.0


class TestRetryPolicy:
    def test_retransmit_recovers_from_chunk_failure(self, grid, load_file, tmp_path):
        """max_attempts=2: the failed chunk is re-shipped and the run completes."""
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(
            tmp_path / "retry", app=FlakyApp(fail_on_calls=[2]), time_scale=0.01
        )
        options = parity_options(retry=RetryPolicy(max_attempts=2))
        report = backend.execute(
            grid, make_scheduler("simple-2"), division, None, options=options
        )
        assert report.annotations["retransmitted_chunks"] == 1
        report.validate()  # load conserved, causality holds after the retry

    def test_default_policy_fails_fast(self, grid, load_file, tmp_path):
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(
            tmp_path / "failfast", app=FlakyApp(fail_on_calls=[2]), time_scale=0.01
        )
        with pytest.raises(ExecutionError, match="injected"):
            backend.execute(
                grid, make_scheduler("simple-2"), division, None,
                options=parity_options(),
            )

    def test_exhausted_retries_fail(self, grid, load_file, tmp_path):
        """A chunk that fails on every attempt still aborts the run."""
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(
            tmp_path / "exhaust",
            app=FlakyApp(fail_on_calls=list(range(2, 40))),  # all but the first
            time_scale=0.01,
        )
        with pytest.raises(ExecutionError, match="injected"):
            backend.execute(
                grid, make_scheduler("simple-2"), division, None,
                options=parity_options(retry=RetryPolicy(max_attempts=2)),
            )

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_retransmit_emits_event(self, grid, load_file, tmp_path):
        obs = Observability.armed()
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(
            tmp_path / "retry_obs", app=FlakyApp(fail_on_calls=[2]), time_scale=0.01
        )
        options = parity_options(
            retry=RetryPolicy(max_attempts=2), observability=obs
        )
        backend.execute(
            grid, make_scheduler("simple-2"), division, None, options=options
        )
        events = obs.ring_events(CHUNK_RETRANSMITTED)
        assert len(events) == 1
        assert events[0].fields["attempt"] == 2


class TestRealBackendObservability:
    def test_local_run_emits_events_and_metrics(self, grid, load_file, tmp_path):
        obs = Observability.armed()
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(tmp_path / "obs", time_scale=0.01)
        report = backend.execute(
            grid, make_scheduler("umr"), division, None, probe_units=64.0,
            options=DispatchOptions(observability=obs),
        )
        assert len(obs.ring_events(CHUNK_DISPATCHED)) == report.num_chunks
        assert len(obs.ring_events(CHUNK_COMPLETED)) == report.num_chunks
        probe_events = obs.ring_events(PROBE_FINISHED)
        assert len(probe_events) == 1
        assert probe_events[0].fields["source"] == "probe"
        completed = obs.metrics.counter("repro_chunks_completed_total")
        assert completed.value == report.num_chunks
        assert [s.name for s in obs.tracer.spans("engine.run")]  # span recorded

    def test_local_run_exports_valid_chrome_trace(self, grid, load_file, tmp_path):
        obs = Observability.armed()
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        backend = LocalExecutionBackend(tmp_path / "trace", time_scale=0.01)
        report = backend.execute(
            grid, make_scheduler("umr"), division, None, probe_units=64.0,
            options=DispatchOptions(observability=obs),
        )
        trace = build_chrome_trace(
            reports={1: report},
            tracer=obs.tracer,
            worker_names={i: w.name for i, w in enumerate(grid.workers)},
        )
        out = write_chrome_trace(tmp_path / "trace.json", trace)
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"]
        lanes = {
            e["args"]["name"] for e in loaded["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert any("fast" in lane for lane in lanes)  # worker lanes rendered

    def test_remote_run_exports_valid_chrome_trace(self, grid, load_file, tmp_path):
        """The remote socket backend instruments exactly like the others."""
        from repro.execution.appspec import app_spec
        from repro.execution.local import DigestApp
        from repro.net.remote import RemoteExecutionBackend, RemoteWorkerPool

        obs = Observability.armed()
        division = UniformBytesDivision(load_file, stepsize=STEPSIZE)
        with RemoteWorkerPool() as pool:
            endpoints = pool.spawn(
                len(grid.workers), app_spec(DigestApp), tmp_path / "workers"
            )
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "remote_trace", time_scale=0.01
            )
            report = backend.execute(
                grid, make_scheduler("umr"), division, None, probe_units=64.0,
                options=DispatchOptions(observability=obs),
            )
        assert len(obs.ring_events(CHUNK_COMPLETED)) == report.num_chunks
        trace = build_chrome_trace(
            reports={1: report},
            tracer=obs.tracer,
            worker_names={i: w.name for i, w in enumerate(grid.workers)},
        )
        out = write_chrome_trace(tmp_path / "remote_trace.json", trace)
        loaded = json.loads(out.read_text())
        assert loaded["traceEvents"]
        lanes = {
            e["args"]["name"] for e in loaded["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert any("fast" in lane for lane in lanes)


class TestLayering:
    """The execution layer must not reach into the scheduler-driving core."""

    def test_execution_layer_does_not_import_scheduler_base(self):
        import repro.execution as execution_pkg
        from pathlib import Path

        package_dir = Path(execution_pkg.__file__).parent
        offenders = [
            path.name
            for path in sorted(package_dir.glob("*.py"))
            if "core.base" in path.read_text() or "core import base" in path.read_text()
        ]
        assert offenders == [], (
            f"{offenders} import repro.core.base; scheduler driving belongs "
            "to repro.dispatch.core -- backends only provide substrates"
        )

    def test_backends_have_no_dispatch_loop(self):
        import repro.execution as execution_pkg
        import repro.simulation as simulation_pkg
        from pathlib import Path

        for pkg in (execution_pkg, simulation_pkg):
            for path in sorted(Path(pkg.__file__).parent.glob("*.py")):
                assert "next_dispatch" not in path.read_text(), (
                    f"{path} drives the scheduler directly; only "
                    "repro.dispatch.core may call next_dispatch"
                )
