"""Integration tests for the simulated APST-DV master."""

import pytest

from repro.apst.division import UniformUnitsDivision
from repro.core.base import Scheduler
from repro.core.registry import make_scheduler
from repro.errors import SchedulingError, SimulationError
from repro.simulation.master import (
    SimulatedMaster,
    SimulationOptions,
    simulate_run,
)

ALL_ALGORITHMS = (
    "simple-1", "simple-5", "umr", "wf", "factoring", "gss",
    "rumr", "fixed-rumr", "adaptive-umr", "oneround-affine",
    "oneround-linear", "multiinstallment-4",
)


class TestEveryAlgorithmRuns:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_runs_and_validates_on_small_grid(self, small_grid, name):
        report = simulate_run(small_grid, make_scheduler(name),
                              total_load=800.0, seed=0)
        report.validate()
        assert report.makespan > 0

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_runs_on_heterogeneous_grid_with_noise(self, hetero_grid, name):
        report = simulate_run(hetero_grid, make_scheduler(name),
                              total_load=400.0, gamma=0.15, seed=1)
        report.validate()


class TestMakespanBounds:
    @pytest.mark.parametrize("name", ("simple-1", "umr", "wf", "fixed-rumr"))
    def test_makespan_at_least_ideal_compute(self, small_grid, name):
        report = simulate_run(small_grid, make_scheduler(name),
                              total_load=800.0, seed=0)
        ideal = 800.0 / small_grid.total_speed
        assert report.makespan >= ideal

    @pytest.mark.parametrize("name", ("simple-1", "umr", "wf"))
    def test_makespan_at_least_serial_transfer_of_last_chunk(self, small_grid, name):
        """The link must carry the whole load: makespan >= W/B + first compute."""
        report = simulate_run(small_grid, make_scheduler(name),
                              total_load=800.0, seed=0)
        serial_comm = 800.0 / small_grid.workers[0].bandwidth
        assert report.makespan > serial_comm


class TestDeterminism:
    def test_same_seed_same_makespan(self, small_grid):
        a = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0,
                         gamma=0.2, seed=9)
        b = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0,
                         gamma=0.2, seed=9)
        assert a.makespan == b.makespan

    def test_different_seeds_differ_under_noise(self, small_grid):
        a = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0,
                         gamma=0.2, seed=1)
        b = simulate_run(small_grid, make_scheduler("wf"), total_load=500.0,
                         gamma=0.2, seed=2)
        assert a.makespan != b.makespan

    def test_gamma_zero_is_seed_independent(self, small_grid):
        a = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0, seed=1)
        b = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0, seed=2)
        assert a.makespan == pytest.approx(b.makespan)


class TestOptions:
    def test_probe_time_included_when_requested(self, small_grid):
        base = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0,
                            seed=0)
        with_probe = simulate_run(
            small_grid, make_scheduler("umr"), total_load=500.0, seed=0,
            options=SimulationOptions(include_probe_time=True),
        )
        assert with_probe.makespan == pytest.approx(
            base.makespan + base.probe_time
        )
        assert base.probe_time > 0

    def test_simple_has_no_probe_cost(self, small_grid):
        report = simulate_run(small_grid, make_scheduler("simple-1"),
                              total_load=500.0, seed=0)
        assert report.probe_time == 0.0

    def test_perfect_estimates_skip_probe(self, small_grid):
        report = simulate_run(
            small_grid, make_scheduler("umr"), total_load=500.0, seed=0,
            options=SimulationOptions(perfect_estimates=True),
        )
        assert report.probe_time == 0.0

    def test_output_transfers_extend_makespan(self, small_grid):
        base = simulate_run(small_grid, make_scheduler("umr"), total_load=500.0, seed=0)
        with_output = simulate_run(
            small_grid, make_scheduler("umr"), total_load=500.0, seed=0,
            options=SimulationOptions(output_factor=0.5),
        )
        assert with_output.makespan > base.makespan

    def test_custom_probe_units(self, small_grid):
        report = simulate_run(
            small_grid, make_scheduler("umr"), total_load=500.0, seed=0,
            options=SimulationOptions(probe_units=25.0),
        )
        assert report.probe_time > 0

    def test_quantum_quantizes_chunks(self, small_grid):
        report = simulate_run(
            small_grid, make_scheduler("wf"), total_load=500.0, seed=0,
            options=SimulationOptions(quantum=10.0),
        )
        for c in report.chunks:
            if c.offset + c.units < 500.0 - 1e-9:
                assert (c.offset + c.units) % 10.0 == pytest.approx(0.0, abs=1e-6)


class TestErrorHandling:
    def test_stalling_scheduler_detected(self, small_grid):
        class Staller(Scheduler):
            name = "staller"
            uses_probing = False

            def _plan(self, config):
                pass

            def next_dispatch(self, now, workers):
                return None  # never dispatches anything

        with pytest.raises(SchedulingError, match="stalled"):
            simulate_run(small_grid, Staller(), total_load=100.0, seed=0)

    def test_invalid_worker_dispatch_detected(self, small_grid):
        from repro.core.base import DispatchRequest

        class BadTarget(Scheduler):
            name = "bad-target"
            uses_probing = False

            def _plan(self, config):
                self.sent = False

            def next_dispatch(self, now, workers):
                if self.sent:
                    return None
                self.sent = True
                return DispatchRequest(worker_index=99, units=100.0)

        with pytest.raises(SchedulingError, match="invalid worker"):
            simulate_run(small_grid, BadTarget(), total_load=100.0, seed=0)

    def test_division_total_must_match_load(self, small_grid):
        division = UniformUnitsDivision(total=50.0, step=1.0)
        with pytest.raises(SimulationError, match="division covers"):
            SimulatedMaster(small_grid, make_scheduler("umr"), total_load=100.0,
                            division=division)

    def test_run_is_single_use(self, small_grid):
        master = SimulatedMaster(small_grid, make_scheduler("simple-1"),
                                 total_load=100.0)
        master.run()
        with pytest.raises(SimulationError, match="twice"):
            master.run()


class TestSchedulerView:
    def test_notifications_arrive_in_order(self, small_grid):
        events = []

        class Recorder(Scheduler):
            name = "recorder"
            uses_probing = False

            def _plan(self, config):
                self.sent = 0

            def next_dispatch(self, now, workers):
                if self.sent >= 4:
                    return None
                self.sent += 1
                from repro.core.base import DispatchRequest

                return DispatchRequest(worker_index=self.sent - 1, units=25.0)

            def notify_dispatched(self, chunk):
                super().notify_dispatched(chunk)
                events.append(("dispatch", chunk.chunk_id))

            def notify_arrival(self, chunk, now):
                events.append(("arrival", chunk.chunk_id))

            def notify_completion(self, chunk, now, predicted_time, actual_time):
                events.append(("completion", chunk.chunk_id))

        simulate_run(small_grid, Recorder(), total_load=100.0, seed=0)
        for cid in range(4):
            d = events.index(("dispatch", cid))
            a = events.index(("arrival", cid))
            c = events.index(("completion", cid))
            assert d < a < c
