"""Tests for the serialized master link."""

import pytest

from repro.errors import SimulationError
from repro.platform.resources import WorkerSpec
from repro.simulation.compute import ComputeModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import SerializedLink


def _link(n_workers=2, bandwidth=10.0, latency=1.0):
    engine = SimulationEngine()
    workers = [
        WorkerSpec(f"w{i}", speed=1.0, bandwidth=bandwidth, comm_latency=latency)
        for i in range(n_workers)
    ]
    model = ComputeModel(workers, seed=0)
    return engine, SerializedLink(engine, model)


class TestSerialization:
    def test_single_transfer_duration(self):
        engine, link = _link()
        done = []
        link.submit(0, 20.0, lambda rec: done.append(rec))
        engine.run()
        assert len(done) == 1
        rec = done[0]
        assert rec.start_time == 0.0
        assert rec.end_time == pytest.approx(1.0 + 2.0)

    def test_transfers_are_serialized_fifo(self):
        engine, link = _link()
        done = []
        link.submit(0, 10.0, done.append)   # 1 + 1 = 2s
        link.submit(1, 20.0, done.append)   # 1 + 2 = 3s
        engine.run()
        assert [r.worker_index for r in done] == [0, 1]
        assert done[0].end_time == pytest.approx(2.0)
        assert done[1].start_time == pytest.approx(2.0)
        assert done[1].end_time == pytest.approx(5.0)

    def test_no_overlap_among_many_transfers(self):
        engine, link = _link(n_workers=5)
        for i in range(5):
            for _ in range(3):
                link.submit(i, 5.0, lambda rec: None)
        engine.run()
        records = sorted(link.records, key=lambda r: r.start_time)
        for a, b in zip(records, records[1:]):
            assert b.start_time >= a.end_time - 1e-12

    def test_zero_size_transfer_pays_latency_only(self):
        engine, link = _link(latency=2.5)
        done = []
        link.submit(0, 0.0, done.append)
        engine.run()
        assert done[0].duration == pytest.approx(2.5)

    def test_negative_size_rejected(self):
        _, link = _link()
        with pytest.raises(SimulationError):
            link.submit(0, -1.0, lambda rec: None)


class TestBookkeeping:
    def test_busy_time_accumulates(self):
        engine, link = _link()
        link.submit(0, 10.0, lambda rec: None)  # 2s
        link.submit(1, 10.0, lambda rec: None)  # 2s
        engine.run()
        assert link.busy_time == pytest.approx(4.0)

    def test_utilization(self):
        engine, link = _link()
        link.submit(0, 10.0, lambda rec: None)
        engine.run()
        assert link.utilization(4.0) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            link.utilization(0.0)

    def test_on_idle_fires_when_queue_drains(self):
        engine, link = _link()
        idles = []
        link.on_idle = lambda: idles.append(engine.now)
        link.submit(0, 10.0, lambda rec: None)
        link.submit(1, 10.0, lambda rec: None)
        engine.run()
        # only once, when the last transfer completes
        assert idles == [pytest.approx(4.0)]

    def test_completion_callback_can_submit_more(self):
        engine, link = _link()
        done = []

        def chain(rec):
            done.append(rec)
            if len(done) < 3:
                link.submit(0, 10.0, chain)

        link.submit(0, 10.0, chain)
        engine.run()
        assert len(done) == 3
        assert done[-1].end_time == pytest.approx(6.0)

    def test_tag_round_trips(self):
        engine, link = _link()
        seen = []
        link.submit(0, 1.0, lambda rec: seen.append(rec.tag), tag="payload")
        engine.run()
        assert seen == ["payload"]

    def test_queue_length_visible(self):
        engine, link = _link()
        link.submit(0, 10.0, lambda rec: None)
        link.submit(0, 10.0, lambda rec: None)
        link.submit(0, 10.0, lambda rec: None)
        assert link.busy
        assert link.queued == 2
        engine.run()
        assert not link.busy
        assert link.queued == 0
