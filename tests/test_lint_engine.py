"""Engine-level tests: pragmas, strict hygiene, reporters, CLI, and the
acceptance gate that the real tree lints clean."""

import json
from pathlib import Path

import repro
from repro.analysis.lint import (
    LintEngine,
    Violation,
    default_rules,
    extract_pragmas,
    render_json,
    render_text,
)
from repro.analysis.lint.cli import main
from repro.analysis.lint.rules.layering import BarePrintRule

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def write(root, rel, text):
    dest = root / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text(text)
    return dest


# -- pragma extraction -------------------------------------------------------


def test_extract_pragmas_comments_only():
    source = (
        '"""Docstring showing  # repro: allow[sim-time] -- example."""\n'
        "MSG = 'use # repro: allow[bare-print]'\n"
        "x = 1  # repro: allow[sim-time] -- real pragma\n"
    )
    pragmas = extract_pragmas(source)
    assert list(pragmas) == [3]
    assert pragmas[3].rules == ("sim-time",)
    assert pragmas[3].reason == "real pragma"


def test_extract_pragmas_multiple_rules_and_missing_reason():
    pragmas = extract_pragmas(
        "a = 1  # repro: allow[sim-time, bare-print] -- two at once\n"
        "b = 2  # repro: allow[layering]\n"
    )
    assert pragmas[1].rules == ("sim-time", "bare-print")
    assert pragmas[1].reason == "two at once"
    assert pragmas[2].rules == ("layering",)
    assert pragmas[2].reason is None


def test_extract_pragmas_tolerates_unparsable_source():
    assert extract_pragmas("def broken(:\n") == {}


# -- suppression and strict hygiene ------------------------------------------


def test_pragma_suppresses_only_named_rule(tmp_path):
    write(
        tmp_path,
        "mod.py",
        "print('a')  # repro: allow[sim-time] -- wrong rule named\n",
    )
    violations = LintEngine(tmp_path, [BarePrintRule()]).run()
    assert [v.rule for v in violations] == ["bare-print"]


def test_strict_flags_missing_reason(tmp_path):
    write(tmp_path, "mod.py", "print('a')  # repro: allow[bare-print]\n")
    violations = LintEngine(tmp_path, [BarePrintRule()], strict=True).run()
    assert [v.rule for v in violations] == ["pragma"]
    assert "no justification" in violations[0].message


def test_strict_flags_unknown_rule(tmp_path):
    write(tmp_path, "mod.py", "x = 1  # repro: allow[no-such-rule] -- why\n")
    violations = LintEngine(tmp_path, [BarePrintRule()], strict=True).run()
    assert [v.rule for v in violations] == ["pragma"]
    assert "unknown rule" in violations[0].message


def test_strict_flags_stale_pragma(tmp_path):
    write(tmp_path, "mod.py", "x = 1  # repro: allow[bare-print] -- nothing here\n")
    violations = LintEngine(tmp_path, [BarePrintRule()], strict=True).run()
    assert [v.rule for v in violations] == ["pragma"]
    assert "stale pragma" in violations[0].message


def test_non_strict_ignores_pragma_hygiene(tmp_path):
    write(tmp_path, "mod.py", "x = 1  # repro: allow[bare-print] -- stale\n")
    assert LintEngine(tmp_path, [BarePrintRule()]).run() == []


def test_syntax_error_reported_as_parse_violation(tmp_path):
    write(tmp_path, "mod.py", "def broken(:\n")
    violations = LintEngine(tmp_path, [BarePrintRule()]).run()
    assert [v.rule for v in violations] == ["parse"]


def test_duplicate_rule_names_rejected(tmp_path):
    try:
        LintEngine(tmp_path, [BarePrintRule(), BarePrintRule()])
    except ValueError as exc:
        assert "duplicate" in str(exc)
    else:  # pragma: no cover - failure path
        raise AssertionError("expected ValueError for duplicate rule names")


# -- reporters ---------------------------------------------------------------


def test_json_reporter_schema(tmp_path):
    write(tmp_path, "mod.py", "print('a')\n")
    engine = LintEngine(tmp_path, [BarePrintRule()], strict=True)
    violations = engine.run()
    payload = json.loads(render_json(violations, engine))
    assert set(payload) == {"root", "strict", "rules", "count", "violations"}
    assert payload["root"] == str(tmp_path.resolve())
    assert payload["strict"] is True
    assert payload["rules"] == ["bare-print"]
    assert payload["count"] == 1
    (entry,) = payload["violations"]
    assert set(entry) == {"rule", "path", "line", "col", "message"}
    assert entry["path"] == "mod.py"
    assert entry["line"] == 1


def test_text_reporter(tmp_path):
    violation = Violation(
        rule="bare-print", path="mod.py", line=3, col=4, message="boom"
    )
    text = render_text([violation])
    assert "mod.py:3:4: [bare-print] boom" in text
    assert "1 violation" in text
    assert "clean" in render_text([])


# -- CLI ---------------------------------------------------------------------


def test_cli_clean_exit_zero(tmp_path, capsys):
    write(tmp_path, "mod.py", "x = 1\n")
    assert main(["--root", str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_violations_exit_one(tmp_path, capsys):
    write(tmp_path, "simulation/bad.py", "import time\nnow = time.time()\n")
    assert main(["--root", str(tmp_path)]) == 1
    assert "[sim-time]" in capsys.readouterr().out


def test_cli_select_limits_rules(tmp_path, capsys):
    write(tmp_path, "simulation/bad.py", "import time\nnow = time.time()\nprint(now)\n")
    assert main(["--root", str(tmp_path), "--select", "bare-print"]) == 1
    out = capsys.readouterr().out
    assert "[bare-print]" in out
    assert "[sim-time]" not in out


def test_cli_ignore_drops_rules(tmp_path, capsys):
    write(tmp_path, "simulation/bad.py", "import time\nnow = time.time()\n")
    assert main(["--root", str(tmp_path), "--ignore", "sim-time"]) == 0
    capsys.readouterr()


def test_cli_unknown_rule_exit_two(tmp_path, capsys):
    assert main(["--root", str(tmp_path), "--select", "no-such-rule"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_cli_bad_path_exit_two(tmp_path, capsys):
    missing = tmp_path / "nope.py"
    assert main(["--root", str(tmp_path), str(missing)]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "sim-time",
        "taxonomy",
        "protocol",
        "async-blocking",
        "layering",
        "bare-print",
    ):
        assert name in out


def test_cli_json_format(tmp_path, capsys):
    write(tmp_path, "mod.py", "print('a')\n")
    assert main(["--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1


def test_cli_partial_paths(tmp_path, capsys):
    write(tmp_path, "simulation/bad.py", "import time\nnow = time.time()\n")
    clean = write(tmp_path, "simulation/good.py", "x = 1\n")
    assert main(["--root", str(tmp_path), str(clean)]) == 0
    capsys.readouterr()


# -- acceptance gate ---------------------------------------------------------


def test_repo_lints_clean():
    """The in-tree mirror of the CI gate: strict lint over src/repro is clean."""
    engine = LintEngine(PACKAGE_ROOT, default_rules(), strict=True)
    violations = engine.run()
    assert violations == [], "\n" + "\n".join(v.format() for v in violations)
