"""Tests for platform calibration and the paper-constant presets."""

import pytest

from repro.errors import PlatformError
from repro.platform.calibrate import (
    calibrate_cluster,
    clock_speed_factors,
    platform_summary,
)
from repro.platform.presets import (
    DAS2_R,
    GRAIL_R,
    METEOR_R,
    PAPER_IDEAL_COMPUTE_S,
    PAPER_LOAD_UNITS,
    das2_cluster,
    grail_lan,
    meteor_cluster,
    mixed_grid,
    preset_by_name,
)


class TestCalibrateCluster:
    def test_aggregate_speed_matches_target(self):
        c = calibrate_cluster(
            "c", nodes=8, comm_comp_ratio=20.0, total_load=1000.0,
            ideal_compute_time=100.0,
        )
        assert sum(w.speed for w in c.workers) == pytest.approx(10.0)

    def test_ratio_matches_target(self):
        c = calibrate_cluster(
            "c", nodes=5, comm_comp_ratio=15.0, total_load=500.0,
            ideal_compute_time=50.0,
        )
        mean_speed = sum(w.speed for w in c.workers) / 5
        assert c.workers[0].bandwidth / mean_speed == pytest.approx(15.0)

    def test_speed_factors_preserve_aggregate(self):
        c = calibrate_cluster(
            "c", nodes=3, comm_comp_ratio=10.0, total_load=300.0,
            ideal_compute_time=30.0, speed_factors=[0.5, 1.0, 1.5],
        )
        assert sum(w.speed for w in c.workers) == pytest.approx(10.0)
        speeds = [w.speed for w in c.workers]
        assert speeds[2] / speeds[0] == pytest.approx(3.0)

    def test_wrong_factor_count_rejected(self):
        with pytest.raises(PlatformError, match="entries"):
            calibrate_cluster(
                "c", nodes=3, comm_comp_ratio=1.0, total_load=1.0,
                ideal_compute_time=1.0, speed_factors=[1.0],
            )

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(PlatformError, match="positive"):
            calibrate_cluster(
                "c", nodes=2, comm_comp_ratio=1.0, total_load=1.0,
                ideal_compute_time=1.0, speed_factors=[1.0, 0.0],
            )

    def test_clock_speed_factors(self):
        assert clock_speed_factors([500.0, 1000.0]) == [0.5, 1.0]
        with pytest.raises(PlatformError):
            clock_speed_factors([])
        with pytest.raises(PlatformError):
            clock_speed_factors([-1.0])


class TestPresets:
    def test_das2_matches_paper_constants(self):
        grid = das2_cluster(16)
        assert len(grid) == 16
        assert grid.comm_comp_ratio == pytest.approx(DAS2_R)
        assert grid.workers[0].comm_latency == pytest.approx(6.4)
        assert grid.workers[0].comp_latency == pytest.approx(0.7)

    def test_meteor_matches_paper_constants(self):
        grid = meteor_cluster(16)
        assert grid.comm_comp_ratio == pytest.approx(METEOR_R)
        assert grid.workers[0].comm_latency == pytest.approx(0.7)
        assert grid.workers[0].comp_latency == pytest.approx(0.1)

    def test_meteor_is_heterogeneous(self):
        grid = meteor_cluster(16)
        speeds = [w.speed for w in grid.workers]
        assert max(speeds) > min(speeds)
        # clock range 790..996 MHz
        assert max(speeds) / min(speeds) == pytest.approx(996.0 / 790.0, rel=1e-6)

    def test_das2_ideal_compute_time(self):
        grid = das2_cluster(16)
        assert PAPER_LOAD_UNITS / grid.total_speed == pytest.approx(
            PAPER_IDEAL_COMPUTE_S
        )

    def test_mixed_grid_composition(self):
        grid = mixed_grid(8, 8)
        assert len(grid) == 16
        assert grid.clusters == ("das2", "meteor")
        assert len(grid.cluster_workers("das2")) == 8

    def test_mixed_grid_aggregate_speed(self):
        grid = mixed_grid(8, 8)
        assert PAPER_LOAD_UNITS / grid.total_speed == pytest.approx(
            PAPER_IDEAL_COMPUTE_S
        )

    def test_grail_has_7_processors_and_one_slow(self):
        grid = grail_lan()
        assert len(grid) == 7
        assert grid.comm_comp_ratio == pytest.approx(GRAIL_R)
        speeds = sorted(w.speed for w in grid.workers)
        assert speeds[0] < speeds[1]
        assert speeds[1] == pytest.approx(speeds[-1])

    def test_preset_by_name(self):
        assert len(preset_by_name("das2")) == 16
        assert len(preset_by_name("grail")) == 7
        with pytest.raises(KeyError):
            preset_by_name("nonexistent")

    def test_platform_summary_keys(self):
        info = platform_summary(das2_cluster(4))
        assert info["workers"] == 4
        assert info["comm_comp_ratio"] == pytest.approx(DAS2_R)
        assert info["clusters"] == ["das2"]
