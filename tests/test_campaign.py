"""Tests for experiment campaigns (persist / resume / diff)."""

import json

import pytest

from repro.analysis.campaign import Campaign, CampaignResult, paper_section4_campaign
from repro.analysis.experiments import ExperimentConfig
from repro.errors import ReproError
from repro.platform.resources import Cluster, Grid


def _grid():
    return Grid.from_clusters(
        Cluster.homogeneous("t", 3, speed=1.0, bandwidth=10.0,
                            comm_latency=0.3, comp_latency=0.1)
    )


def _config(label="exp", gamma=0.0):
    return ExperimentConfig(
        label=label, grid_factory=_grid, total_load=300.0, gamma=gamma,
        algorithms=("simple-1", "umr"), runs=2,
    )


class TestCampaignLifecycle:
    def test_run_and_persist(self, tmp_path):
        campaign = Campaign("c", tmp_path / "c.json")
        campaign.add("a", _config)
        executed = campaign.run()
        assert executed == ["a"]
        assert (tmp_path / "c.json").is_file()
        assert campaign.results["a"].mean_makespans["umr"] > 0

    def test_resume_skips_stored_results(self, tmp_path):
        store = tmp_path / "c.json"
        first = Campaign("c", store)
        first.add("a", _config)
        first.run()

        resumed = Campaign("c", store)
        resumed.add("a", _config)
        resumed.add("b", lambda: _config("exp-b", gamma=0.1))
        assert resumed.pending == ["b"]
        executed = resumed.run()
        assert executed == ["b"]
        assert set(resumed.results) == {"a", "b"}

    def test_force_reruns_everything(self, tmp_path):
        campaign = Campaign("c", tmp_path / "c.json")
        campaign.add("a", _config)
        campaign.run()
        assert campaign.run() == []
        assert campaign.run(force=True) == ["a"]

    def test_duplicate_registration_rejected(self, tmp_path):
        campaign = Campaign("c", tmp_path / "c.json")
        campaign.add("a", _config)
        with pytest.raises(ReproError, match="already registered"):
            campaign.add("a", _config)

    def test_store_guards_campaign_name(self, tmp_path):
        store = tmp_path / "c.json"
        Campaign("original", store).add("a", _config).run()
        with pytest.raises(ReproError, match="belongs to campaign"):
            Campaign("imposter", store)

    def test_malformed_store_rejected(self, tmp_path):
        store = tmp_path / "c.json"
        store.write_text("{broken")
        with pytest.raises(ReproError, match="malformed"):
            Campaign("c", store)

    def test_version_checked(self, tmp_path):
        store = tmp_path / "c.json"
        store.write_text(json.dumps({"format_version": 9, "campaign": "c"}))
        with pytest.raises(ReproError, match="format"):
            Campaign("c", store)


class TestDiff:
    def test_identical_campaigns_have_no_drift(self, tmp_path):
        a = Campaign("c", tmp_path / "a.json")
        a.add("x", _config)
        a.run()
        b = Campaign("c", tmp_path / "b.json")
        b.add("x", _config)
        b.run()
        assert a.diff(b) == []

    def test_drift_detected(self, tmp_path):
        a = Campaign("c", tmp_path / "a.json")
        a.add("x", _config)
        a.run()
        b = Campaign("c", tmp_path / "b.json")
        b.results["x"] = CampaignResult(
            label="x", gamma=0.0, runs=2,
            mean_makespans={"simple-1": 1.0, "umr": 1.0},
            slowdowns={"simple-1": 0.0, "umr": 0.0},
        )
        drift = a.diff(b)
        assert drift and "simple-1" in drift[0] + drift[-1]

    def test_missing_experiment_reported(self, tmp_path):
        a = Campaign("c", tmp_path / "a.json")
        a.add("x", _config)
        a.run()
        empty = Campaign("c", tmp_path / "b.json")
        drift = a.diff(empty)
        assert drift == ["x: missing from c"]


class TestPaperCampaign:
    def test_registers_all_six_panels(self, tmp_path):
        campaign = paper_section4_campaign(tmp_path / "s4.json", runs=1)
        assert len(campaign.pending) == 6
        assert "fig2_das2_gamma0" in campaign.pending
        assert "fig4_mixed_gamma10" in campaign.pending

    def test_one_panel_executes(self, tmp_path):
        campaign = paper_section4_campaign(tmp_path / "s4.json", runs=1)
        # run just the first panel by dropping the rest
        keep = "fig2_das2_gamma0"
        campaign._experiments = {keep: campaign._experiments[keep]}
        executed = campaign.run()
        assert executed == [keep]
        assert campaign.results[keep].slowdowns["simple-1"] > 0.1
