"""White-box tests of RUMR's switch mechanism.

These drive the scheduler directly (no simulator), constructing the exact
conditions of the paper's finding: evidence of uncertainty arriving
before vs after the final round has started transmitting.
"""

import pytest

from repro.core.base import ChunkInfo, SchedulerConfig, WorkerState
from repro.core.rumr import RUMR
from repro.platform.resources import WorkerSpec


def _config(n=4, load=2000.0):
    estimates = [
        WorkerSpec(f"w{i}", speed=1.0, bandwidth=10.0, comm_latency=0.5,
                   comp_latency=0.2)
        for i in range(n)
    ]
    return SchedulerConfig(estimates=estimates, total_load=load)


def _states(n=4):
    return [WorkerState(index=i, name=f"w{i}") for i in range(n)]


def _pop_chunks(scheduler, count, workers):
    """Dispatch ``count`` chunks from the scheduler, committing each."""
    chunks = []
    for _ in range(count):
        req = scheduler.next_dispatch(0.0, workers)
        assert req is not None
        info = ChunkInfo(len(chunks), req.worker_index, req.units,
                         req.round_index, req.phase)
        scheduler.notify_dispatched(info)
        chunks.append(info)
    return chunks


def _feed_noisy_completions(scheduler, chunks, *, ratio_cycle, now=100.0):
    """Report completions whose actual/predicted ratios cycle over values."""
    for k, chunk in enumerate(chunks):
        predicted = 10.0
        actual = predicted * ratio_cycle[k % len(ratio_cycle)]
        scheduler.notify_completion(chunk, now + k, predicted, actual)


class TestSwitchInTime:
    def test_early_evidence_triggers_switch(self):
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        # dispatch only the first round, leaving later rounds reclaimable
        first_round = _pop_chunks(scheduler, 4, workers)
        # strong, unmistakable uncertainty (CoV ~ 0.3 within workers):
        # several completions per worker
        evidence = first_round * 6
        _feed_noisy_completions(scheduler, evidence, ratio_cycle=(0.7, 1.3, 1.0))
        assert scheduler._switched is True
        assert scheduler._phase2_load > 0
        # the reclaimed load now comes back as factoring dispatches
        req = None
        while True:
            req = scheduler.next_dispatch(200.0, workers)
            if req is None or req.phase == "rumr-factoring":
                break
            scheduler.notify_dispatched(
                ChunkInfo(99, req.worker_index, req.units, req.round_index,
                          req.phase)
            )
        assert req is not None and req.phase == "rumr-factoring"


class TestSwitchTooLate:
    def test_evidence_after_final_round_started_is_too_late(self):
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        # dispatch the ENTIRE UMR queue: every round has started
        all_chunks = []
        while scheduler._umr_queue:
            all_chunks.extend(_pop_chunks(scheduler, 1, workers))
        _feed_noisy_completions(scheduler, all_chunks * 3, ratio_cycle=(0.7, 1.3, 1.0))
        assert scheduler._switched is False
        assert scheduler._switch_too_late is True
        ann = scheduler.annotations()
        assert ann["rumr_switch_too_late"] is True
        assert ann["rumr_undispatched_at_detection"] == pytest.approx(0.0)

    def test_partial_final_round_cannot_be_reclaimed(self):
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        queue_len = len(scheduler._umr_queue)
        # dispatch all but the last two chunks -- the final round is started
        dispatched = _pop_chunks(scheduler, queue_len - 2, workers)
        last_round = scheduler._umr_queue[0].round_index
        assert last_round in scheduler._rounds_started
        _feed_noisy_completions(scheduler, dispatched * 3, ratio_cycle=(0.7, 1.3, 1.0))
        # remaining chunks belong to a started round: nothing reclaimable
        assert scheduler._switched is False
        assert scheduler._switch_too_late is True


class TestNoFalsePositives:
    def test_constant_residuals_never_trigger(self):
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        chunks = _pop_chunks(scheduler, 4, workers)
        _feed_noisy_completions(scheduler, chunks * 10, ratio_cycle=(1.0,))
        assert scheduler._switched is False
        assert scheduler._switch_too_late is False

    def test_per_worker_bias_alone_never_triggers(self):
        """Probe bias: each worker consistently 30% off, zero variance
        within workers -- must NOT look like uncertainty."""
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        chunks = _pop_chunks(scheduler, 4, workers)
        for repeat in range(10):
            for chunk in chunks:
                bias = (0.7, 1.3, 0.9, 1.1)[chunk.worker_index]
                scheduler.notify_completion(chunk, 100.0 + repeat, 10.0,
                                            10.0 * bias)
        assert scheduler._switched is False

    def test_mild_uncertainty_below_threshold_never_triggers(self):
        scheduler = RUMR()
        scheduler.configure(_config())
        workers = _states()
        chunks = _pop_chunks(scheduler, 4, workers)
        # CoV ~ 0.03: well below the 0.095 threshold
        _feed_noisy_completions(scheduler, chunks * 15, ratio_cycle=(0.97, 1.03, 1.0))
        assert scheduler._switched is False
