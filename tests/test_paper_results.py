"""The paper's headline experimental findings, asserted as tests.

These are compact (fewer seeds than the benches) sanity versions of the
Section 4 / Section 5 results; the full 10-run reproductions with
paper-vs-measured tables live in benchmarks/.  Each test names the claim
in the paper it checks.
"""

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.platform.presets import (
    PAPER_LOAD_UNITS,
    das2_cluster,
    grail_lan,
    meteor_cluster,
    mixed_grid,
)

ALGS = ("simple-1", "simple-5", "umr", "wf", "rumr", "fixed-rumr")
RUNS = 4


def _experiment(grid_factory, gamma, load=PAPER_LOAD_UNITS, ac=0.0, runs=RUNS):
    return run_experiment(
        ExperimentConfig(
            label="test",
            grid_factory=grid_factory,
            total_load=load,
            gamma=gamma,
            algorithms=ALGS,
            runs=runs,
            noise_autocorrelation=ac,
        )
    )


@pytest.fixture(scope="module")
def das2_g0():
    return _experiment(lambda: das2_cluster(16), 0.0)


@pytest.fixture(scope="module")
def das2_g10():
    return _experiment(lambda: das2_cluster(16), 0.10)


@pytest.fixture(scope="module")
def meteor_g0():
    return _experiment(lambda: meteor_cluster(16), 0.0)


@pytest.fixture(scope="module")
def meteor_g10():
    return _experiment(lambda: meteor_cluster(16), 0.10)


@pytest.fixture(scope="module")
def mixed_g10():
    return _experiment(mixed_grid, 0.10)


@pytest.fixture(scope="module")
def grail_g20():
    return _experiment(grail_lan, 0.20, load=1830.0, ac=0.6, runs=6)


class TestFigure2DAS2:
    def test_umr_and_rumr_best_at_gamma_zero(self, das2_g0):
        """'The RUMR and UMR algorithms lead to the best performance.'"""
        slow = das2_g0.slowdowns()
        assert slow["umr"] < 0.02
        assert slow["rumr"] == pytest.approx(slow["umr"], abs=0.01)

    def test_rumr_equals_umr_at_gamma_zero(self, das2_g0):
        """'RUMR degenerates to pure UMR' without uncertainty."""
        assert das2_g0.makespan("rumr") == pytest.approx(
            das2_g0.makespan("umr"), rel=1e-6
        )

    def test_simple1_much_slower(self, das2_g0):
        """Paper: SIMPLE-1 26% slower (we overshoot; see EXPERIMENTS.md)."""
        assert das2_g0.slowdowns()["simple-1"] > 0.20

    def test_simple5_moderately_slower(self, das2_g0):
        """Paper: SIMPLE-5 about 5% slower."""
        assert 0.02 < das2_g0.slowdowns()["simple-5"] < 0.15

    def test_factoring_slower_than_umr_at_gamma_zero(self, das2_g0):
        """Paper: Factoring ~10% slower, 'due to poor overlap'."""
        assert das2_g0.makespan("wf") > das2_g0.makespan("umr") * 1.03

    def test_wf_beats_umr_at_gamma_ten(self, das2_g10):
        """Paper: 'Weighted Factoring is about 8% faster than UMR.'"""
        assert das2_g10.makespan("wf") < das2_g10.makespan("umr") * 0.96

    def test_online_rumr_fails_to_switch_in_time(self, das2_g10):
        """Paper: 'when RUMR discovers that it should switch ... it is too
        late' -- so RUMR stays close to UMR, well above Fixed-RUMR."""
        assert das2_g10.makespan("rumr") > das2_g10.makespan("fixed-rumr") * 1.04
        switched = das2_g10.by_algorithm["rumr"].count_annotation("rumr_switched")
        assert switched <= RUNS // 2

    def test_fixed_rumr_best_at_gamma_ten(self, das2_g10):
        """Paper: 'the Fixed-RUMR algorithm does the best'."""
        assert das2_g10.best_algorithm == "fixed-rumr"


class TestFigure3Meteor:
    def test_all_sophisticated_algorithms_comparable_at_gamma_zero(self, meteor_g0):
        """Paper: low start-up costs -> 'the UMR approach does not lead to
        any advantage'; everything except SIMPLE-n is within a few %."""
        slow = meteor_g0.slowdowns()
        for name in ("umr", "wf", "rumr", "fixed-rumr"):
            assert slow[name] < 0.10

    def test_simple_n_clearly_slower_at_gamma_zero(self, meteor_g0):
        """Paper: SIMPLE-1 +21%, SIMPLE-5 +24%."""
        slow = meteor_g0.slowdowns()
        assert slow["simple-1"] > 0.12
        assert slow["simple-5"] > 0.08

    def test_wf_wins_at_gamma_ten(self, meteor_g10):
        """Paper: 'clearly the Weighted Factoring approach is the best'
        (Fixed-RUMR ties it; everything else trails clearly)."""
        slow = meteor_g10.slowdowns()
        assert slow["wf"] < 0.05
        assert slow["wf"] < slow["umr"] - 0.08

    def test_umr_and_rumr_suffer_at_gamma_ten(self, meteor_g10):
        """Paper: UMR +20%, RUMR +23% on Meteor at gamma = 10%."""
        slow = meteor_g10.slowdowns()
        assert slow["umr"] > 0.10
        assert slow["rumr"] > 0.08

    def test_fixed_rumr_matches_wf_at_gamma_ten(self, meteor_g10):
        """Paper: 'Fixed-RUMR leads to roughly the same performance as
        Weighted Factoring.'"""
        assert meteor_g10.makespan("fixed-rumr") == pytest.approx(
            meteor_g10.makespan("wf"), rel=0.05
        )


class TestFigure4Mixed:
    def test_adaptive_algorithms_win_at_gamma_ten(self, mixed_g10):
        """Paper: 'Weighted Factoring and Fixed-RUMR lead to the best
        performance' on the two-cluster grid with uncertainty."""
        slow = mixed_g10.slowdowns()
        assert min(slow["wf"], slow["fixed-rumr"]) == 0.0
        assert max(slow["wf"], slow["fixed-rumr"]) < 0.06

    def test_simple_n_poor(self, mixed_g10):
        """Paper: SIMPLE-1 +28%, SIMPLE-5 +14%."""
        slow = mixed_g10.slowdowns()
        assert slow["simple-1"] > 0.20
        assert slow["simple-5"] > 0.07
        assert slow["simple-1"] > slow["simple-5"]


class TestSection5CaseStudy:
    def test_wf_and_rumr_lead(self, grail_g20):
        """Paper: 'Weighted Factoring leads to the best performance.
        Interestingly, RUMR's performance is roughly the same (within 2%).'"""
        slow = grail_g20.slowdowns()
        assert min(slow["wf"], slow["rumr"]) == 0.0
        assert abs(slow["wf"] - slow["rumr"]) < 0.05

    def test_rumr_switches_in_every_run(self, grail_g20):
        """Paper: 'the RUMR algorithm successfully switches to its second
        phase in every one of the ten runs.'"""
        rumr = grail_g20.by_algorithm["rumr"]
        assert rumr.count_annotation("rumr_switched") == len(rumr.annotations)

    def test_umr_and_fixed_rumr_trail(self, grail_g20):
        """Paper: UMR and Fixed-RUMR ~7% slower, 'as they do not account
        for uncertainty sufficiently'."""
        slow = grail_g20.slowdowns()
        assert slow["fixed-rumr"] > 0.02
        assert slow["umr"] > 0.05

    def test_simple_n_far_behind(self, grail_g20):
        """Paper: SIMPLE-5 +38%, SIMPLE-1 +52%."""
        slow = grail_g20.slowdowns()
        assert slow["simple-1"] > 0.35
        assert slow["simple-5"] > 0.30


class TestSection43Averages:
    def test_simple_n_always_inefficient_on_average(
        self, das2_g0, das2_g10, meteor_g0, meteor_g10, mixed_g10
    ):
        """Paper conclusion 1: 'on average SIMPLE-1 and SIMPLE-5 are 28%
        and 18% slower than the best algorithm'."""
        from repro.analysis.metrics import mean_slowdown_across

        scenarios = [
            r.slowdowns()
            for r in (das2_g0, das2_g10, meteor_g0, meteor_g10, mixed_g10)
        ]
        means = mean_slowdown_across(scenarios)
        assert means["simple-1"] > 0.18
        assert means["simple-5"] > 0.08
        assert means["simple-1"] > means["simple-5"]

    def test_umr_poor_under_uncertainty_on_average(
        self, das2_g10, meteor_g10, mixed_g10
    ):
        """Paper conclusion 2: UMR 'on average 17% slower than the best
        algorithm' when uncertainty is significant."""
        from repro.analysis.metrics import mean_slowdown_across

        means = mean_slowdown_across(
            [r.slowdowns() for r in (das2_g10, meteor_g10, mixed_g10)]
        )
        assert means["umr"] > 0.10
