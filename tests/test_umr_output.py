"""Tests for output-transfer-aware UMR."""

import pytest

from repro.core.registry import make_scheduler
from repro.core.umr import UMR
from repro.core.umr_output import OutputAwareUMR, output_transformed_estimates
from repro.errors import SchedulingError
from repro.platform.resources import WorkerSpec
from repro.simulation.master import SimulationOptions, simulate_run


def _workers(n=4):
    return [
        WorkerSpec(f"w{i}", speed=1.0, bandwidth=10.0, comm_latency=0.5,
                   comp_latency=0.2)
        for i in range(n)
    ]


class TestTransform:
    def test_zero_factor_is_identity(self):
        workers = _workers()
        assert output_transformed_estimates(workers, 0.0) == workers

    def test_bandwidth_shrinks_and_latency_doubles(self):
        transformed = output_transformed_estimates(_workers(), 0.5)
        assert transformed[0].bandwidth == pytest.approx(10.0 / 1.5)
        assert transformed[0].comm_latency == pytest.approx(1.0)
        # compute side untouched
        assert transformed[0].speed == 1.0
        assert transformed[0].comp_latency == 0.2

    def test_negative_factor_rejected(self):
        with pytest.raises(SchedulingError):
            output_transformed_estimates(_workers(), -0.1)
        with pytest.raises(SchedulingError):
            OutputAwareUMR(-1.0)


class TestScheduling:
    def test_load_conserved(self, small_grid):
        options = SimulationOptions(output_factor=0.3)
        report = simulate_run(small_grid, OutputAwareUMR(0.3), total_load=2000.0,
                              seed=0, options=options)
        assert sum(c.units for c in report.chunks) == pytest.approx(2000.0)

    def test_fewer_or_smaller_early_rounds_than_stock_umr(self):
        """Budgeting link time for outputs leaves less for input dispatch,
        so the output-aware plan's growth is gentler (higher rho)."""
        workers = _workers()
        from repro.core.base import SchedulerConfig

        stock = UMR()
        stock.configure(SchedulerConfig(estimates=workers, total_load=2000.0))
        aware = OutputAwareUMR(0.5)
        aware.configure(SchedulerConfig(estimates=workers, total_load=2000.0))
        assert aware.plan.stats.growth_ratio < stock.plan.stats.growth_ratio

    def test_beats_stock_umr_when_outputs_are_heavy(self, small_grid):
        """With heavy output transfers on the shared link, the plan that
        budgets for them wins."""
        options = SimulationOptions(output_factor=0.8)
        aware = simulate_run(small_grid, OutputAwareUMR(0.8), total_load=2000.0,
                             seed=0, options=options)
        stock = simulate_run(small_grid, UMR(), total_load=2000.0, seed=0,
                             options=options)
        assert aware.makespan < stock.makespan

    def test_equivalent_to_umr_without_outputs(self, small_grid):
        aware = simulate_run(small_grid, OutputAwareUMR(0.0), total_load=2000.0,
                             seed=0)
        stock = simulate_run(small_grid, UMR(), total_load=2000.0, seed=0)
        assert aware.makespan == pytest.approx(stock.makespan, rel=1e-9)

    def test_annotation_carries_factor(self, small_grid):
        report = simulate_run(small_grid, OutputAwareUMR(0.25), total_load=2000.0,
                              seed=0,
                              options=SimulationOptions(output_factor=0.25))
        assert report.annotations["umr_output_factor"] == 0.25
        assert report.algorithm == "umr-out"

    def test_registry_entry(self):
        assert make_scheduler("umr-out").name == "umr-out"
