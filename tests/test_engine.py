"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = SimulationEngine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule(1.0, fired.append, tag)
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = SimulationEngine()
        engine.schedule(2.5, lambda: None)
        engine.run()
        assert engine.now == 2.5

    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError, match="past"):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_before_now_rejected(self):
        engine = SimulationEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="before current time"):
            engine.schedule_at(5.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        engine = SimulationEngine()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(1.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = SimulationEngine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancelling_one_event_leaves_others(self):
        engine = SimulationEngine()
        fired = []
        keep = engine.schedule(1.0, fired.append, "keep")
        drop = engine.schedule(2.0, fired.append, "drop")
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert keep.time == 1.0


class TestRunBounds:
    def test_run_until_leaves_future_events_queued(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(10.0, fired.append, "late")
        engine.run(until=5.0)
        assert fired == ["early"]
        assert engine.now == 5.0
        assert engine.pending_events == 1
        engine.run()
        assert fired == ["early", "late"]

    def test_max_events_guards_livelock(self):
        engine = SimulationEngine()

        def forever():
            engine.schedule(1.0, forever)

        engine.schedule(1.0, forever)
        with pytest.raises(SimulationError, match="livelock"):
            engine.run(max_events=100)

    def test_run_is_not_reentrant(self):
        engine = SimulationEngine()
        errors = []

        def nested():
            try:
                engine.run()
            except SimulationError as exc:
                errors.append(str(exc))

        engine.schedule(1.0, nested)
        engine.run()
        assert errors and "reentrant" in errors[0]

    def test_step_returns_false_when_drained(self):
        engine = SimulationEngine()
        assert engine.step() is False
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False

    def test_processed_events_counter(self):
        engine = SimulationEngine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed_events == 5
