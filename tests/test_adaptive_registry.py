"""Tests for Adaptive UMR and the algorithm registry."""

import pytest

from repro.core.adaptive import AdaptiveUMR
from repro.core.registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    make_scheduler,
    register_algorithm,
)
from repro.core.simple import SimpleN
from repro.errors import SchedulingError
from repro.simulation.master import SimulationOptions, simulate_run


class TestAdaptiveUMR:
    def test_load_conserved(self, small_grid):
        report = simulate_run(small_grid, AdaptiveUMR(), total_load=2000.0, seed=0)
        assert sum(c.units for c in report.chunks) == pytest.approx(2000.0)

    def test_replans_under_uncertainty(self, small_grid):
        report = simulate_run(
            small_grid, AdaptiveUMR(), total_load=2000.0, gamma=0.15, seed=4
        )
        assert report.annotations["adaptive_umr_replans"] >= 1

    def test_matches_umr_with_perfect_estimates_and_no_noise(self, small_grid):
        from repro.core.umr import UMR

        options = SimulationOptions(perfect_estimates=True)
        a = simulate_run(small_grid, AdaptiveUMR(), total_load=2000.0, seed=0,
                         options=options)
        u = simulate_run(small_grid, UMR(), total_load=2000.0, seed=0,
                         options=options)
        # with exact information, adaptation changes nothing material
        assert a.makespan == pytest.approx(u.makespan, rel=0.02)

    def test_helps_against_probe_error(self):
        """The paper's future-work motivation: refresh the platform view.
        With strong probe error (high gamma), adaptive re-planning should
        not be significantly worse than stock UMR, and usually better."""
        from repro.core.umr import UMR
        from repro.platform.presets import das2_cluster

        grid = das2_cluster(nodes=8)
        adaptive_wins = 0
        for seed in range(6):
            a = simulate_run(grid, AdaptiveUMR(), total_load=5000.0, gamma=0.2,
                             seed=seed)
            u = simulate_run(grid, UMR(), total_load=5000.0, gamma=0.2, seed=seed)
            if a.makespan <= u.makespan * 1.01:
                adaptive_wins += 1
        assert adaptive_wins >= 4


class TestRegistry:
    def test_paper_algorithms_all_resolve(self):
        for name in PAPER_ALGORITHMS:
            assert make_scheduler(name).name == name

    def test_parameterized_simple(self):
        s = make_scheduler("simple-7")
        assert isinstance(s, SimpleN)
        assert s.chunks_per_worker == 7

    def test_parameterized_multiinstallment(self):
        s = make_scheduler("multiinstallment-3")
        assert s.name == "multiinstallment-3"

    def test_case_and_whitespace_insensitive(self):
        assert make_scheduler("  UMR ").name == "umr"

    def test_unknown_name_lists_options(self):
        with pytest.raises(SchedulingError, match="available"):
            make_scheduler("quantum-annealing")

    def test_bad_parameter(self):
        with pytest.raises(SchedulingError):
            make_scheduler("simple-zero")
        with pytest.raises(SchedulingError):
            make_scheduler("simple-0")

    def test_available_algorithms_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)
        assert "umr" in names and "rumr" in names

    def test_register_custom_and_reject_duplicates(self):
        register_algorithm("test-custom-alg", lambda: SimpleN(2))
        assert make_scheduler("test-custom-alg").chunks_per_worker == 2
        with pytest.raises(SchedulingError, match="already registered"):
            register_algorithm("umr", lambda: SimpleN(1))

    def test_each_call_returns_fresh_instance(self):
        a = make_scheduler("umr")
        b = make_scheduler("umr")
        assert a is not b
