"""Tests for the toy DV/MP4 video toolchain (case-study substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.workloads.video import (
    avimerge,
    avisplit,
    dv_frame_stride,
    make_avisplit_callback,
    mencoder_encode,
    read_dv_frames,
    read_dv_header,
    read_mp4_frames,
    write_dv_file,
)


@pytest.fixture
def video(tmp_path):
    path = tmp_path / "movie.tdv"
    write_dv_file(path, frames=30, frame_bytes=256, seed=5)
    return path


class TestContainer:
    def test_header_round_trip(self, video):
        assert read_dv_header(video) == (30, 256)

    def test_frames_are_indexed_in_order(self, video):
        frames = read_dv_frames(video)
        assert [i for i, _ in frames] == list(range(30))
        assert all(len(p) == 256 for _, p in frames)

    def test_deterministic_content(self, tmp_path):
        a = tmp_path / "a.tdv"
        b = tmp_path / "b.tdv"
        write_dv_file(a, frames=10, frame_bytes=128, seed=9)
        write_dv_file(b, frames=10, frame_bytes=128, seed=9)
        assert a.read_bytes() == b.read_bytes()

    def test_file_size_matches_stride(self, video):
        expected = 12 + 30 * dv_frame_stride(256)
        assert video.stat().st_size == expected

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ReproError):
            write_dv_file(tmp_path / "x.tdv", frames=0)
        with pytest.raises(ReproError):
            write_dv_file(tmp_path / "x.tdv", frames=1, frame_bytes=0)

    def test_non_video_file_rejected(self, tmp_path):
        junk = tmp_path / "junk.tdv"
        junk.write_bytes(b"not a video at all")
        with pytest.raises(ReproError, match="not a TDV"):
            read_dv_header(junk)


class TestAvisplit:
    def test_extracts_requested_range(self, video, tmp_path):
        out = tmp_path / "part.tdv"
        avisplit(video, 10, 5, out)
        frames = read_dv_frames(out)
        assert [i for i, _ in frames] == [10, 11, 12, 13, 14]

    def test_payloads_preserved(self, video, tmp_path):
        original = dict(read_dv_frames(video))
        out = tmp_path / "part.tdv"
        avisplit(video, 3, 4, out)
        for index, payload in read_dv_frames(out):
            assert payload == original[index]

    def test_out_of_range_rejected(self, video, tmp_path):
        with pytest.raises(ReproError, match="outside"):
            avisplit(video, 28, 5, tmp_path / "x.tdv")
        with pytest.raises(ReproError):
            avisplit(video, -1, 2, tmp_path / "x.tdv")
        with pytest.raises(ReproError):
            avisplit(video, 0, 0, tmp_path / "x.tdv")


class TestEncodeMerge:
    def test_encode_preserves_frames(self, video, tmp_path):
        encoded = tmp_path / "full.tm4v"
        mencoder_encode(video, encoded)
        assert read_mp4_frames(encoded) == read_dv_frames(video)

    def test_encoded_file_is_smaller(self, video, tmp_path):
        encoded = tmp_path / "full.tm4v"
        mencoder_encode(video, encoded)
        assert encoded.stat().st_size < video.stat().st_size

    def test_split_encode_merge_equals_serial_encode(self, video, tmp_path):
        serial = tmp_path / "serial.tm4v"
        mencoder_encode(video, serial)
        parts = []
        for k, (start, count) in enumerate([(0, 12), (12, 10), (22, 8)]):
            raw = tmp_path / f"p{k}.tdv"
            avisplit(video, start, count, raw)
            enc = tmp_path / f"p{k}.tm4v"
            mencoder_encode(raw, enc)
            parts.append(enc)
        merged = tmp_path / "merged.tm4v"
        avimerge(parts, merged)
        assert merged.read_bytes() == serial.read_bytes()

    def test_merge_accepts_any_part_order(self, video, tmp_path):
        parts = []
        for k, (start, count) in enumerate([(0, 10), (10, 10), (20, 10)]):
            raw = tmp_path / f"p{k}.tdv"
            avisplit(video, start, count, raw)
            enc = tmp_path / f"p{k}.tm4v"
            mencoder_encode(raw, enc)
            parts.append(enc)
        merged = tmp_path / "merged.tm4v"
        avimerge(list(reversed(parts)), merged)
        serial = tmp_path / "serial.tm4v"
        mencoder_encode(video, serial)
        assert merged.read_bytes() == serial.read_bytes()

    def test_merge_rejects_gaps(self, video, tmp_path):
        a = tmp_path / "a.tdv"
        avisplit(video, 0, 10, a)
        ea = tmp_path / "a.tm4v"
        mencoder_encode(a, ea)
        b = tmp_path / "b.tdv"
        avisplit(video, 15, 10, b)  # gap: frames 10-14 missing
        eb = tmp_path / "b.tm4v"
        mencoder_encode(b, eb)
        with pytest.raises(ReproError, match="contiguous"):
            avimerge([ea, eb], tmp_path / "m.tm4v")

    def test_merge_rejects_empty(self, tmp_path):
        with pytest.raises(ReproError):
            avimerge([], tmp_path / "m.tm4v")

    @given(cuts=st.lists(st.integers(min_value=1, max_value=29), unique=True,
                         max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_any_partition_merges_identically(self, tmp_path_factory, cuts):
        """Property: divisibility at frame boundaries -- ANY partition of the
        frame range yields a byte-identical merged encoding."""
        tmp = tmp_path_factory.mktemp("parts")
        video = tmp / "movie.tdv"
        write_dv_file(video, frames=30, frame_bytes=256, seed=5)
        bounds = [0, *sorted(cuts), 30]
        parts = []
        for k, (start, end) in enumerate(zip(bounds, bounds[1:])):
            if end <= start:
                continue
            raw = tmp / f"p{k}.tdv"
            avisplit(video, start, end - start, raw)
            enc = tmp / f"p{k}.tm4v"
            mencoder_encode(raw, enc)
            parts.append(enc)
        merged = tmp / "merged.tm4v"
        avimerge(parts, merged)
        serial = tmp / "serial.tm4v"
        mencoder_encode(video, serial)
        assert merged.read_bytes() == serial.read_bytes()


class TestCallback:
    def test_in_process_callback(self, video, tmp_path):
        callback = make_avisplit_callback(video)
        out = tmp_path / "chunk.tdv"
        callback(5, 3, out)
        assert [i for i, _ in read_dv_frames(out)] == [5, 6, 7]

    def test_external_program_matches_in_process(self, video, tmp_path):
        import subprocess
        import sys

        out = tmp_path / "ext.tdv"
        result = subprocess.run(
            [sys.executable, "-m", "repro.workloads.video_callback",
             str(video), "5", "3", str(out)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        ref = tmp_path / "ref.tdv"
        make_avisplit_callback(video)(5, 3, ref)
        assert out.read_bytes() == ref.read_bytes()

    def test_external_program_reports_errors(self, video, tmp_path):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.workloads.video_callback",
             str(video), "25", "20", str(tmp_path / "x.tdv")],
            capture_output=True, text=True,
        )
        assert result.returncode == 1
        assert "avisplit failed" in result.stderr

    def test_external_program_usage_error(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.workloads.video_callback"],
            capture_output=True, text=True,
        )
        assert result.returncode == 2
