"""Lock-order watcher tests.

Every cycle test uses a *local* LockOrderWatcher, never the process
global: the autouse fixture in conftest.py asserts the global watcher
stays cycle-free, and a seeded A->B/B->A cycle there would fail the
very test that planted it.
"""

import threading

import pytest

from repro.analysis import lockwatch
from repro.analysis.lockwatch import (
    ENV_FLAG,
    LockOrderError,
    LockOrderWatcher,
    WatchedLock,
)


def make_lock(name, watcher):
    return WatchedLock(name, threading.Lock(), watcher)


def make_rlock(name, watcher):
    return WatchedLock(name, threading.RLock(), watcher)


def test_single_lock_records_no_edges():
    watcher = LockOrderWatcher()
    lock = make_lock("a", watcher)
    with lock:
        pass
    assert watcher.edges() == []
    assert watcher.cycles() == []


def test_nested_acquisition_records_edge():
    watcher = LockOrderWatcher()
    a, b = make_lock("a", watcher), make_lock("b", watcher)
    with a:
        with b:
            pass
    (edge,) = watcher.edges()
    assert (edge.before, edge.after) == ("a", "b")
    assert edge.thread == threading.current_thread().name
    assert edge.where  # acquisition site captured
    assert watcher.cycles() == []


def test_opposite_orders_form_cycle():
    watcher = LockOrderWatcher()
    a, b = make_lock("a", watcher), make_lock("b", watcher)
    with a:
        with b:
            pass
    with b:  # the reverse interleaving, even without contention
        with a:
            pass
    (cycle,) = watcher.cycles()
    assert set(cycle) == {"a", "b"}
    with pytest.raises(LockOrderError) as excinfo:
        watcher.assert_no_cycles()
    report = str(excinfo.value)
    assert "a" in report and "b" in report
    assert "held while acquiring" in report


def test_cycle_detected_across_threads():
    # Sequential acquisition in two threads: no deadlock happens, but
    # the A->B / B->A ordering hazard is still recorded and flagged.
    watcher = LockOrderWatcher()
    a, b = make_lock("a", watcher), make_lock("b", watcher)

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    for target in (forward, backward):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
    assert len(watcher.cycles()) == 1


def test_consistent_order_is_clean():
    watcher = LockOrderWatcher()
    a, b, c = (make_lock(n, watcher) for n in "abc")
    for _ in range(3):
        with a:
            with b:
                with c:
                    pass
    assert watcher.cycles() == []
    watcher.assert_no_cycles()


def test_three_lock_cycle():
    watcher = LockOrderWatcher()
    a, b, c = (make_lock(n, watcher) for n in "abc")
    for first, second in ((a, b), (b, c), (c, a)):
        with first:
            with second:
                pass
    (cycle,) = watcher.cycles()
    assert set(cycle) == {"a", "b", "c"}


def test_rlock_reentrancy_records_no_self_edge():
    watcher = LockOrderWatcher()
    lock = make_rlock("r", watcher)
    with lock:
        with lock:
            pass
    assert watcher.edges() == []


def test_failed_nonblocking_acquire_records_nothing():
    watcher = LockOrderWatcher()
    inner = threading.Lock()
    inner.acquire()  # someone else holds it
    lock = WatchedLock("busy", inner, watcher)
    holder = make_lock("holder", watcher)
    with holder:
        assert lock.acquire(blocking=False) is False
    inner.release()
    assert watcher.edges() == []


def test_reset_clears_edges():
    watcher = LockOrderWatcher()
    a, b = make_lock("a", watcher), make_lock("b", watcher)
    with a, b:
        pass
    assert watcher.edges()
    watcher.reset()
    assert watcher.edges() == []
    assert watcher.cycles() == []


def test_locked_and_repr():
    watcher = LockOrderWatcher()
    lock = make_lock("a", watcher)
    assert lock.locked() is False
    with lock:
        assert lock.locked() is True
    assert "WatchedLock('a'" in repr(lock)


def test_create_lock_plain_when_disabled(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert not lockwatch.enabled()
    lock = lockwatch.create_lock("plain")
    assert not isinstance(lock, WatchedLock)
    rlock = lockwatch.create_rlock("plain")
    assert not isinstance(rlock, WatchedLock)


def test_create_lock_watched_when_enabled(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    assert lockwatch.enabled()
    lock = lockwatch.create_lock("armed")
    assert isinstance(lock, WatchedLock)
    assert lockwatch.create_lock("armed2")._watcher is lock._watcher


def test_env_flag_zero_means_disabled(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "0")
    assert not lockwatch.enabled()


def test_format_cycles_empty_when_clean():
    watcher = LockOrderWatcher()
    assert watcher.format_cycles() == ""
    watcher.assert_no_cycles()  # must not raise
