"""Seam-coverage tests for paths the main suites touch only implicitly."""

import pytest

from repro.analysis.experiments import ExperimentConfig, run_experiment
from repro.analysis.metrics import summarize
from repro.errors import PlatformError
from repro.platform.resources import Cluster, Grid, WorkerSpec
from repro.simulation.compute import ComputeModel, UncertaintyModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.master import SimulationOptions, simulate_run
from repro.simulation.network import SerializedLink


class TestLinkWithTransferNoise:
    def test_transfer_durations_vary_with_comm_gamma(self):
        engine = SimulationEngine()
        workers = [WorkerSpec("w", speed=1.0, bandwidth=10.0, comm_latency=0.5)]
        model = ComputeModel(workers, UncertaintyModel(gamma=0.0, comm_gamma=0.2),
                             seed=3)
        link = SerializedLink(engine, model)
        for _ in range(30):
            link.submit(0, 10.0, lambda rec: None)
        engine.run()
        durations = [r.duration for r in link.records]
        assert max(durations) > min(durations)
        # latency itself stays deterministic: duration >= nLat
        assert min(durations) >= 0.5

    def test_mean_transfer_time_unbiased(self):
        engine = SimulationEngine()
        workers = [WorkerSpec("w", speed=1.0, bandwidth=10.0)]
        model = ComputeModel(workers, UncertaintyModel(comm_gamma=0.15), seed=1)
        link = SerializedLink(engine, model)
        for _ in range(500):
            link.submit(0, 10.0, lambda rec: None)
        engine.run()
        mean = sum(r.duration for r in link.records) / 500
        assert mean == pytest.approx(1.0, rel=0.05)


class TestEngineResumption:
    def test_scheduling_continues_after_run_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.run(until=0.5)
        assert fired == []
        engine.schedule(1.0, fired.append, "b")  # at t=1.5
        engine.run()
        assert fired == ["a", "b"]
        assert engine.now == 1.5

    def test_run_until_with_cancelled_head(self):
        engine = SimulationEngine()
        fired = []
        head = engine.schedule(1.0, fired.append, "dead")
        engine.schedule(2.0, fired.append, "alive")
        head.cancel()
        engine.run(until=10.0)
        assert fired == ["alive"]
        assert engine.now == 10.0


class TestWorkerSpecScaled:
    def test_invalid_factors_rejected(self):
        w = WorkerSpec("w", speed=1.0, bandwidth=1.0)
        with pytest.raises(PlatformError):
            w.scaled(speed_factor=0.0)
        with pytest.raises(PlatformError):
            w.scaled(bandwidth_factor=-1.0)


class TestExperimentOptionsPassthrough:
    def test_simulation_options_flow_into_runs(self):
        grid_factory = lambda: Grid.from_clusters(  # noqa: E731
            Cluster.homogeneous("t", 2, speed=1.0, bandwidth=10.0,
                                comm_latency=0.2, comp_latency=0.1)
        )
        with_probe = run_experiment(ExperimentConfig(
            label="p", grid_factory=grid_factory, total_load=200.0,
            algorithms=("umr",), runs=1,
            options=SimulationOptions(include_probe_time=True),
        ))
        without = run_experiment(ExperimentConfig(
            label="np", grid_factory=grid_factory, total_load=200.0,
            algorithms=("umr",), runs=1,
        ))
        assert with_probe.makespan("umr") > without.makespan("umr")


class TestStatsDetails:
    def test_confidence_halfwidth_shrinks_with_runs(self):
        few = summarize("a", [10.0, 12.0])
        many = summarize("a", [10.0, 12.0] * 8)
        assert many.confidence_halfwidth() < few.confidence_halfwidth()


class TestReportRenderingDetails:
    def test_render_includes_rumr_annotations_and_chunk_rows(self, small_grid):
        from repro.core.rumr import RUMR

        report = simulate_run(small_grid, RUMR(), total_load=500.0,
                              gamma=0.2, seed=4)
        text = report.render(max_chunks=3)
        assert "rumr_mode" in text
        assert "--- chunks ---" in text
        assert text.count("#") >= 3  # three chunk rows
