"""Unit tests for the worker-lease arbiter (no simulation involved)."""

import pytest

from repro.errors import ServiceError
from repro.service import LeaseRequest, WorkerLeaseArbiter


def req(job_id, remaining=100.0, weight=1.0, max_workers=None):
    return LeaseRequest(
        job_id=job_id, remaining=remaining, weight=weight, max_workers=max_workers
    )


class TestLeaseRequest:
    def test_zero_worker_lease_request_rejected(self):
        with pytest.raises(ServiceError, match="zero-worker lease"):
            LeaseRequest(job_id=1, remaining=10.0, max_workers=0)

    def test_no_remaining_load_rejected(self):
        with pytest.raises(ServiceError, match="no remaining load"):
            LeaseRequest(job_id=1, remaining=0.0)

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ServiceError, match="weight must be positive"):
            LeaseRequest(job_id=1, remaining=10.0, weight=0.0)


class TestConstruction:
    def test_zero_workers_rejected(self):
        with pytest.raises(ServiceError, match="at least one"):
            WorkerLeaseArbiter(0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ServiceError, match="unknown lease policy"):
            WorkerLeaseArbiter(4, "round-robin")

    def test_bad_slots_rejected(self):
        with pytest.raises(ServiceError, match="slots"):
            WorkerLeaseArbiter(4, "static", slots=9)


class TestFifo:
    def test_first_queued_job_leases_everything(self):
        arb = WorkerLeaseArbiter(6, "fifo")
        leases = arb.assign([], [req(1), req(2)])
        assert leases == {1: (0, 1, 2, 3, 4, 5)}

    def test_running_job_is_exclusive(self):
        arb = WorkerLeaseArbiter(4, "fifo")
        arb.assign([], [req(1)])
        leases = arb.assign([req(1, remaining=50.0)], [req(2)])
        assert leases == {1: (0, 1, 2, 3)}

    def test_two_running_jobs_is_an_error(self):
        arb = WorkerLeaseArbiter(4, "fifo")
        arb.assign([], [req(1)])
        arb._leases[2] = (0,)  # corrupt state on purpose
        with pytest.raises(ServiceError, match="fifo"):
            arb.assign([req(1), req(2)], [])


class TestStatic:
    def test_blocks_partition_the_grid(self):
        arb = WorkerLeaseArbiter(10, "static", slots=4)
        leases = arb.assign([], [req(i) for i in range(1, 5)])
        workers = sorted(w for lease in leases.values() for w in lease)
        assert workers == list(range(10))
        assert {len(lease) for lease in leases.values()} == {2, 3}

    def test_excess_jobs_wait_for_a_slot(self):
        arb = WorkerLeaseArbiter(8, "static", slots=2)
        leases = arb.assign([], [req(1), req(2), req(3)])
        assert set(leases) == {1, 2}

    def test_running_job_keeps_its_slot(self):
        arb = WorkerLeaseArbiter(8, "static", slots=2)
        first = arb.assign([], [req(1), req(2)])
        second = arb.assign([req(1), req(2)], [])
        assert first == second

    def test_released_slot_is_reused(self):
        arb = WorkerLeaseArbiter(8, "static", slots=2)
        first = arb.assign([], [req(1), req(2), req(3)])
        arb.release(1)
        second = arb.assign([req(2)], [req(3)])
        assert second[3] == first[1]  # job 3 takes job 1's freed slot
        assert second[2] == first[2]


class TestFairShare:
    def test_equal_jobs_split_evenly(self):
        arb = WorkerLeaseArbiter(8, "fair-share")
        leases = arb.assign([], [req(1), req(2)])
        assert len(leases[1]) == len(leases[2]) == 4
        assert set(leases[1]) | set(leases[2]) == set(range(8))
        assert set(leases[1]) & set(leases[2]) == set()

    def test_share_proportional_to_weight_times_remaining(self):
        arb = WorkerLeaseArbiter(12, "fair-share")
        leases = arb.assign([], [req(1, remaining=300.0), req(2, remaining=100.0)])
        assert len(leases[1]) == 9 and len(leases[2]) == 3

    def test_weights_need_not_sum_to_one(self):
        """Only weight ratios matter: (0.6, 0.2, 0.2) == (3, 1, 1)."""
        arb1 = WorkerLeaseArbiter(10, "fair-share")
        arb2 = WorkerLeaseArbiter(10, "fair-share")
        small = arb1.assign(
            [], [req(1, weight=0.6), req(2, weight=0.2), req(3, weight=0.2)]
        )
        large = arb2.assign(
            [], [req(1, weight=3.0), req(2, weight=1.0), req(3, weight=1.0)]
        )
        assert small == large
        # min-1 reservation + largest remainder over the rest: (5, 3, 2)
        assert [len(small[i]) for i in (1, 2, 3)] == [5, 3, 2]

    def test_every_active_job_gets_at_least_one_worker(self):
        arb = WorkerLeaseArbiter(4, "fair-share")
        leases = arb.assign([], [req(1, remaining=1e9), req(2, remaining=1.0)])
        assert len(leases[2]) >= 1

    def test_more_jobs_than_workers_queues_the_tail(self):
        arb = WorkerLeaseArbiter(2, "fair-share")
        leases = arb.assign([], [req(i) for i in range(1, 5)])
        assert set(leases) == {1, 2}

    def test_max_workers_cap_is_honoured(self):
        arb = WorkerLeaseArbiter(8, "fair-share")
        leases = arb.assign([], [req(1, max_workers=2), req(2)])
        assert len(leases[1]) == 2 and len(leases[2]) == 6

    def test_sticky_leases_on_reassignment(self):
        arb = WorkerLeaseArbiter(8, "fair-share")
        first = arb.assign([], [req(1), req(2)])
        second = arb.assign([req(1, remaining=100.0), req(2, remaining=100.0)], [])
        assert first == second  # same shares -> no churn at all

    def test_released_workers_flow_to_survivors(self):
        arb = WorkerLeaseArbiter(8, "fair-share")
        first = arb.assign([], [req(1), req(2)])
        arb.release(2)
        second = arb.assign([req(1, remaining=50.0)], [])
        assert set(second[1]) == set(range(8))
        assert set(first[1]) <= set(second[1])  # kept its old workers

    def test_duplicate_ids_rejected(self):
        arb = WorkerLeaseArbiter(4, "fair-share")
        with pytest.raises(ServiceError, match="duplicate"):
            arb.assign([], [req(1), req(1)])

    def test_running_without_lease_rejected(self):
        arb = WorkerLeaseArbiter(4, "fair-share")
        with pytest.raises(ServiceError, match="holds no lease"):
            arb.assign([req(1)], [])
