"""Tests for chunk traces and the execution report."""

import math

import pytest

from repro.errors import SimulationError
from repro.simulation.trace import ChunkTrace, ExecutionReport


def _chunk(cid=0, worker=0, units=10.0, send=(0.0, 1.0), comp=(1.0, 3.0),
           predicted=2.0, phase="umr", round_index=0):
    return ChunkTrace(
        chunk_id=cid,
        worker_index=worker,
        worker_name=f"w{worker}",
        units=units,
        offset=0.0,
        round_index=round_index,
        phase=phase,
        send_start=send[0],
        send_end=send[1],
        compute_start=comp[0],
        compute_end=comp[1],
        predicted_compute=predicted,
    )


def _report(chunks, total=None, makespan=10.0):
    if total is None:
        total = sum(c.units for c in chunks)
    return ExecutionReport(
        algorithm="test",
        total_load=total,
        makespan=makespan,
        probe_time=0.0,
        chunks=chunks,
        link_busy_time=1.0,
        gamma_configured=0.0,
    )


class TestChunkTrace:
    def test_derived_times(self):
        c = _chunk(send=(0.0, 2.0), comp=(3.0, 7.0))
        assert c.transfer_time == 2.0
        assert c.queue_time == 1.0
        assert c.compute_time == 4.0
        assert c.completed

    def test_causality_violation_detected(self):
        c = _chunk(send=(0.0, 5.0), comp=(3.0, 7.0))  # compute before arrival
        with pytest.raises(SimulationError, match="causality"):
            c.validate()

    def test_incomplete_chunk_detected(self):
        c = _chunk()
        c.compute_end = -1.0
        with pytest.raises(SimulationError, match="never completed"):
            c.validate()

    def test_incomplete_chunk_times_are_nan(self):
        # Regression: differences against the -1.0 "unset" sentinels used
        # to yield negative nonsense (e.g. queue_time == -1 - send_end).
        undispatched = _chunk(send=(-1.0, -1.0), comp=(-1.0, -1.0))
        assert math.isnan(undispatched.transfer_time)
        assert math.isnan(undispatched.queue_time)
        assert math.isnan(undispatched.compute_time)

        in_transfer = _chunk(send=(5.0, -1.0), comp=(-1.0, -1.0))
        assert math.isnan(in_transfer.transfer_time)
        assert math.isnan(in_transfer.queue_time)

        computing = _chunk(send=(0.0, 2.0), comp=(3.0, -1.0))
        assert computing.transfer_time == 2.0
        assert computing.queue_time == 1.0
        assert math.isnan(computing.compute_time)
        assert not computing.completed


class TestExecutionReport:
    def test_valid_report_passes(self):
        report = _report([_chunk(0), _chunk(1, send=(1.0, 2.0), comp=(2.0, 4.0))])
        report.validate()

    def test_load_conservation_checked(self):
        report = _report([_chunk(units=10.0)], total=25.0)
        with pytest.raises(SimulationError, match="not conserved"):
            report.validate()

    def test_overlapping_transfers_detected(self):
        a = _chunk(0, send=(0.0, 2.0), comp=(2.0, 3.0))
        b = _chunk(1, send=(1.0, 3.0), comp=(3.0, 4.0))  # overlaps a's send
        with pytest.raises(SimulationError, match="overlapping"):
            _report([a, b]).validate()

    def test_nonpositive_makespan_rejected(self):
        with pytest.raises(SimulationError):
            _report([_chunk()], makespan=0.0).validate()

    def test_observed_gamma_zero_for_exact_predictions(self):
        chunks = [
            _chunk(0, comp=(1.0, 3.0), predicted=2.0),
            _chunk(1, send=(1.0, 2.0), comp=(3.0, 5.0), predicted=2.0),
        ]
        assert _report(chunks).observed_gamma() == 0.0

    def test_observed_gamma_positive_for_dispersed_ratios(self):
        chunks = [
            _chunk(0, comp=(1.0, 2.0), predicted=2.0),   # ratio 0.5
            _chunk(1, send=(1.0, 2.0), comp=(3.0, 7.0), predicted=2.0),  # ratio 2.0
        ]
        assert _report(chunks).observed_gamma() > 0.5

    def test_num_rounds_and_phase_load(self):
        chunks = [
            _chunk(0, round_index=0, phase="umr"),
            _chunk(1, send=(1.0, 2.0), comp=(2.0, 3.0), round_index=2, phase="factoring"),
        ]
        report = _report(chunks)
        assert report.num_rounds == 3
        assert report.phase_load() == {"umr": 10.0, "factoring": 10.0}

    def test_worker_summaries_aggregate(self):
        chunks = [
            _chunk(0, worker=0, comp=(1.0, 3.0)),
            _chunk(1, worker=0, send=(1.0, 2.0), comp=(3.0, 6.0)),
            _chunk(2, worker=1, send=(2.0, 3.0), comp=(3.0, 4.0)),
        ]
        summaries = _report(chunks).worker_summaries()
        assert len(summaries) == 2
        w0 = summaries[0]
        assert w0.chunks == 2
        assert w0.units == 20.0
        assert w0.busy_time == pytest.approx(2.0 + 3.0)

    def test_gantt_rows_sorted_by_worker_then_time(self):
        chunks = [
            _chunk(0, worker=1, send=(0.0, 1.0), comp=(1.0, 2.0)),
            _chunk(1, worker=0, send=(1.0, 2.0), comp=(2.0, 3.0)),
        ]
        rows = _report(chunks).gantt_rows()
        assert [r[0] for r in rows] == ["w0", "w1"]

    def test_render_contains_key_fields(self):
        report = _report([_chunk()])
        report.annotations["custom_note"] = "hello"
        text = report.render(max_chunks=5)
        assert "makespan" in text
        assert "custom_note" in text
        assert "w0" in text
