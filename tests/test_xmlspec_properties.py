"""Property-based tests for the XML specification layer.

Round-trip law: for every valid task specification, ``parse_task`` after
``task_to_xml`` is the identity.  The generators cover all three division
methods with their full attribute spaces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apst.xmlspec import DivisibilitySpec, TaskSpec, parse_task, task_to_xml

# XML-safe attribute text (no control chars, quotes, angle brackets, &)
_name = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789_.-"),
    min_size=1,
    max_size=24,
)

_uniform = st.builds(
    DivisibilitySpec,
    input=_name,
    method=st.just("uniform"),
    steptype=st.just("bytes"),
    start=st.integers(min_value=0, max_value=1_000_000),
    stepsize=st.integers(min_value=1, max_value=1_000_000),
    algorithm=_name,
    probe=st.one_of(st.none(), _name),
    probe_load=st.one_of(st.none(), st.integers(min_value=1, max_value=10_000)),
)

_separator = st.builds(
    DivisibilitySpec,
    input=_name,
    method=st.just("uniform"),
    steptype=st.just("separator"),
    separator=st.sampled_from([",", ";", "|", "\t", "x"]),
    algorithm=_name,
)

_index = st.builds(
    DivisibilitySpec,
    input=_name,
    method=st.just("index"),
    indexfile=_name,
    algorithm=_name,
)

_callback = st.builds(
    DivisibilitySpec,
    input=_name,
    method=st.just("callback"),
    callback=_name,
    load=st.integers(min_value=1, max_value=10_000_000),
    arguments=st.one_of(st.just(""), _name),
    algorithm=_name,
    probe_load=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
)

_tasks = st.builds(
    TaskSpec,
    executable=_name,
    arguments=st.one_of(st.just(""), _name),
    input=st.one_of(st.none(), _name),
    output=st.one_of(st.none(), _name),
    divisibility=st.one_of(_uniform, _separator, _index, _callback),
)


@given(task=_tasks)
@settings(max_examples=300, deadline=None)
def test_task_xml_round_trip_is_identity(task):
    assert parse_task(task_to_xml(task)) == task


@given(task=_tasks)
@settings(max_examples=100, deadline=None)
def test_serialized_xml_is_well_formed(task):
    import xml.etree.ElementTree as ET

    root = ET.fromstring(task_to_xml(task))
    assert root.tag == "task"
    assert len(root.findall("divisibility")) == 1
