"""Failure-injection parity: identical recovery decisions on every backend.

Recovery is core policy, not backend behavior: an injected crash,
straggler, or probe-phase death must produce the *same* resilience
decision log (escalations, quarantines, redirects, speculations) on the
simulator and on all three real substrates.  The scenarios are scripted
at deterministic points in the serialized-dispatch order, so the logs
are pinned exactly -- any drift is a regression in the unified core.
"""

import pytest

from repro.dispatch.parity import (
    BACKENDS,
    FAILURE_SCENARIOS,
    FAILURE_TARGET,
    failure_grid,
    run_failure_scenario,
)

#: The pinned decision sequence of every scripted scenario.  Worker 1
#: (the target) fails; worker 0 is the fastest live worker, so every
#: recovery lands there.
EXPECTED = {
    # simple-5 on 3 workers plans w1's chunks as ids 1, 4, 7, 10, 13.
    # Chunk 1: retransmit (RetryPolicy) then escalate; chunk 4: second
    # escalation trips quarantine_after=2 -- but the quarantine decision
    # is recorded when the escalation count crosses the threshold,
    # before the escalate tuple of the *next* failure; the remaining
    # planned chunks are redirected pre-dispatch.
    "crash": [
        ("escalate", 1, 1, 0),
        ("quarantine", 1),
        ("escalate", 4, 1, 0),
        ("redirect", 7, 1, 0),
        ("redirect", 10, 1, 0),
        ("redirect", 13, 1, 0),
    ],
    # simple-1: w1 swallows its only chunk (id 1); once the modeled wait
    # clears min_wait the detector flags it, the twin runs on idle w0
    # and wins; the original never completes (abandoned).
    "slowdown": [
        ("speculate", 1, 1, 0),
        ("speculation_won", 1, 1, 0),
    ],
    # UMR probes; w1 dies during its probe.  The tolerate path records
    # the probe failure and quarantines before the first dispatch; every
    # chunk UMR planned for w1 is then redirected.
    "probe_crash": [
        ("probe_failure", 1),
        ("quarantine", 1),
        ("redirect", 1, 1, 0),
        ("redirect", 4, 1, 0),
        ("redirect", 7, 1, 0),
    ],
}


@pytest.fixture
def load_file(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(range(256)) * 4)  # 16 units at stepsize 64
    return path


def test_scenario_and_expectation_sets_agree():
    assert set(EXPECTED) == set(FAILURE_SCENARIOS)


def test_failure_grid_has_unambiguous_recovery_target():
    grid = failure_grid()
    speeds = [w.speed for w in grid.workers]
    assert speeds[0] == max(speeds)  # recovery target is always worker 0
    assert len(set(speeds)) == len(speeds)  # strict ladder, no ties
    assert FAILURE_TARGET != 0


@pytest.mark.parametrize("scenario", FAILURE_SCENARIOS)
def test_scenario_decision_log_is_pinned_on_simulation(
    scenario, load_file, tmp_path
):
    log = run_failure_scenario(
        scenario, "simulation", load_file, workdir=tmp_path
    )
    assert log == EXPECTED[scenario]


@pytest.mark.parametrize("scenario", FAILURE_SCENARIOS)
def test_scenario_decision_log_is_identical_on_every_backend(
    scenario, load_file, tmp_path
):
    """The tentpole guarantee: one recovery policy, four substrates."""
    logs = {
        kind: run_failure_scenario(
            scenario, kind, load_file, workdir=tmp_path / kind
        )
        for kind in BACKENDS
    }
    for kind in BACKENDS:
        assert logs[kind] == EXPECTED[scenario], (
            f"{scenario!r} diverged on backend {kind!r}"
        )


def test_unknown_scenario_is_rejected(load_file, tmp_path):
    with pytest.raises(ValueError, match="unknown scenario"):
        run_failure_scenario("meteor", "simulation", load_file, workdir=tmp_path)
