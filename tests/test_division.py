"""Tests for the APST-DV load division methods (paper Section 3.4)."""

import sys

import pytest

from repro.apst.division import (
    CallbackDivision,
    ChunkExtent,
    ChunkPayload,
    IndexDivision,
    LoadTracker,
    SeparatorDivision,
    UniformBytesDivision,
    UniformUnitsDivision,
)
from repro.errors import DivisionError


class TestUniformUnits:
    def test_snaps_to_step_multiples(self):
        d = UniformUnitsDivision(total=100.0, step=10.0)
        assert d.nearest_cutoff(34.0) == 30.0
        assert d.nearest_cutoff(36.0) == 40.0

    def test_end_of_load_is_always_valid(self):
        d = UniformUnitsDivision(total=95.0, step=10.0)
        assert d.nearest_cutoff(94.0) == 95.0
        assert d.next_cutoff(90.0) == 95.0

    def test_next_cutoff_strictly_advances(self):
        d = UniformUnitsDivision(total=100.0, step=10.0)
        assert d.next_cutoff(30.0) == 40.0
        assert d.next_cutoff(31.0) == 40.0

    def test_next_cutoff_beyond_end_rejected(self):
        d = UniformUnitsDivision(total=100.0, step=10.0)
        with pytest.raises(DivisionError):
            d.next_cutoff(100.0)

    def test_start_offset_shifts_grid(self):
        d = UniformUnitsDivision(total=100.0, step=10.0, start=3.0)
        assert d.nearest_cutoff(12.0) == 13.0

    def test_invalid_parameters(self):
        with pytest.raises(DivisionError):
            UniformUnitsDivision(total=0.0, step=1.0)
        with pytest.raises(DivisionError):
            UniformUnitsDivision(total=10.0, step=0.0)
        with pytest.raises(DivisionError):
            UniformUnitsDivision(total=10.0, step=1.0, start=10.0)

    def test_abstract_extract_returns_none(self):
        d = UniformUnitsDivision(total=100.0, step=10.0)
        assert d.extract(ChunkExtent(0.0, 10.0)) is None


class TestUniformBytes:
    def test_file_size_is_total(self, load_file):
        d = UniformBytesDivision(load_file, stepsize=10)
        assert d.total_units == 10240.0

    def test_extract_returns_exact_bytes(self, load_file):
        d = UniformBytesDivision(load_file, stepsize=10)
        payload = d.extract(ChunkExtent(offset=256.0, units=256.0))
        assert payload.read_bytes() == bytes(range(256))

    def test_extract_beyond_end_rejected(self, load_file):
        d = UniformBytesDivision(load_file, stepsize=10)
        with pytest.raises(DivisionError):
            d.extract(ChunkExtent(offset=10000.0, units=1000.0))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DivisionError, match="not found"):
            UniformBytesDivision(tmp_path / "nope.bin", stepsize=10)

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(DivisionError, match="empty"):
            UniformBytesDivision(empty, stepsize=10)


class TestSeparator:
    def test_cutoffs_after_each_separator(self, tmp_path):
        path = tmp_path / "records.txt"
        path.write_bytes(b"aa\nbbbb\nc\n")
        d = SeparatorDivision(path, separator=b"\n")
        assert d.cutoffs == [0.0, 3.0, 8.0, 10.0]

    def test_chunks_end_on_record_boundaries(self, tmp_path):
        path = tmp_path / "records.txt"
        path.write_bytes(b"aa\nbbbb\nc\n")
        d = SeparatorDivision(path, separator="\n")
        tracker = LoadTracker(d)
        first = tracker.take(4.0)
        data = d.extract(first).read_bytes()
        assert data.endswith(b"\n")

    def test_multibyte_separator_rejected(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_bytes(b"ab")
        with pytest.raises(DivisionError, match="single byte"):
            SeparatorDivision(path, separator="ab")


class TestIndex:
    def test_index_file_defines_cutoffs(self, tmp_path):
        load = tmp_path / "load.bin"
        load.write_bytes(bytes(100))
        idx = tmp_path / "load.idx"
        idx.write_text("# comment\n10\n55\n80\n")
        d = IndexDivision(load, idx)
        assert d.cutoffs == [0.0, 10.0, 55.0, 80.0, 100.0]
        assert d.nearest_cutoff(50.0) == 55.0
        assert d.nearest_cutoff(30.0) == 10.0

    def test_bad_offset_line_rejected(self, tmp_path):
        load = tmp_path / "load.bin"
        load.write_bytes(bytes(100))
        idx = tmp_path / "load.idx"
        idx.write_text("ten\n")
        with pytest.raises(DivisionError, match="bad offset"):
            IndexDivision(load, idx)

    def test_offset_outside_file_rejected(self, tmp_path):
        load = tmp_path / "load.bin"
        load.write_bytes(bytes(100))
        idx = tmp_path / "load.idx"
        idx.write_text("150\n")
        with pytest.raises(DivisionError, match="outside"):
            IndexDivision(load, idx)


class TestCallback:
    def test_in_process_function(self, tmp_path):
        def extractor(offset, size, out):
            out.write_bytes(bytes([offset % 256]) * size)

        d = CallbackDivision(100, function=extractor, workdir=tmp_path)
        payload = d.extract(ChunkExtent(offset=3.0, units=5.0))
        assert payload.read_bytes() == b"\x03" * 5

    def test_cutoffs_on_whole_work_units(self):
        d = CallbackDivision(100, function=lambda o, s, p: p.write_bytes(b"x"))
        assert d.nearest_cutoff(3.4) == 3.0
        assert d.nearest_cutoff(3.6) == 4.0
        assert d.next_cutoff(3.0) == 4.0

    def test_external_program(self, tmp_path):
        script = tmp_path / "extract.py"
        script.write_text(
            "import sys, pathlib\n"
            "offset, size, out = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]\n"
            "pathlib.Path(out).write_bytes(b'u' * size)\n"
        )
        d = CallbackDivision(
            50, program=[sys.executable, str(script)], workdir=tmp_path
        )
        payload = d.extract(ChunkExtent(offset=0.0, units=7.0))
        assert payload.read_bytes() == b"u" * 7

    def test_failing_program_reports_stderr(self, tmp_path):
        script = tmp_path / "fail.py"
        script.write_text("import sys; print('boom', file=sys.stderr); sys.exit(3)\n")
        d = CallbackDivision(50, program=[sys.executable, str(script)], workdir=tmp_path)
        with pytest.raises(DivisionError, match="boom"):
            d.extract(ChunkExtent(offset=0.0, units=1.0))

    def test_program_and_function_mutually_exclusive(self):
        with pytest.raises(DivisionError):
            CallbackDivision(10)
        with pytest.raises(DivisionError):
            CallbackDivision(10, program=["x"], function=lambda o, s, p: None)


class TestChunkPayload:
    def test_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(DivisionError):
            ChunkPayload(extent=ChunkExtent(0.0, 1.0))
        with pytest.raises(DivisionError):
            ChunkPayload(extent=ChunkExtent(0.0, 1.0), data=b"x", path=tmp_path / "f")

    def test_nbytes(self, tmp_path):
        p = ChunkPayload(extent=ChunkExtent(0.0, 3.0), data=b"abc")
        assert p.nbytes == 3
        f = tmp_path / "f.bin"
        f.write_bytes(b"abcd")
        q = ChunkPayload(extent=ChunkExtent(0.0, 4.0), path=f)
        assert q.nbytes == 4
        assert q.read_bytes() == b"abcd"


class TestLoadTracker:
    def test_sequential_consumption(self):
        tracker = LoadTracker(UniformUnitsDivision(total=100.0, step=10.0))
        a = tracker.take(25.0)
        b = tracker.take(24.0)
        assert (a.offset, a.units) == (0.0, 30.0)  # 25 snaps half-up to 30
        assert (b.offset, b.units) == (30.0, 20.0)  # 54 snaps down to 50
        assert tracker.remaining == 50.0

    def test_too_small_request_advances_one_step(self):
        tracker = LoadTracker(UniformUnitsDivision(total=100.0, step=10.0))
        extent = tracker.take(1.0)
        assert extent.units == 10.0

    def test_tail_absorbed_into_final_chunk(self):
        tracker = LoadTracker(UniformUnitsDivision(total=95.0, step=10.0))
        tracker.take(80.0)
        last = tracker.take(10.0)
        # 80 -> 90 would leave 5, smaller than the chunk: absorbed
        assert last.units == 15.0
        assert tracker.exhausted

    def test_take_exact_rest(self):
        tracker = LoadTracker(UniformUnitsDivision(total=100.0, step=10.0))
        tracker.take(40.0)
        rest = tracker.take_exact_rest()
        assert rest.units == 60.0
        assert tracker.exhausted

    def test_exhausted_tracker_rejects_take(self):
        tracker = LoadTracker(UniformUnitsDivision(total=10.0, step=10.0))
        tracker.take(10.0)
        with pytest.raises(DivisionError, match="exhausted"):
            tracker.take(1.0)

    def test_nonpositive_request_rejected(self):
        tracker = LoadTracker(UniformUnitsDivision(total=10.0, step=1.0))
        with pytest.raises(DivisionError):
            tracker.take(0.0)
