"""Tests for the metrics registry and Prometheus exposition."""

import json
import math

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry, parse_prometheus


class TestCounter:
    def test_monotonic(self):
        c = MetricsRegistry().counter("repro_test_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ReproError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec_max(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4
        g.max(10)
        g.max(3)  # high-water: no decrease
        assert g.value == 10


class TestHistogram:
    def test_bucket_boundaries_are_inclusive(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0, 5.0))
        h.observe(1.0)   # exactly on a bound -> that bucket (le semantics)
        h.observe(1.5)
        h.observe(5.0)
        h.observe(99.0)  # +Inf bucket
        counts = h.bucket_counts()
        assert counts[1.0] == 1
        assert counts[5.0] == 3  # cumulative
        assert counts[math.inf] == 4
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)

    def test_nan_observations_ignored(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        h.observe(math.nan)
        assert h.count == 0

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            MetricsRegistry().histogram("repro_h", buckets=(1.0, 1.0))

    def test_mean(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean() == 3.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_a_total") is reg.counter("repro_a_total")
        assert len(reg) == 1

    def test_same_name_different_labels_coexist(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs_total", labels={"outcome": "done"}).inc()
        reg.counter("repro_jobs_total", labels={"outcome": "failed"}).inc(2)
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ReproError, match="already registered"):
            reg.gauge("repro_x")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.counter("bad name")
        with pytest.raises(ReproError):
            reg.counter("9starts_with_digit")


class TestExposition:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_chunks_total", "Chunks dispatched").inc(42)
        reg.gauge("repro_heap_depth", "Heap depth").set(17)
        h = reg.histogram("repro_queue_seconds", "Queue time", buckets=(0.5, 2.0))
        h.observe(0.25)
        h.observe(1.0)
        h.observe(10.0)
        reg.counter("repro_jobs_total", labels={"outcome": "done"}).inc(3)
        return reg

    def test_prometheus_text_round_trips_through_parser(self):
        text = self._populated().render_prometheus()
        samples = parse_prometheus(text)
        assert samples["repro_chunks_total"] == 42
        assert samples["repro_heap_depth"] == 17
        assert samples['repro_queue_seconds_bucket{le="0.5"}'] == 1
        assert samples['repro_queue_seconds_bucket{le="2"}'] == 2
        assert samples['repro_queue_seconds_bucket{le="+Inf"}'] == 3
        assert samples["repro_queue_seconds_sum"] == pytest.approx(11.25)
        assert samples["repro_queue_seconds_count"] == 3
        assert samples['repro_jobs_total{outcome="done"}'] == 3

    def test_help_and_type_headers_present(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_chunks_total Chunks dispatched" in text
        assert "# TYPE repro_chunks_total counter" in text
        assert "# TYPE repro_queue_seconds histogram" in text

    def test_json_exposition_is_valid(self):
        data = json.loads(self._populated().to_json())
        assert data["repro_chunks_total"][0]["value"] == 42
        assert data["repro_queue_seconds"][0]["count"] == 3
        assert data["repro_queue_seconds"][0]["buckets"]["+Inf"] == 3

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labels={"path": 'a"b\\c'}).inc()
        text = reg.render_prometheus()
        assert '\\"' in text and "\\\\" in text

    def test_parser_rejects_duplicates_and_garbage(self):
        with pytest.raises(ReproError, match="duplicate"):
            parse_prometheus("repro_a 1\nrepro_a 2\n")
        with pytest.raises(ReproError, match="bad sample value"):
            parse_prometheus("repro_a not_a_number\n")
