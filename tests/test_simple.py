"""Tests for SIMPLE-n static chunking."""

import pytest

from repro.core.base import SchedulerConfig
from repro.core.simple import SimpleN
from repro.errors import SchedulingError
from repro.platform.resources import WorkerSpec
from repro.simulation.master import simulate_run


def _config(n_workers=4, load=100.0):
    estimates = [
        WorkerSpec(f"w{i}", speed=1.0, bandwidth=10.0) for i in range(n_workers)
    ]
    return SchedulerConfig(estimates=estimates, total_load=load)


def _drain(scheduler):
    """Pull every dispatch, mimicking the driver's bookkeeping."""
    from repro.core.base import ChunkInfo, WorkerState

    workers = [WorkerState(index=i, name=f"w{i}") for i in range(scheduler.config.num_workers)]
    out = []
    cid = 0
    while True:
        req = scheduler.next_dispatch(0.0, workers)
        if req is None:
            return out
        out.append(req)
        scheduler.notify_dispatched(
            ChunkInfo(cid, req.worker_index, req.units, req.round_index, req.phase)
        )
        cid += 1


class TestPlan:
    def test_simple1_one_chunk_per_worker(self):
        s = SimpleN(1)
        s.configure(_config(4, 100.0))
        dispatches = _drain(s)
        assert len(dispatches) == 4
        assert all(d.units == pytest.approx(25.0) for d in dispatches)
        assert [d.worker_index for d in dispatches] == [0, 1, 2, 3]

    def test_simple5_round_major_order(self):
        s = SimpleN(5)
        s.configure(_config(2, 100.0))
        dispatches = _drain(s)
        assert len(dispatches) == 10
        assert all(d.units == pytest.approx(10.0) for d in dispatches)
        assert [d.worker_index for d in dispatches[:4]] == [0, 1, 0, 1]
        assert [d.round_index for d in dispatches[:4]] == [0, 0, 1, 1]

    def test_total_equals_load(self):
        s = SimpleN(3)
        s.configure(_config(5, 123.0))
        dispatches = _drain(s)
        assert sum(d.units for d in dispatches) == pytest.approx(123.0)

    def test_name_and_probing_flag(self):
        s = SimpleN(5)
        assert s.name == "simple-5"
        assert s.uses_probing is False

    def test_invalid_n_rejected(self):
        with pytest.raises(SchedulingError):
            SimpleN(0)

    def test_last_chunk_clamped_to_remaining(self):
        """If the driver hands out more than requested (cut-off snapping),
        later planned chunks shrink instead of overshooting the load."""
        from repro.core.base import ChunkInfo, WorkerState

        s = SimpleN(1)
        s.configure(_config(2, 100.0))
        workers = [WorkerState(index=i, name=f"w{i}") for i in range(2)]
        first = s.next_dispatch(0.0, workers)
        # driver dispatched more than asked (snap-to-cutoff)
        s.notify_dispatched(ChunkInfo(0, 0, first.units + 30.0, 0, "simple"))
        second = s.next_dispatch(0.0, workers)
        assert second.units == pytest.approx(20.0)


class TestEndToEnd:
    def test_simple1_makespan_formula(self, latency_free_grid):
        """SIMPLE-1 on a homogeneous latency-free star: the last worker
        computes after all N serialized transfers."""
        report = simulate_run(
            latency_free_grid, SimpleN(1), total_load=80.0, seed=0
        )
        # transfers: 80/8 = 10s total; each worker computes 20 units in 20s
        assert report.makespan == pytest.approx(10.0 + 20.0)

    def test_simple5_beats_simple1_with_communication(self, latency_free_grid):
        r1 = simulate_run(latency_free_grid, SimpleN(1), total_load=400.0, seed=0)
        r5 = simulate_run(latency_free_grid, SimpleN(5), total_load=400.0, seed=0)
        assert r5.makespan < r1.makespan
