"""Round-trip tests for platform XML serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apst.division import LoadTracker, SeparatorDivision
from repro.apst.xmlspec import parse_platform, platform_to_xml
from repro.platform.presets import das2_cluster, grail_lan, mixed_grid
from repro.platform.resources import Grid, WorkerSpec


class TestPlatformRoundTrip:
    @pytest.mark.parametrize("factory", [
        lambda: das2_cluster(4), grail_lan, mixed_grid,
    ])
    def test_presets_round_trip(self, factory):
        grid = factory()
        rebuilt = parse_platform(platform_to_xml(grid))
        assert len(rebuilt) == len(grid)
        for a, b in zip(rebuilt.workers, grid.workers):
            assert a.name == b.name
            assert a.speed == pytest.approx(b.speed)
            assert a.bandwidth == pytest.approx(b.bandwidth)
            assert a.comm_latency == pytest.approx(b.comm_latency)
            assert a.comp_latency == pytest.approx(b.comp_latency)
            assert a.cluster == b.cluster

    @given(
        params=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=100.0),
                st.floats(min_value=0.01, max_value=1000.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_random_grids_round_trip_exactly(self, params):
        grid = Grid(workers=tuple(
            WorkerSpec(f"w{i}", speed=s, bandwidth=b, comm_latency=lat)
            for i, (s, b, lat) in enumerate(params)
        ))
        rebuilt = parse_platform(platform_to_xml(grid))
        # repr() serialization: exact float round trip
        assert rebuilt.workers == grid.workers


class TestSeparatorDivisionFuzz:
    @given(
        records=st.lists(
            st.binary(min_size=0, max_size=30).map(
                lambda b: b.replace(b"\n", b"x")
            ),
            min_size=1,
            max_size=40,
        ),
        requests=st.lists(st.floats(min_value=0.5, max_value=200.0),
                          min_size=1, max_size=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunks_always_hold_whole_records(self, tmp_path_factory, records,
                                              requests):
        tmp = tmp_path_factory.mktemp("sep")
        path = tmp / "records.db"
        path.write_bytes(b"".join(r + b"\n" for r in records))
        division = SeparatorDivision(path, separator=b"\n")
        tracker = LoadTracker(division)
        reassembled = b""
        i = 0
        while not tracker.exhausted:
            extent = tracker.take(requests[i % len(requests)])
            i += 1
            chunk = division.extract(extent).read_bytes()
            assert chunk.endswith(b"\n")
            reassembled += chunk
        # chunks partition the file exactly
        assert reassembled == path.read_bytes()
