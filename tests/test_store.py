"""The durable job store: claim/lease semantics, audit logs, both backends."""

import threading

import pytest

from repro.apst.daemon import APSTDaemon, DaemonConfig, JobState
from repro.errors import SpecificationError
from repro.platform.presets import das2_cluster
from repro.store import (
    JobStore,
    MemoryStore,
    SqliteStore,
    StoreConflictError,
    StoreError,
    open_store,
    tenant_hash,
    tenant_shard,
)

TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"
                probe="probe.bin"/>
</task>
"""


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = MemoryStore()
    else:
        backend = SqliteStore(tmp_path / "jobs.db")
    yield backend
    backend.close()


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, store):
        assert isinstance(store, JobStore)
        assert store.backend in ("memory", "sqlite")

    def test_open_store_dispatches_on_spec(self, tmp_path):
        assert open_store(None).backend == "memory"
        assert open_store("memory").backend == "memory"
        sqlite = open_store(tmp_path / "s.db")
        assert sqlite.backend == "sqlite"
        sqlite.close()


class TestJobs:
    def test_insert_allocates_monotonic_ids(self, store):
        first = store.insert_job(spec_xml="<a/>", now=1.0)
        second = store.insert_job(spec_xml="<b/>", now=2.0)
        assert (first.job_id, second.job_id) == (1, 2)
        assert first.state == "queued"
        assert store.get_job(1).spec_xml == "<a/>"

    def test_get_unknown_job_raises(self, store):
        with pytest.raises(StoreError):
            store.get_job(99)

    def test_counts_cover_every_state(self, store):
        store.insert_job(spec_xml="<a/>", now=1.0)
        counts = store.counts()
        assert counts["queued"] == 1
        assert set(counts) == {"queued", "running", "done", "failed", "cancelled"}

    def test_transition_expect_and_owner_guards(self, store):
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        with pytest.raises(StoreConflictError):
            store.transition(job.job_id, "done", expect=("running",), now=2.0)
        store.claim("d1", lease_s=10.0, now=2.0)
        with pytest.raises(StoreConflictError):
            store.transition(job.job_id, "running", owner="d2", now=3.0)
        updated = store.transition(
            job.job_id, "running", expect=("queued",), owner="d1", now=3.0
        )
        assert updated.state == "running"

    def test_terminal_transition_clears_lease_and_records_summary(self, store):
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=10.0, now=2.0)
        store.transition(job.job_id, "running", owner="d1", now=3.0)
        done = store.transition(
            job.job_id, "done", owner="d1", makespan=4.5, chunks=7, now=4.0
        )
        assert done.owner is None and done.lease_expires_at is None
        assert (done.makespan, done.chunks) == (4.5, 7)
        assert [t.to_state for t in store.transitions(job.job_id)] == [
            "running",
            "done",
        ]


class TestClaimLease:
    def test_claim_orders_by_priority_then_arrival_then_id(self, store):
        low = store.insert_job(spec_xml="<a/>", priority=0, arrival=0.0, now=1.0)
        high = store.insert_job(spec_xml="<b/>", priority=5, arrival=9.0, now=1.0)
        early = store.insert_job(spec_xml="<c/>", priority=0, arrival=0.0, now=1.0)
        claimed = store.claim("d1", lease_s=10.0, now=2.0)
        assert [j.job_id for j in claimed] == [
            high.job_id,
            low.job_id,
            early.job_id,
        ]

    def test_claimed_jobs_are_invisible_until_lease_expiry(self, store):
        store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=10.0, now=2.0)
        assert store.claim("d2", lease_s=10.0, now=3.0) == []
        assert store.claimable(now=3.0) == 0
        # after expiry the job is claimable again (d1 presumed dead)
        assert store.claimable(now=20.0) == 1
        reclaimed = store.claim("d2", lease_s=10.0, now=20.0)
        assert [j.owner for j in reclaimed] == ["d2"]
        assert reclaimed[0].attempt == 2

    def test_release_returns_job_to_the_pool(self, store):
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=10.0, now=2.0)
        with pytest.raises(StoreConflictError):
            store.release(job.job_id, "d2", now=3.0)
        released = store.release(job.job_id, "d1", now=3.0)
        assert released.owner is None
        assert store.claimable(now=4.0) == 1

    def test_steal_expired_requeues_running_jobs(self, store):
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=5.0, now=2.0)
        store.transition(job.job_id, "running", owner="d1", now=3.0)
        # lease still live: nothing to steal
        assert store.steal_expired("d2", lease_s=5.0, now=4.0) == []
        stolen = store.steal_expired("d2", lease_s=5.0, now=10.0)
        assert [j.state for j in stolen] == ["queued"]
        assert stolen[0].owner == "d2" and stolen[0].attempt == 2
        # the forced RUNNING -> QUEUED requeue is in the transition log
        assert [t.to_state for t in store.transitions(job.job_id)] == [
            "running",
            "queued",
        ]

    def test_steal_never_takes_own_leases(self, store):
        store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=5.0, now=2.0)
        assert store.steal_expired("d1", lease_s=5.0, now=10.0) == []

    def test_exactly_once_after_a_steal(self, store):
        """The loser of a lease steal cannot record a terminal state."""
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=5.0, now=2.0)
        store.transition(job.job_id, "running", owner="d1", now=3.0)
        store.steal_expired("d2", lease_s=5.0, now=10.0)
        with pytest.raises(StoreConflictError):
            store.transition(job.job_id, "done", owner="d1", now=11.0)
        store.transition(job.job_id, "running", owner="d2", now=11.0)
        store.transition(job.job_id, "done", owner="d2", now=12.0)
        terminal = [
            t for t in store.transitions(job.job_id) if t.to_state == "done"
        ]
        assert len(terminal) == 1 and terminal[0].owner == "d2"

    def test_claim_audit_records_claims_and_steals(self, store):
        job = store.insert_job(spec_xml="<a/>", now=1.0)
        store.claim("d1", lease_s=5.0, now=2.0)
        store.steal_expired("d2", lease_s=5.0, now=10.0)
        audit = store.claim_audit()
        assert [(r.job_id, r.owner, r.kind) for r in audit] == [
            (job.job_id, "d1", "claim"),
            (job.job_id, "d2", "steal"),
        ]

    def test_concurrent_claims_never_double_claim(self, store):
        for _ in range(40):
            store.insert_job(spec_xml="<a/>", now=1.0)
        results: dict[str, list[int]] = {}

        def worker(owner: str) -> None:
            ids: list[int] = []
            while True:
                batch = store.claim(owner, lease_s=60.0, limit=3)
                if not batch:
                    break
                ids.extend(j.job_id for j in batch)
            results[owner] = ids

        threads = [
            threading.Thread(target=worker, args=(f"d{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        claimed = [job_id for ids in results.values() for job_id in ids]
        assert sorted(claimed) == list(range(1, 41))  # all claimed, none twice
        assert len(store.claim_audit()) == 40


class TestSharding:
    def test_tenant_hash_is_stable_and_sqlite_safe(self):
        assert tenant_hash("acme") == tenant_hash("acme")
        assert 0 <= tenant_hash("acme") < 2**63

    def test_tenant_shard_partitions_disjointly(self, store):
        tenants = [f"tenant-{i}" for i in range(8)]
        for tenant in tenants:
            store.insert_job(spec_xml="<a/>", tenant=tenant, now=1.0)
        shard0 = store.claim("d0", lease_s=10.0, shard_index=0, shard_count=2, now=2.0)
        shard1 = store.claim("d1", lease_s=10.0, shard_index=1, shard_count=2, now=2.0)
        assert len(shard0) + len(shard1) == len(tenants)
        assert not {j.job_id for j in shard0} & {j.job_id for j in shard1}
        for job in shard0:
            assert tenant_shard(job.tenant, 2) == 0
        for job in shard1:
            assert tenant_shard(job.tenant, 2) == 1

    def test_shard_count_must_be_positive(self):
        with pytest.raises(StoreError):
            tenant_shard("acme", 0)


class TestDeadLetters:
    def test_entry_ids_are_monotonic_across_purge(self, store):
        first = store.park(job_id=1, failure_chain=("boom",), now=1.0)
        assert first.entry_id == 1
        store.dlq_purge()
        assert store.dlq_entries() == []
        second = store.park(job_id=2, now=2.0)
        # never reused: a purge must not let a new entry capture stale
        # replayed_as references to the old id
        assert second.entry_id == 2

    def test_mark_replayed_round_trip(self, store):
        entry = store.park(
            job_id=7, algorithm="umr", spec_xml="<task/>",
            failure_chain=("a", "b"), now=1.0,
        )
        updated = store.dlq_mark_replayed(entry.entry_id, 42)
        assert updated.replayed_as == 42
        assert store.dlq_get(entry.entry_id).failure_chain == ("a", "b")
        with pytest.raises(StoreError):
            store.dlq_mark_replayed(99, 1)


class TestTenantAccounting:
    def test_charges_accumulate_atomically(self, store):
        store.tenant_charge("acme", submitted=1)
        store.tenant_charge("acme", completed=1, worker_seconds=2.5)
        usage = store.tenant_usage("acme")
        assert (usage.submitted, usage.completed) == (1, 1)
        assert usage.worker_seconds == pytest.approx(2.5)
        assert store.tenant_usage("ghost").worker_seconds == 0.0
        assert [u.tenant for u in store.tenant_usages()] == ["acme"]


class TestSqliteDurability:
    """What only the SQLite backend promises: state survives the process."""

    def test_state_survives_reopen(self, tmp_path):
        path = tmp_path / "jobs.db"
        store = SqliteStore(path)
        job = store.insert_job(spec_xml="<a/>", tenant="acme", now=1.0)
        store.claim("d1", lease_s=5.0, now=2.0)
        store.park(job_id=job.job_id, failure_chain=("x",), now=3.0)
        store.tenant_charge("acme", submitted=1)
        store.close()

        reopened = SqliteStore(path)
        record = reopened.get_job(job.job_id)
        assert record.owner == "d1" and record.tenant == "acme"
        assert reopened.dlq_entries()[0].entry_id == 1
        assert reopened.tenant_usage("acme").submitted == 1
        assert len(reopened.claim_audit()) == 1
        reopened.close()

    def test_two_connections_contend_for_claims(self, tmp_path):
        """Two SqliteStore handles model two daemon processes on one file."""
        path = tmp_path / "jobs.db"
        a, b = SqliteStore(path), SqliteStore(path)
        for _ in range(20):
            a.insert_job(spec_xml="<a/>", now=1.0)
        got_a = a.claim("da", lease_s=60.0, now=2.0)
        got_b = b.claim("db", lease_s=60.0, now=2.0)
        assert len(got_a) == 20 and got_b == []
        # the audit log is shared: b sees a's claims
        assert len(b.claim_audit()) == 20
        a.close()
        b.close()


class TestDaemonOnStore:
    """The daemon layer over the store: recovery, DLQ ids, exactly-once."""

    @staticmethod
    def _workspace(tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(255) * 80)
        (tmp_path / "probe.bin").write_bytes(bytes(100))
        return tmp_path

    def _daemon(self, workspace, store, **kwargs):
        grid = das2_cluster(nodes=4, total_load=20400.0)
        return APSTDaemon(
            grid,
            config=DaemonConfig(base_dir=workspace, seed=3),
            store=store,
            **kwargs,
        )

    def test_submit_persists_spec_and_metadata(self, tmp_path):
        workspace = self._workspace(tmp_path)
        store = SqliteStore(tmp_path / "jobs.db")
        daemon = self._daemon(workspace, store)
        job_id = daemon.submit(TASK_XML, tenant="acme", priority=3, arrival=1.5)
        record = store.get_job(job_id)
        assert (record.tenant, record.priority, record.arrival) == ("acme", 3, 1.5)
        assert 'method="uniform"' in record.spec_xml
        store.close()

    def test_restarted_daemon_recovers_queued_jobs(self, tmp_path):
        workspace = self._workspace(tmp_path)
        path = tmp_path / "jobs.db"
        store = SqliteStore(path)
        first = self._daemon(workspace, store)
        job_id = first.submit(TASK_XML)
        store.close()  # the daemon process "dies" without running the job

        reopened = SqliteStore(path)
        second = self._daemon(workspace, reopened)
        recovered = second.recover()
        assert recovered["requeued"] == 1
        executed = second.run_pending()
        assert executed == [job_id]
        assert second.job(job_id).state is JobState.DONE
        record = reopened.get_job(job_id)
        assert record.state == "done" and record.makespan > 0
        reopened.close()

    def test_recover_steals_expired_leases_of_dead_owner(self, tmp_path):
        workspace = self._workspace(tmp_path)
        path = tmp_path / "jobs.db"
        store = SqliteStore(path)
        dead = self._daemon(workspace, store, lease_s=0.05)
        job_id = dead.submit(TASK_XML)
        store.claim(dead.owner, lease_s=0.05, now=0.0)  # claimed, never run
        store.close()

        import time as _time

        _time.sleep(0.1)
        reopened = SqliteStore(path)
        survivor = self._daemon(workspace, reopened)
        recovered = survivor.recover()
        assert recovered["stolen"] == 1
        assert survivor.run_pending() == [job_id]
        assert survivor.job(job_id).state is JobState.DONE
        kinds = [r.kind for r in reopened.claim_audit()]
        assert kinds == ["claim", "steal"]
        reopened.close()

    def test_record_result_discards_after_lease_steal(self, tmp_path):
        """Exactly-once: a stolen job's original runner cannot complete it."""
        workspace = self._workspace(tmp_path)
        store = MemoryStore()
        daemon = self._daemon(workspace, store, lease_s=5.0)
        job_id = daemon.submit(TASK_XML)
        (job,) = daemon.claim_pending()
        assert daemon.mark_running(job)
        # a peer steals the lease (as if this daemon stalled past expiry)
        store.steal_expired("peer", lease_s=5.0, now=float("inf"))

        class _Report:
            makespan = 1.0
            num_chunks = 2
            algorithm = "umr"

        assert daemon.record_result(job, _Report()) is False
        assert store.get_job(job_id).state == "queued"  # peer will re-run
        done = [t for t in store.transitions(job_id) if t.to_state == "done"]
        assert done == []

    def test_dlq_ids_do_not_restart_after_daemon_restart(self, tmp_path):
        """Regression: in-memory DLQ ids restarted from 1 on every daemon
        restart, so mark_replayed/replayed_as links became ambiguous."""
        workspace = self._workspace(tmp_path)
        path = tmp_path / "jobs.db"
        store = SqliteStore(path)
        first = self._daemon(workspace, store)
        entry = first.dlq.park(
            job_id=1, algorithm="umr", task=None,
            failure_chain=["no live workers"], spec_xml="<task/>",
        )
        assert entry.entry_id == 1
        store.close()

        reopened = SqliteStore(path)
        second = self._daemon(workspace, reopened)
        later = second.dlq.park(
            job_id=2, algorithm="umr", task=None, failure_chain=["again"],
        )
        assert later.entry_id == 2  # would be 1 again with in-memory ids
        second.dlq.mark_replayed(later.entry_id, 99)
        assert second.dlq.get(1).replayed_as is None  # link unambiguous
        assert second.dlq.get(2).replayed_as == 99
        reopened.close()

    def test_dlq_replay_from_spec_xml_after_restart(self, tmp_path):
        """A restarted daemon replays parked jobs from the persisted spec."""
        workspace = self._workspace(tmp_path)
        path = tmp_path / "jobs.db"
        store = SqliteStore(path)
        first = self._daemon(workspace, store)
        first.dlq.park(
            job_id=1, algorithm="umr", task=None,
            failure_chain=["boom"], spec_xml=TASK_XML,
        )
        store.close()

        reopened = SqliteStore(path)
        second = self._daemon(workspace, reopened)
        new_id = second.dlq_replay(1)
        assert second.dlq.get(1).replayed_as == new_id
        second.run_pending()
        assert second.job(new_id).state is JobState.DONE
        reopened.close()

    def test_cancel_is_guarded_by_the_store(self, tmp_path):
        workspace = self._workspace(tmp_path)
        daemon = self._daemon(workspace, MemoryStore())
        job_id = daemon.submit(TASK_XML)
        daemon.run_pending()
        with pytest.raises(SpecificationError, match="only queued"):
            daemon.cancel(job_id)

    def test_shard_assignment_validates(self, tmp_path):
        workspace = self._workspace(tmp_path)
        daemon = self._daemon(workspace, MemoryStore())
        with pytest.raises(SpecificationError):
            daemon.set_shard(2, 2)
        daemon.set_shard(1, 2)
        assert (daemon.shard_index, daemon.shard_count) == (1, 2)
