"""Property-based tests of the straggler detector (stdlib random, fixed seeds).

Two system-level properties anchor the tier:

* **no false positives** -- on a homogeneous platform where chunks take
  their expected time, nothing is ever flagged and no speculation fires;
* **always eventually completes** -- with escalation enabled and at least
  one live worker, injected crashes never prevent the run finishing.
"""

import random

import pytest

from repro.dispatch.parity import (
    FAILURE_TARGET,
    _CrashHost,
    failure_grid,
    parity_options,
)
from repro.errors import SpecificationError
from repro.resilience import (
    EscalationPolicy,
    ResiliencePolicy,
    StragglerDetector,
    StragglerPolicy,
)

WORKERS = failure_grid().workers


class TestPolicyValidation:
    def test_rejects_sub_unity_multiplier(self):
        with pytest.raises(SpecificationError, match="multiplier"):
            StragglerPolicy(multiplier=0.5)

    def test_rejects_bad_alpha_and_negative_grace(self):
        with pytest.raises(SpecificationError, match="ewma_alpha"):
            StragglerPolicy(ewma_alpha=0.0)
        with pytest.raises(SpecificationError, match="min_wait"):
            StragglerPolicy(min_wait=-1.0)

    def test_detector_needs_estimates(self):
        with pytest.raises(SpecificationError, match=">= 1 worker"):
            StragglerDetector(StragglerPolicy(), [])


class TestNoFalsePositives:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_on_time_chunks_are_never_flagged(self, seed):
        """Waits at or below multiplier x expectation never flag,

        regardless of chunk size, worker, or the interleaving of
        on-expectation EWMA observations.
        """
        rng = random.Random(seed)
        detector = StragglerDetector(StragglerPolicy(), WORKERS)
        for _ in range(500):
            worker = rng.randrange(len(WORKERS))
            units = rng.uniform(0.1, 500.0)
            expected = detector.expected_compute(worker, units)
            waited = expected * rng.uniform(0.0, detector.policy.multiplier)
            assert not detector.is_straggling(worker, units, waited)
            # feed back an on-expectation completion; must stay quiet
            detector.observe(worker, units, expected)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_homogeneous_observations_keep_ewma_within_observed_range(self, seed):
        """The EWMA is a convex combination: it can never leave the hull

        of the seed estimate and the observed unit times.
        """
        rng = random.Random(seed)
        detector = StragglerDetector(StragglerPolicy(ewma_alpha=0.3), WORKERS)
        worker = rng.randrange(len(WORKERS))
        seen = [detector.unit_time(worker)]
        for _ in range(200):
            units = rng.uniform(1.0, 100.0)
            unit_time = rng.uniform(0.5, 2.0) * seen[0]
            detector.observe(worker, units, units * unit_time)
            seen.append(unit_time)
            assert min(seen) <= detector.unit_time(worker) <= max(seen)

    def test_min_wait_is_an_absolute_grace_period(self):
        detector = StragglerDetector(StragglerPolicy(min_wait=9.0), WORKERS)
        barely_late = detector.policy.multiplier * detector.expected_compute(0, 4.0)
        assert not detector.is_straggling(0, 4.0, barely_late + 8.9)
        assert detector.is_straggling(0, 4.0, barely_late + 9.1)


class TestAdaptation:
    def test_consistently_slow_worker_raises_its_own_bar(self):
        """A worker that is always 10x slow is a straggler at first but

        stops being flagged once the EWMA has learned its real speed --
        slowness is only anomalous relative to the worker's own history.
        """
        detector = StragglerDetector(StragglerPolicy(), WORKERS)
        units = 50.0
        slow = 10.0 * detector.expected_compute(0, units)
        assert detector.is_straggling(0, units, slow)
        for _ in range(40):
            detector.observe(0, units, slow)
        assert not detector.is_straggling(0, units, slow)

    def test_observe_ignores_degenerate_chunks(self):
        detector = StragglerDetector(StragglerPolicy(), WORKERS)
        before = detector.unit_time(0)
        detector.observe(0, 0.0, 123.0)
        assert detector.unit_time(0) == before

    def test_zero_time_observation_cannot_poison_the_ewma(self):
        detector = StragglerDetector(StragglerPolicy(ewma_alpha=1.0), WORKERS)
        detector.observe(0, 10.0, 0.0)
        assert detector.unit_time(0) > 0.0
        assert detector.threshold(0, 10.0) > 0.0


class TestSystemProperties:
    def _run(self, tmp_path, *, host_wrap=None, options):
        from repro.apst.division import UniformBytesDivision
        from repro.core.registry import make_scheduler
        from repro.dispatch.core import DispatchCore
        from repro.simulation.master import SimulationOptions, build_substrate

        load = tmp_path / "load.bin"
        if not load.exists():
            load.write_bytes(bytes(range(256)) * 4)
        division = UniformBytesDivision(load, stepsize=64)
        grid = failure_grid()
        substrate = build_substrate(
            grid, seed=0, options=SimulationOptions(**vars(options))
        )
        if host_wrap is not None:
            substrate.host = host_wrap(substrate.host)
        core = DispatchCore(
            grid,
            make_scheduler("simple-5"),
            division.total_units,
            substrate=substrate,
            division=division,
            options=options,
        )
        return core, core.run()

    def test_homogeneous_run_never_speculates(self, tmp_path):
        """Deterministic costs + oracle estimates: every chunk lands on

        its expectation, so the detector must stay silent end to end.
        """
        core, report = self._run(
            tmp_path,
            options=parity_options(resilience=ResiliencePolicy.default()),
        )
        assert core.resilience_log == []
        assert "speculated_chunks" not in report.annotations
        report.validate()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_always_eventually_completes_with_one_live_worker(
        self, tmp_path, seed
    ):
        """Crash a random worker forever: as long as another worker

        lives, escalation + quarantine must carry the run to a valid,
        load-conserving completion.
        """
        target = random.Random(seed).randrange(len(WORKERS))
        core, report = self._run(
            tmp_path,
            host_wrap=lambda host: _CrashHost(host, target),
            options=parity_options(
                resilience=ResiliencePolicy(
                    escalation=EscalationPolicy(quarantine_after=1)
                ),
            ),
        )
        report.validate()
        assert core.quarantined_workers == {target}
        assert sum(c.units for c in report.chunks) == report.total_load
        assert all(c.worker_index != target for c in report.chunks)
