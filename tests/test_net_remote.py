"""Socket workers and the remote execution backend."""

import json
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.dispatch.parity import parity_options
from repro.errors import ExecutionError
from repro.execution.appspec import app_spec
from repro.execution.local import DigestApp
from repro.net import GatewayClient, GatewayConfig, JobGateway
from repro.net.protocol import decode_payload, encode_payload
from repro.net.remote import (
    RemoteExecutionBackend,
    RemoteWorkerPool,
    WorkerEndpoint,
)
from repro.net.worker import SocketWorker
from repro.platform.presets import das2_cluster
from repro.platform.resources import Cluster, Grid


@pytest.fixture
def grid():
    return Grid.from_clusters(
        Cluster.homogeneous("f", 2, speed=500.0, bandwidth=5000.0,
                            comm_latency=0.02, comp_latency=0.01)
    )


@pytest.fixture
def division(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(1024))
    return UniformBytesDivision(path, stepsize=64)


@pytest.fixture
def worker_conn():
    """An in-process SocketWorker plus a connected frame stream."""
    worker = SocketWorker(app_spec(DigestApp))
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    sock = socket.create_connection((worker.host, worker.port), timeout=10)
    stream = sock.makefile("rwb")

    def rpc(request):
        stream.write(json.dumps(request).encode() + b"\n")
        stream.flush()
        return json.loads(stream.readline())

    yield rpc
    sock.close()
    worker.close()
    thread.join(timeout=5)


class TestSocketWorkerProtocol:
    def test_process_returns_digest_and_wall_time(self, worker_conn):
        data = b"divisible load"
        reply = worker_conn({
            "cmd": "process", "chunk_id": 3,
            "data_b64": encode_payload(data), "units": 14.0,
            "min_wall_time": 0.01,
        })
        assert reply["status"] == "ok"
        assert reply["chunk_id"] == 3
        assert decode_payload(reply["result_b64"]) == DigestApp().process(data)
        assert reply["wall_time"] >= 0.01  # padded to the modeled cost

    def test_ping_counts_processed_chunks(self, worker_conn):
        assert worker_conn({"cmd": "ping"})["processed"] == 0
        worker_conn({"cmd": "process", "chunk_id": 1,
                     "data_b64": encode_payload(b"x"), "units": 1.0})
        assert worker_conn({"cmd": "ping"})["processed"] == 1

    def test_bad_chunk_is_an_error_reply_not_a_crash(self, worker_conn):
        reply = worker_conn({"cmd": "process", "chunk_id": 5,
                             "data_b64": "!!! not base64 !!!", "units": 1.0})
        assert reply["status"] == "error"
        assert reply["chunk_id"] == 5
        assert worker_conn({"cmd": "ping"})["status"] == "ok"  # still serving

    def test_unknown_cmd_is_an_error_reply(self, worker_conn):
        assert worker_conn({"cmd": "launder"})["status"] == "error"

    def test_shutdown_says_bye(self, worker_conn):
        assert worker_conn({"cmd": "shutdown"})["status"] == "bye"


class TestWorkerPoolStartup:
    def test_await_ready_times_out_on_hung_child(self, monkeypatch):
        """A child that never prints its ready line must not hang spawn():
        the startup budget applies to the readline itself, and the hung
        child is killed, not leaked.
        """
        monkeypatch.setattr(RemoteWorkerPool, "STARTUP_TIMEOUT_S", 0.5)
        pool = RemoteWorkerPool()
        process = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, bufsize=1,
        )
        pool._processes.append(process)
        start = time.monotonic()
        with pytest.raises(ExecutionError, match="failed to start within"):
            pool._await_ready(process, "hung0")
        assert time.monotonic() - start < 10  # bounded, not readline-forever
        assert process.poll() is not None  # killed and reaped
        pool.stop()


class _RecordingCore:
    """Stands in for DispatchCore: records chunk_failed calls."""

    def __init__(self):
        self.failed = []

    def chunk_failed(self, chunk, message):
        self.failed.append(chunk.chunk_id)


class TestSendReconnectRace:
    def test_drop_conn_fails_inflight_except_the_resent_chunk(self, grid,
                                                              tmp_path):
        """Regression: when _send detects the dead connection (write fails)
        and reconnects, the generation bump makes the old reader's queued
        conn_lost stale -- so _send itself must fail the chunks in flight
        on the old connection (minus the one it is about to resend), or
        they stall until DRAIN_TIMEOUT_S.
        """
        from repro.execution.local import ScaledWallClock
        from repro.net.remote import _RemoteHost
        from repro.obs import OBS_DISABLED
        from repro.simulation.trace import ChunkTrace

        endpoints = [WorkerEndpoint(name=f"w{i}", host="127.0.0.1", port=1)
                     for i in range(2)]
        host = _RemoteHost(grid, endpoints, tmp_path / "results",
                           ScaledWallClock(0.01), 0.01, OBS_DISABLED)
        core = _RecordingCore()
        host.bind(core)

        def chunk(chunk_id, worker_index):
            return ChunkTrace(chunk_id=chunk_id, worker_index=worker_index,
                              worker_name=f"w{worker_index}", units=1.0,
                              offset=0.0, round_index=0, phase="steady")

        host._inflight = {3: chunk(3, 0), 7: chunk(7, 0), 9: chunk(9, 1)}
        host._drop_conn(0, exclude_chunk_id=7)
        assert core.failed == [3]  # 7 is being resent; 9 is another worker
        assert set(host._inflight) == {7, 9}
        assert host.disconnects == 1


class TestRemoteBackendValidation:
    def test_requires_one_endpoint_per_grid_worker(self, grid, division, tmp_path):
        endpoint = WorkerEndpoint(name="only", host="127.0.0.1", port=1)
        backend = RemoteExecutionBackend([endpoint], tmp_path, time_scale=0.01)
        with pytest.raises(ExecutionError, match="one endpoint per grid worker"):
            backend.substrate(grid, division)

    def test_rejects_empty_endpoints_and_bad_scale(self, tmp_path):
        endpoint = WorkerEndpoint(name="w", host="127.0.0.1", port=1)
        with pytest.raises(ExecutionError, match="at least one"):
            RemoteExecutionBackend([], tmp_path)
        with pytest.raises(ExecutionError, match="time_scale"):
            RemoteExecutionBackend([endpoint], tmp_path, time_scale=0.0)

    def test_unreachable_worker_fails_with_clear_error(self, grid, division,
                                                       tmp_path):
        dead = [WorkerEndpoint(name=f"dead{i}", host="127.0.0.1", port=9)
                for i in range(2)]
        backend = RemoteExecutionBackend(dead, tmp_path, time_scale=0.01)
        with pytest.raises(ExecutionError, match="cannot reach worker"):
            backend.execute(grid, make_scheduler("simple-1"), division, None,
                            options=parity_options())


class TestRemoteBackendExecution:
    def test_run_produces_valid_report_and_outputs(self, grid, division,
                                                   tmp_path):
        with RemoteWorkerPool() as pool:
            endpoints = pool.spawn(2, app_spec(DigestApp), tmp_path / "workers")
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01
            )
            report = backend.execute(
                grid, make_scheduler("umr"), division, None,
                options=parity_options(),
            )
        report.validate()
        assert report.annotations["backend"] == "remote-execution"
        assert len(backend.last_outputs) == report.num_chunks
        digest = DigestApp()
        for path in backend.last_outputs:
            assert len(path.read_bytes()) == len(digest.process(b"x"))

    def test_back_to_back_runs_reuse_the_same_workers(self, grid, division,
                                                      tmp_path):
        """The gateway keeps one backend for the daemon's whole lifetime, so
        consecutive jobs reconnect to the same single-connection workers.
        Regression: the previous run's socket must be *fully* closed (fd
        included) or the worker never returns to accept() and run 2 hangs.
        """
        with RemoteWorkerPool() as pool:
            endpoints = pool.spawn(2, app_spec(DigestApp), tmp_path / "workers")
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01
            )
            for _ in range(3):
                report = backend.execute(
                    grid, make_scheduler("simple-2"), division, None,
                    options=parity_options(),
                )
                report.validate()

    def test_probe_phase_measures_real_workers(self, grid, division, tmp_path):
        with RemoteWorkerPool() as pool:
            endpoints = pool.spawn(2, app_spec(DigestApp), tmp_path / "workers")
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01
            )
            report = backend.execute(
                grid, make_scheduler("wf"), division, None, probe_units=64.0
            )
        assert report.probe_time > 0
        report.validate()


class TestWorkerRegistration:
    def test_worker_registers_itself_with_gateway(self, tmp_path):
        """The --register flow: a worker process announces itself and the
        gateway flips to remote execution once the platform is covered.
        """
        (tmp_path / "load.bin").write_bytes(bytes(255) * 80)
        (tmp_path / "probe.bin").write_bytes(bytes(100))
        daemon_platform = das2_cluster(nodes=1, total_load=20400.0)
        from repro.apst.daemon import APSTDaemon, DaemonConfig

        daemon = APSTDaemon(
            daemon_platform, config=DaemonConfig(base_dir=tmp_path, seed=3)
        )
        gateway = JobGateway(daemon, config=GatewayConfig())
        gateway.start_in_background()
        process = None
        try:
            import os

            env = os.environ.copy()
            env["PYTHONPATH"] = os.pathsep.join(
                [str(p) for p in sys.path if p] + [env.get("PYTHONPATH", "")]
            )
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.net.worker",
                 app_spec(DigestApp), str(tmp_path / "w0"),
                 "--register", f"{gateway.host}:{gateway.port}",
                 "--name", "self-registered"],
                stdout=subprocess.PIPE, text=True, env=env,
            )
            ready = json.loads(process.stdout.readline())
            assert ready["status"] == "ready"
            with GatewayClient(gateway.host, gateway.port) as client:
                ping = None
                for _ in range(200):  # registration is asynchronous
                    ping = client.ping()
                    if ping["workers"]:
                        break
                    time.sleep(0.05)
                assert ping["workers"] == 1
                assert client.server_stats()["remote_active"] is True
        finally:
            gateway.shutdown()
            if process is not None:
                process.terminate()
                process.wait(timeout=10)
