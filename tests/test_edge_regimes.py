"""Edge-regime tests: platforms outside the paper's comfortable zone.

The paper's platforms are compute-bound (aggregate compute rate below the
link rate, rho = N/r < 1).  These tests exercise the other regimes --
communication-bound grids where the link saturates, the rho = 1 knife
edge, single-worker stars, and very large runs -- where the algorithms
must stay correct even if no longer clever.
"""

import pytest

from repro.core.registry import make_scheduler
from repro.core.umr import compute_umr_plan
from repro.errors import InfeasibleScheduleError
from repro.platform.resources import Cluster, Grid, WorkerSpec
from repro.simulation.master import SimulationOptions, simulate_run


def _grid(n, *, speed=1.0, bandwidth=10.0, nlat=0.2, clat=0.1):
    return Grid.from_clusters(
        Cluster.homogeneous("edge", n, speed=speed, bandwidth=bandwidth,
                            comm_latency=nlat, comp_latency=clat)
    )


class TestCommunicationBound:
    """N workers with aggregate compute faster than the link (rho > 1)."""

    COMM_BOUND = dict(speed=5.0, bandwidth=10.0, nlat=0.1, clat=0.05)

    @pytest.mark.parametrize("name", ["simple-1", "umr", "wf", "fixed-rumr", "gss"])
    def test_algorithms_survive_saturated_link(self, name):
        grid = _grid(8, **self.COMM_BOUND)  # rho = 8*5/10 = 4
        report = simulate_run(grid, make_scheduler(name), total_load=2000.0, seed=0)
        report.validate()

    def test_link_is_the_bottleneck(self):
        grid = _grid(8, **self.COMM_BOUND)
        report = simulate_run(grid, make_scheduler("wf"), total_load=2000.0, seed=0)
        serial_comm = 2000.0 / 10.0
        # makespan pinned near the serial transfer time, not the compute time
        assert report.makespan >= serial_comm
        assert report.makespan < serial_comm * 1.6

    def test_umr_chunks_shrink_when_comm_bound(self):
        """rho > 1 flips the recurrence: q = 1/rho < 1, rounds decay."""
        workers = [
            WorkerSpec(f"w{i}", speed=5.0, bandwidth=10.0, comm_latency=0.0,
                       comp_latency=0.0)
            for i in range(8)
        ]
        try:
            plan = compute_umr_plan(workers, total_load=2000.0)
        except InfeasibleScheduleError:
            pytest.skip("planner rejects the regime outright (acceptable)")
        totals = plan.round_totals()
        if len(totals) >= 2:
            assert totals[-1] <= totals[0] + 1e-6

    def test_no_algorithm_beats_the_link_bound(self):
        grid = _grid(8, **self.COMM_BOUND)
        for name in ("umr", "wf", "simple-5"):
            report = simulate_run(grid, make_scheduler(name), total_load=1000.0,
                                  seed=1)
            assert report.makespan >= 1000.0 / 10.0 - 1e-9


class TestKnifeEdgeRho:
    def test_rho_exactly_one_uses_arithmetic_series(self):
        # N*S = B  ->  rho = 1, the recurrence degenerates to T_{j+1} = T_j - A
        workers = [
            WorkerSpec(f"w{i}", speed=2.5, bandwidth=10.0, comm_latency=0.1,
                       comp_latency=0.05)
            for i in range(4)
        ]
        plan = compute_umr_plan(workers, total_load=1000.0)
        assert plan.total_units == pytest.approx(1000.0)
        # arithmetic decay: T_j decreases by A each round
        totals = plan.round_totals()
        if len(totals) >= 3:
            d1 = totals[0] - totals[1]
            d2 = totals[1] - totals[2]
            assert d1 == pytest.approx(d2, rel=0.05)

    def test_simulation_runs_at_rho_one(self):
        grid = _grid(4, speed=2.5, bandwidth=10.0)
        report = simulate_run(grid, make_scheduler("umr"), total_load=1000.0, seed=0)
        report.validate()


class TestDegeneratePlatforms:
    def test_single_worker_star(self):
        grid = _grid(1)
        for name in ("simple-1", "umr", "wf", "rumr", "fixed-rumr"):
            report = simulate_run(grid, make_scheduler(name), total_load=500.0,
                                  seed=0)
            report.validate()
            # one worker: makespan >= transfer of first chunk + full compute
            assert report.makespan >= 500.0 / 1.0

    def test_extreme_heterogeneity(self):
        workers = (
            WorkerSpec("fast", speed=100.0, bandwidth=1000.0, comm_latency=0.1,
                       comp_latency=0.01),
            WorkerSpec("slow", speed=0.1, bandwidth=1.0, comm_latency=1.0,
                       comp_latency=1.0),
        )
        grid = Grid(workers=workers)
        for name in ("umr", "wf", "oneround-affine"):
            report = simulate_run(grid, make_scheduler(name), total_load=1000.0,
                                  seed=0)
            report.validate()
            fast_units = sum(
                c.units for c in report.chunks if c.worker_name == "fast"
            )
            assert fast_units > 900.0  # the fast worker carries the load

    def test_zero_latency_platform(self):
        grid = _grid(4, nlat=0.0, clat=0.0)
        report = simulate_run(grid, make_scheduler("umr"), total_load=1000.0, seed=0)
        report.validate()

    def test_many_workers(self):
        grid = _grid(64, bandwidth=640.0)  # keep rho < 1
        report = simulate_run(grid, make_scheduler("wf"), total_load=10_000.0,
                              seed=0)
        report.validate()
        assert len(report.worker_summaries()) == 64


class TestScale:
    def test_hundred_thousand_unit_run_is_fast(self):
        """Complexity guard: a big WF run stays comfortably sub-second-ish."""
        import time

        grid = _grid(16, bandwidth=160.0)
        start = time.perf_counter()
        report = simulate_run(
            grid, make_scheduler("wf"), total_load=100_000.0, seed=0,
            options=SimulationOptions(quantum=1.0),
        )
        elapsed = time.perf_counter() - start
        report.validate()
        assert elapsed < 10.0

    def test_tiny_load_one_quantum_per_worker(self):
        grid = _grid(4)
        report = simulate_run(grid, make_scheduler("wf"), total_load=4.0, seed=0,
                              options=SimulationOptions(quantum=1.0))
        assert sum(c.units for c in report.chunks) == pytest.approx(4.0)

    def test_transfer_noise_everywhere(self):
        grid = _grid(8, bandwidth=80.0)
        report = simulate_run(grid, make_scheduler("fixed-rumr"),
                              total_load=2000.0, gamma=0.15, comm_gamma=0.15,
                              seed=3)
        report.validate()
