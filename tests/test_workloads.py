"""Tests for the synthetic app and Table-1 application profiles."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.applications import (
    TABLE1_APPLICATIONS,
    UnitCostModel,
    profile_by_name,
    table1_rows,
)
from repro.workloads.synthetic import SyntheticApp, SyntheticWorkload


class TestSyntheticWorkload:
    def test_valid(self):
        w = SyntheticWorkload(total_units=100.0, gamma=0.1)
        assert w.division_step == 1.0

    def test_invalid(self):
        with pytest.raises(ReproError):
            SyntheticWorkload(total_units=0.0)
        with pytest.raises(ReproError):
            SyntheticWorkload(total_units=10.0, gamma=-0.1)
        with pytest.raises(ReproError):
            SyntheticWorkload(total_units=10.0, probe_units=0.0)


class TestSyntheticApp:
    def test_result_contains_digest_and_length(self):
        app = SyntheticApp(flops_per_unit=10.0)
        result = app.process(b"hello world")
        assert len(result) == 32 + 8
        assert int.from_bytes(result[32:], "little") == 11

    def test_deterministic_digest(self):
        app = SyntheticApp(flops_per_unit=10.0)
        a = app.process(b"payload")
        b = app.process(b"payload")
        assert a == b

    def test_work_scales_with_units(self):
        import time

        app = SyntheticApp(flops_per_unit=300_000.0)
        t0 = time.perf_counter()
        app.process(b"x", units=1.0)
        small = time.perf_counter() - t0
        t0 = time.perf_counter()
        app.process(b"x", units=30.0)
        large = time.perf_counter() - t0
        assert large > small * 3

    def test_process_file(self, tmp_path):
        app = SyntheticApp(flops_per_unit=1.0)
        src = tmp_path / "in.bin"
        src.write_bytes(b"abc")
        out = app.process_file(src, tmp_path / "out.bin")
        assert out.read_bytes() == app.process(b"abc")

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            SyntheticApp(flops_per_unit=0.0)
        with pytest.raises(ReproError):
            SyntheticApp(gamma=-1.0)


class TestUnitCostModels:
    def test_constant(self):
        costs = UnitCostModel(kind="constant").sample(100, np.random.default_rng(0))
        assert np.all(costs == 1.0)

    def test_normal_cov(self):
        model = UnitCostModel(kind="normal", cov=0.1)
        costs = model.sample(20_000, np.random.default_rng(0))
        assert np.std(costs) / np.mean(costs) == pytest.approx(0.1, rel=0.05)

    def test_uniform_bounds(self):
        model = UnitCostModel(kind="uniform", halfwidth=0.2)
        costs = model.sample(10_000, np.random.default_rng(0))
        assert costs.min() >= 0.8 and costs.max() <= 1.2

    def test_mixture_produces_outliers(self):
        model = UnitCostModel(kind="mixture", cov=0.05,
                              outlier_probability=0.01, outlier_scale=20.0)
        costs = model.sample(10_000, np.random.default_rng(0))
        assert costs.max() == pytest.approx(20.0)

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            UnitCostModel(kind="pareto").sample(10, np.random.default_rng(0))

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError):
            UnitCostModel(kind="constant").sample(0, np.random.default_rng(0))


class TestTable1:
    def test_four_applications(self):
        assert [p.name for p in TABLE1_APPLICATIONS] == [
            "HMMER", "MPEG", "VFleet", "Data Mining",
        ]

    @pytest.mark.parametrize("profile", TABLE1_APPLICATIONS,
                             ids=lambda p: p.name)
    def test_r_matches_paper_within_2_percent(self, profile):
        assert profile.comm_comp_ratio == pytest.approx(profile.paper_r, rel=0.02)

    def test_gamma_and_spread_match_paper_shape(self):
        rows = {r["application"]: r for r in table1_rows(units=400_000, seed=0)}
        # HMMER: moderate CoV, enormous spread
        assert rows["HMMER"]["gamma"] == pytest.approx(0.09, abs=0.05)
        assert rows["HMMER"]["spread"] > 10.0
        # MPEG: ~10% CoV, ~30% spread
        assert rows["MPEG"]["gamma"] == pytest.approx(0.10, abs=0.03)
        assert rows["MPEG"]["spread"] == pytest.approx(0.30, abs=0.1)
        # VFleet: nearly deterministic
        assert rows["VFleet"]["gamma"] < 0.02
        assert rows["VFleet"]["spread"] < 0.05
        # Data Mining: no uncertainty data in the paper
        assert rows["Data Mining"]["gamma"] is None

    def test_profile_lookup(self):
        assert profile_by_name("hmmer").name == "HMMER"
        with pytest.raises(KeyError):
            profile_by_name("doom")
