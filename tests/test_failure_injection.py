"""Failure-injection tests: worker failures must surface, never hang."""

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.dispatch import DispatchOptions, RetryPolicy
from repro.dispatch.parity import parity_options
from repro.errors import ExecutionError
from repro.execution.appspec import app_spec
from repro.execution.local import DigestApp, LocalExecutionBackend
from repro.execution.process_backend import ProcessExecutionBackend
from repro.execution.testing import FlakyApp, SlowApp
from repro.net.remote import RemoteExecutionBackend, RemoteWorkerPool
from repro.obs import CHUNK_RETRANSMITTED, NET_WORKER_LOST, Observability
from repro.platform.resources import Cluster, Grid


@pytest.fixture
def grid():
    return Grid.from_clusters(
        Cluster.homogeneous("f", 2, speed=500.0, bandwidth=5000.0,
                            comm_latency=0.02, comp_latency=0.01)
    )


@pytest.fixture
def division(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(1024))
    return UniformBytesDivision(path, stepsize=64)


class TestFlakyApp:
    def test_deterministic_failure_index(self):
        app = FlakyApp(fail_on_calls=[2])
        app.process(b"a")
        with pytest.raises(ExecutionError, match="call 2"):
            app.process(b"b")

    def test_random_failures_seeded(self):
        a = FlakyApp(fail_probability=0.5, seed=1)
        b = FlakyApp(fail_probability=0.5, seed=1)

        def pattern(app):
            out = []
            for _ in range(20):
                try:
                    app.process(b"x")
                    out.append(True)
                except ExecutionError:
                    out.append(False)
            return out

        assert pattern(a) == pattern(b)
        assert not all(pattern(FlakyApp(fail_probability=0.5, seed=2)))

    def test_invalid_probability(self):
        with pytest.raises(ExecutionError):
            FlakyApp(fail_probability=1.5)


class TestLocalBackendFailures:
    def test_mid_run_failure_raises_not_hangs(self, grid, division, tmp_path):
        backend = LocalExecutionBackend(
            tmp_path / "work", app=FlakyApp(fail_on_calls=[5]), time_scale=0.01
        )
        with pytest.raises(ExecutionError, match="injected"):
            backend.execute(grid, make_scheduler("wf"), division, None,
                            probe_units=64.0)

    def test_probe_failure_raises(self, grid, division, tmp_path):
        backend = LocalExecutionBackend(
            tmp_path / "work", app=FlakyApp(fail_on_calls=[1]), time_scale=0.01
        )
        with pytest.raises(ExecutionError, match="probe"):
            backend.execute(grid, make_scheduler("wf"), division, None,
                            probe_units=64.0)


class TestProcessBackendFailures:
    def test_chunk_failure_propagates_from_worker_process(self, grid, division,
                                                          tmp_path):
        # SIMPLE-n does not probe, so each worker process sees only its
        # two real chunks; fail the second one.
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(FlakyApp, fail_on_calls=[2]),
            time_scale=0.01,
        )
        with pytest.raises(ExecutionError, match="injected|failed"):
            backend.execute(grid, make_scheduler("simple-2"), division, None,
                            probe_units=64.0)

    def test_mid_run_failure_leaves_no_live_children(self, grid, division,
                                                     tmp_path):
        """Every spawned worker process is reaped on the error path."""
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(FlakyApp, fail_on_calls=[2]),
            time_scale=0.01,
        )
        with pytest.raises(ExecutionError):
            backend.execute(grid, make_scheduler("simple-2"), division, None,
                            probe_units=64.0)
        host = backend.last_substrate.host
        assert len(host.processes) == len(grid.workers)
        for process in host.processes:
            assert process.poll() is not None  # exited and reaped

    def test_slow_app_is_padded_not_fatal(self, grid, division, tmp_path):
        """A slower-than-modeled app stretches times but completes."""
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(SlowApp, delay_s=0.01),
            time_scale=0.01,
        )
        report = backend.execute(grid, make_scheduler("simple-1"), division,
                                 None, probe_units=64.0)
        report.validate()


class TestRemoteSocketFailures:
    """A socket killed mid-chunk must retransmit, complete, and not leak."""

    def _spawn_with_one_dropper(self, pool, tmp_path, drop_after=1):
        """Two workers: worker 0 severs its connection on chunk N+1.

        Under simple-2 with oracle estimates each worker sees exactly two
        ``process`` requests, so ``drop_after=1`` kills the socket midway
        through worker 0's second chunk.
        """
        pool.spawn(1, app_spec(DigestApp), tmp_path / "workers",
                   drop_after=drop_after, name_prefix="dropper")
        pool.spawn(1, app_spec(DigestApp), tmp_path / "workers",
                   name_prefix="steady")
        return pool.endpoints

    def test_socket_kill_mid_chunk_retransmits_and_completes(
        self, grid, division, tmp_path
    ):
        """The satellite scenario end to end: worker 0's socket dies without
        a reply after its second chunk; the reader thread reports the loss,
        the in-flight chunk fails, RetryPolicy re-ships it, the next send
        reconnects (the worker is back in accept), and the run completes
        with the retransmit visible in events, metrics, and annotations.
        """
        obs = Observability.armed()
        with RemoteWorkerPool() as pool:
            endpoints = self._spawn_with_one_dropper(pool, tmp_path)
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01,
                observability=obs,
            )
            report = backend.execute(
                grid, make_scheduler("simple-2"), division, None,
                options=parity_options(
                    retry=RetryPolicy(max_attempts=3), observability=obs
                ),
            )
            host = backend.last_substrate.host
            assert host.disconnects >= 1
        report.validate()  # load conserved, causality holds after the retry
        assert report.annotations["retransmitted_chunks"] >= 1
        retransmits = obs.ring_events(CHUNK_RETRANSMITTED)
        assert len(retransmits) >= 1
        assert retransmits[0].fields["attempt"] == 2
        lost = obs.ring_events(NET_WORKER_LOST)
        assert len(lost) >= 1
        assert lost[0].fields["worker"] == "dropper0"
        counter = obs.metrics.counter("repro_chunks_retransmitted_total")
        assert counter.value >= 1

    def test_socket_kill_without_retry_policy_fails_fast(
        self, grid, division, tmp_path
    ):
        """Default policy: the lost chunk aborts the run with a clear error."""
        with RemoteWorkerPool() as pool:
            endpoints = self._spawn_with_one_dropper(pool, tmp_path)
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01
            )
            with pytest.raises(ExecutionError, match="lost mid-chunk"):
                backend.execute(
                    grid, make_scheduler("simple-2"), division, None,
                    options=parity_options(),
                )

    def test_probe_time_loss_emits_terminal_accounting(
        self, grid, division, tmp_path
    ):
        """Regression: a connection lost *during probing* must take the

        same terminal accounting path as a mid-run loss -- net.worker.lost
        event, repro_net_workers_lost_total counter, disconnect tally --
        before the failure surfaces to the probe loop.  Previously the
        probe path raised without recording the loss anywhere.
        """
        obs = Observability.armed()
        with RemoteWorkerPool() as pool:
            endpoints = self._spawn_with_one_dropper(pool, tmp_path,
                                                     drop_after=0)
            backend = RemoteExecutionBackend(
                endpoints, tmp_path / "results", time_scale=0.01,
                observability=obs,
            )
            # "umr" probes; drop_after=0 severs on the first process
            # request, which is the dropper's probe chunk
            with pytest.raises(ExecutionError, match="lost during probe"):
                backend.execute(
                    grid, make_scheduler("umr"), division, None,
                    options=DispatchOptions(observability=obs),
                )
            assert backend.last_substrate.host.disconnects >= 1
        lost = obs.ring_events(NET_WORKER_LOST)
        assert len(lost) >= 1
        assert lost[0].fields["worker"] == "dropper0"
        counter = obs.metrics.counter(
            "repro_net_workers_lost_total",
            "Worker connections lost (mid-run or during probing)",
        )
        assert counter.value >= 1

    def test_pool_stop_leaves_no_live_children(self, grid, division, tmp_path):
        """Every spawned socket worker is reaped, on success and error paths."""
        pool = RemoteWorkerPool()
        endpoints = self._spawn_with_one_dropper(pool, tmp_path)
        backend = RemoteExecutionBackend(
            endpoints, tmp_path / "results", time_scale=0.01
        )
        with pytest.raises(ExecutionError):
            backend.execute(
                grid, make_scheduler("simple-2"), division, None,
                options=parity_options(),
            )
        assert len(pool.processes) == len(grid.workers)
        pool.stop()
        pool.stop()  # idempotent
        for process in pool.processes:
            assert process.poll() is not None  # exited and reaped

    def test_failed_spawn_reaps_partial_fleet(self, tmp_path):
        """A bad app spec on worker 2 must not leak worker 1."""
        pool = RemoteWorkerPool()
        pool.spawn(1, app_spec(DigestApp), tmp_path / "workers")
        with pytest.raises(ExecutionError, match="fatal|failed to start"):
            pool.spawn(1, "no.such.module:Nope", tmp_path / "workers",
                       name_prefix="bad")
        for process in pool.processes:
            assert process.poll() is not None
