"""Failure-injection tests: worker failures must surface, never hang."""

import pytest

from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.errors import ExecutionError
from repro.execution.appspec import app_spec
from repro.execution.local import LocalExecutionBackend
from repro.execution.process_backend import ProcessExecutionBackend
from repro.execution.testing import FlakyApp, SlowApp
from repro.platform.resources import Cluster, Grid


@pytest.fixture
def grid():
    return Grid.from_clusters(
        Cluster.homogeneous("f", 2, speed=500.0, bandwidth=5000.0,
                            comm_latency=0.02, comp_latency=0.01)
    )


@pytest.fixture
def division(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(1024))
    return UniformBytesDivision(path, stepsize=64)


class TestFlakyApp:
    def test_deterministic_failure_index(self):
        app = FlakyApp(fail_on_calls=[2])
        app.process(b"a")
        with pytest.raises(ExecutionError, match="call 2"):
            app.process(b"b")

    def test_random_failures_seeded(self):
        a = FlakyApp(fail_probability=0.5, seed=1)
        b = FlakyApp(fail_probability=0.5, seed=1)

        def pattern(app):
            out = []
            for _ in range(20):
                try:
                    app.process(b"x")
                    out.append(True)
                except ExecutionError:
                    out.append(False)
            return out

        assert pattern(a) == pattern(b)
        assert not all(pattern(FlakyApp(fail_probability=0.5, seed=2)))

    def test_invalid_probability(self):
        with pytest.raises(ExecutionError):
            FlakyApp(fail_probability=1.5)


class TestLocalBackendFailures:
    def test_mid_run_failure_raises_not_hangs(self, grid, division, tmp_path):
        backend = LocalExecutionBackend(
            tmp_path / "work", app=FlakyApp(fail_on_calls=[5]), time_scale=0.01
        )
        with pytest.raises(ExecutionError, match="injected"):
            backend.execute(grid, make_scheduler("wf"), division, None,
                            probe_units=64.0)

    def test_probe_failure_raises(self, grid, division, tmp_path):
        backend = LocalExecutionBackend(
            tmp_path / "work", app=FlakyApp(fail_on_calls=[1]), time_scale=0.01
        )
        with pytest.raises(ExecutionError, match="probe"):
            backend.execute(grid, make_scheduler("wf"), division, None,
                            probe_units=64.0)


class TestProcessBackendFailures:
    def test_chunk_failure_propagates_from_worker_process(self, grid, division,
                                                          tmp_path):
        # SIMPLE-n does not probe, so each worker process sees only its
        # two real chunks; fail the second one.
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(FlakyApp, fail_on_calls=[2]),
            time_scale=0.01,
        )
        with pytest.raises(ExecutionError, match="injected|failed"):
            backend.execute(grid, make_scheduler("simple-2"), division, None,
                            probe_units=64.0)

    def test_mid_run_failure_leaves_no_live_children(self, grid, division,
                                                     tmp_path):
        """Every spawned worker process is reaped on the error path."""
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(FlakyApp, fail_on_calls=[2]),
            time_scale=0.01,
        )
        with pytest.raises(ExecutionError):
            backend.execute(grid, make_scheduler("simple-2"), division, None,
                            probe_units=64.0)
        host = backend.last_substrate.host
        assert len(host.processes) == len(grid.workers)
        for process in host.processes:
            assert process.poll() is not None  # exited and reaped

    def test_slow_app_is_padded_not_fatal(self, grid, division, tmp_path):
        """A slower-than-modeled app stretches times but completes."""
        backend = ProcessExecutionBackend(
            tmp_path / "work",
            app_spec=app_spec(SlowApp, delay_s=0.01),
            time_scale=0.01,
        )
        report = backend.execute(grid, make_scheduler("simple-1"), division,
                                 None, probe_units=64.0)
        report.validate()
