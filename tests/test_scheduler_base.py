"""Tests for the shared scheduler protocol."""

import pytest

from repro.core.base import (
    ChunkInfo,
    DispatchRequest,
    Scheduler,
    SchedulerConfig,
    WorkerState,
)
from repro.errors import SchedulingError
from repro.platform.resources import WorkerSpec


def _estimates(n=2):
    return [WorkerSpec(f"w{i}", speed=float(i + 1), bandwidth=10.0) for i in range(n)]


class _Dummy(Scheduler):
    name = "dummy"

    def _plan(self, config):
        self.planned = True

    def next_dispatch(self, now, workers):
        return None


class TestSchedulerConfig:
    def test_valid_config(self):
        c = SchedulerConfig(estimates=_estimates(3), total_load=100.0, quantum=1.0)
        assert c.num_workers == 3
        assert c.total_speed == pytest.approx(6.0)

    def test_empty_estimates_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(estimates=[], total_load=100.0)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(estimates=_estimates(), total_load=0.0)

    def test_load_below_quantum_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(estimates=_estimates(), total_load=0.5, quantum=1.0)


class TestDispatchRequest:
    def test_valid(self):
        r = DispatchRequest(worker_index=1, units=5.0, round_index=2, phase="x")
        assert r.units == 5.0

    def test_invalid_worker(self):
        with pytest.raises(SchedulingError):
            DispatchRequest(worker_index=-1, units=5.0)

    def test_nonpositive_units(self):
        with pytest.raises(SchedulingError):
            DispatchRequest(worker_index=0, units=0.0)


class TestSchedulerLifecycle:
    def test_use_before_configure_fails(self):
        s = _Dummy()
        with pytest.raises(SchedulingError, match="configure"):
            _ = s.config

    def test_configure_triggers_plan(self):
        s = _Dummy()
        s.configure(SchedulerConfig(estimates=_estimates(), total_load=10.0))
        assert s.planned
        assert s.configured

    def test_dispatch_bookkeeping(self):
        s = _Dummy()
        s.configure(SchedulerConfig(estimates=_estimates(), total_load=10.0))
        assert s.remaining_units == 10.0
        s.notify_dispatched(ChunkInfo(0, 0, 4.0, 0, "x"))
        assert s.dispatched_units == 4.0
        assert s.remaining_units == 6.0
        assert not s.done_dispatching()
        s.notify_dispatched(ChunkInfo(1, 1, 6.0, 0, "x"))
        assert s.done_dispatching()

    def test_reconfigure_resets_bookkeeping(self):
        s = _Dummy()
        s.configure(SchedulerConfig(estimates=_estimates(), total_load=10.0))
        s.notify_dispatched(ChunkInfo(0, 0, 10.0, 0, "x"))
        s.configure(SchedulerConfig(estimates=_estimates(), total_load=20.0))
        assert s.dispatched_units == 0.0
        assert s.remaining_units == 20.0

    def test_speed_weights_normalized(self):
        s = _Dummy()
        weights = s.speed_weights(_estimates(2))  # speeds 1, 2
        assert weights == [pytest.approx(1 / 3), pytest.approx(2 / 3)]

    def test_default_notifications_are_noops(self):
        s = _Dummy()
        s.configure(SchedulerConfig(estimates=_estimates(), total_load=10.0))
        s.notify_arrival(ChunkInfo(0, 0, 1.0, 0, "x"), now=0.0)
        s.notify_completion(ChunkInfo(0, 0, 1.0, 0, "x"), 1.0, 1.0, 1.1)
        assert s.annotations() == {}


class TestWorkerState:
    def test_observed_rate(self):
        w = WorkerState(index=0, name="w")
        assert w.observed_rate is None
        w.completed_units = 10.0
        w.busy_time = 5.0
        assert w.observed_rate == pytest.approx(2.0)
