"""Fixture: adapters that structurally conform to the protocols."""


class GoodClock:
    def now(self):
        return 0.0


class GoodTransport:
    supports_outputs = False

    def __init__(self):
        self._core = None

    def bind(self, core):
        self._core = core

    @property
    def busy(self):
        return False

    def send(self, chunk, extent, retries=0):  # defaulted extras are fine
        del chunk, extent, retries


class GoodHost:
    def __init__(self):
        # instance attribute satisfies the protocol's class-level flag
        self.time_advances_when_idle = True

    def enqueue(self, chunk, payload):
        del chunk, payload

    def poll(self):
        pass
