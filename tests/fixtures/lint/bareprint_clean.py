"""Fixture: library code reporting through the logging bridge."""

import logging

_log = logging.getLogger("repro.obs.fixture")


def report(result):
    _log.info("makespan: %s", result)
    return result
