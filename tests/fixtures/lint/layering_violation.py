"""Fixture: a backend reaching into the scheduler layer (2 violations)."""

from ..core.base import Scheduler  # violation: substrates must not see core.base


def drive(scheduler: Scheduler, now, states):
    return scheduler.next_dispatch(now, states)  # violation: driving is dispatch's job
