"""Fixture: emit/metric names outside the closed taxonomy (4 violations)."""

from ..obs.events import CHUNK_DISPATCHED


def run(bus, metrics, name):
    bus.emit(CHUNK_DISPATCHED, t=0)  # ok: declared constant
    bus.emit("chunk.dispached", t=1)  # violation: typo'd literal
    bus.emit(name)  # violation: dynamic name
    metrics.counter("chunks_total")  # violation: missing repro_ prefix
    metrics.histogram(f"repro_{name}_seconds")  # violation: f-string name
