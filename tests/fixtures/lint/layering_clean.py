"""Fixture: a backend that stays a substrate."""


class SubstrateShim:
    def __init__(self, clock, transport, host):
        self.clock = clock
        self.transport = transport
        self.host = host
