"""Fixture: simulated-time module that takes 'now' from the clock protocol."""


class EngineClock:
    def __init__(self, engine):
        self._engine = engine

    def now(self):
        return self._engine.now


def step(clock, horizon):
    return min(clock.now(), horizon)
