"""Violating fixture: a store module reaching up into scheduling layers."""

import repro.simulation.master
from repro import dispatch

from ..dispatch.core import DispatchCore
from ..simulation import master


def persist(core: DispatchCore) -> None:
    master.run(core)
    dispatch.drive(core)
    repro.simulation.master.run(core)
