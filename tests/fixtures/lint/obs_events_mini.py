"""Fixture: miniature closed taxonomy (stands in for obs/events.py)."""

CHUNK_DISPATCHED = "chunk.dispatched"
JOB_DONE = "job.done"

#: Not an event name; must not leak into the taxonomy.
OBS_LOGGER_NAME = "repro.obs"

EVENT_TYPES = frozenset({CHUNK_DISPATCHED, JOB_DONE})
