"""Fixture: async code that pushes blocking work off the loop."""

import asyncio
import socket
import time


def _probe(address):
    # Synchronous helper: blocking here is fine, it runs in the executor.
    with socket.create_connection(address, timeout=1.0):
        return True


async def handler(loop):
    await asyncio.sleep(0.1)
    reachable = await loop.run_in_executor(None, _probe, ("example", 80))
    await asyncio.to_thread(time.sleep, 0.01)  # passed by reference: no call

    def render():
        # nested sync def runs wherever it is called from, not on the loop
        with open("state.json") as fh:
            return fh.read()

    del render
    return reachable


def sync_path():
    time.sleep(0.1)  # plain sync code may block
