"""Fixture: library code printing straight to stdout (1 violation)."""


def report(result):
    print("makespan:", result)  # violation: diagnostics go through repro.obs
    return result
