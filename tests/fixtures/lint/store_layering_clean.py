"""Clean fixture: a store module keeps to stdlib + sibling store modules."""

import json
import sqlite3

from .base import StoredJob


def persist(conn: sqlite3.Connection, job: StoredJob) -> None:
    conn.execute("INSERT INTO jobs VALUES (?)", (json.dumps(job.job_id),))
