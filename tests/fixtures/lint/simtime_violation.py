"""Fixture: wall-clock reads inside a simulated-time module (4 violations)."""

import time
from datetime import datetime
from time import perf_counter as pc


def step():
    start = time.time()  # violation: time.time
    pc()  # violation: aliased perf_counter
    time.sleep(0.1)  # violation: blocking sleep
    datetime.now()  # violation: argless now()
    datetime.now(tz=None)  # ok: explicit tz argument is a deliberate timestamp
    return start
