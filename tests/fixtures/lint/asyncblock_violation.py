"""Fixture: blocking calls on the event loop (4 violations)."""

import socket
import time
from time import sleep


async def handler(loop):
    time.sleep(0.1)  # violation
    sleep(0.1)  # violation: aliased from-import
    socket.create_connection(("example", 80))  # violation
    with open("state.json") as fh:  # violation: blocking builtin
        return fh.read()
