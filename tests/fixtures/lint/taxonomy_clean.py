"""Fixture: every emit/metric name resolves statically into the taxonomy."""

from ..obs import events
from ..obs.events import CHUNK_DISPATCHED, JOB_DONE

QUEUE_DEPTH_METRIC = "repro_fixture_queue_depth"


def run(bus, metrics):
    bus.emit(CHUNK_DISPATCHED, t=0)
    bus.emit(JOB_DONE)
    bus.emit(events.JOB_DONE, t=2)
    bus.emit("job.done", t=3)
    metrics.counter("repro_fixture_total")
    metrics.gauge(QUEUE_DEPTH_METRIC)
