"""Fixture: miniature protocol module (stands in for dispatch/protocols.py)."""

from typing import Protocol


class Clock(Protocol):
    def now(self) -> float:
        ...


class Transport(Protocol):
    supports_outputs: bool

    def bind(self, core) -> None:
        ...

    @property
    def busy(self) -> bool:
        ...

    def send(self, chunk, extent) -> None:
        ...


class ComputeHost(Protocol):
    time_advances_when_idle: bool

    def enqueue(self, chunk, payload) -> None:
        ...

    def poll(self) -> None:
        ...
