"""Fixture: adapters that drifted from the protocols (5 violations)."""


class BadClock:
    def now_time(self):  # violation: protocol method now() missing
        return 0.0


class BadTransport:
    # violations: supports_outputs and busy never defined
    def bind(self, core):
        self._core = core

    def send(self, chunk, units):  # violation: parameter name drift
        del chunk, units


class BadHost:
    time_advances_when_idle = True

    def enqueue(self, chunk, payload, retries):  # violation: undefaulted extra
        del chunk, payload, retries

    def poll(self):
        pass
