"""Tests for execution history and learned-gamma RUMR (paper Section 4.2's
"learned from past application executions" suggestion)."""

import statistics

import pytest

from repro.apst.client import APSTClient
from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.apst.history import MIN_RUNS_TO_LEARN, ApplicationHistory, RunRecord
from repro.core.rumr import RUMR, rumr_with_known_gamma
from repro.core.umr import UMR
from repro.errors import ReproError, SchedulingError, SpecificationError
from repro.platform.presets import das2_cluster, grail_lan
from repro.simulation.master import simulate_run


def _report(small_grid, gamma=0.1, seed=0):
    return simulate_run(small_grid, RUMR(), total_load=500.0, gamma=gamma, seed=seed)


class TestApplicationHistory:
    def test_record_and_learn(self, small_grid):
        history = ApplicationHistory()
        for seed in range(3):
            history.record("app:input", _report(small_grid, seed=seed))
        assert history.run_count("app:input") == 3
        learned = history.learned_gamma("app:input")
        assert learned == pytest.approx(0.1, abs=0.06)

    def test_too_few_runs_returns_none(self, small_grid):
        history = ApplicationHistory()
        history.record("app", _report(small_grid))
        assert history.run_count("app") < MIN_RUNS_TO_LEARN or True
        assert history.learned_gamma("app") is None
        assert history.learned_gamma("unknown") is None

    def test_median_is_robust_to_outlier_run(self):
        history = ApplicationHistory()
        history.runs["a"] = [
            RunRecord("rumr", 100.0, g) for g in (0.10, 0.11, 0.09, 0.95)
        ]
        assert history.learned_gamma("a") == pytest.approx(0.105, abs=0.01)

    def test_save_load_round_trip(self, small_grid, tmp_path):
        history = ApplicationHistory()
        history.record("app", _report(small_grid, seed=1))
        history.record("app", _report(small_grid, seed=2))
        path = history.save(tmp_path / "history.json")
        loaded = ApplicationHistory.load(path)
        assert loaded.run_count("app") == 2
        assert loaded.learned_gamma("app") == history.learned_gamma("app")

    def test_missing_file_is_empty_history(self, tmp_path):
        history = ApplicationHistory.load(tmp_path / "nope.json")
        assert history.runs == {}

    def test_malformed_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        with pytest.raises(ReproError, match="malformed"):
            ApplicationHistory.load(bad)

    def test_version_checked(self, tmp_path):
        f = tmp_path / "old.json"
        f.write_text('{"format_version": 99, "runs": {}}')
        with pytest.raises(ReproError, match="format"):
            ApplicationHistory.load(f)

    def test_empty_application_name_rejected(self, small_grid):
        with pytest.raises(ReproError):
            ApplicationHistory().record("", _report(small_grid))

    def test_gamma_stability(self):
        history = ApplicationHistory()
        history.runs["a"] = [RunRecord("rumr", 1.0, 0.1)] * 5
        assert history.gamma_stability("a") == 0.0


class TestKnownGammaRUMR:
    def test_low_gamma_degenerates_to_umr(self):
        scheduler = rumr_with_known_gamma(0.0)
        assert isinstance(scheduler, UMR)
        assert scheduler.name == "rumr-known"

    def test_high_gamma_uses_fixed_fraction(self):
        scheduler = rumr_with_known_gamma(0.2)
        assert isinstance(scheduler, RUMR)
        assert scheduler._fixed_fraction == pytest.approx(0.5)

    def test_moderate_gamma_fraction_scales(self):
        scheduler = rumr_with_known_gamma(0.1)
        assert scheduler._fixed_fraction == pytest.approx(0.25)

    def test_negative_gamma_rejected(self):
        with pytest.raises(SchedulingError):
            rumr_with_known_gamma(-0.1)

    def test_known_gamma_beats_online_rumr_at_moderate_gamma(self):
        """The paper's point: with gamma known, the switch happens in time
        and RUMR's two-phase design works at gamma = 10%."""
        grid = das2_cluster(16)
        known = statistics.mean(
            simulate_run(grid, rumr_with_known_gamma(0.10), total_load=10_000.0,
                         gamma=0.10, seed=s).makespan
            for s in range(6)
        )
        online = statistics.mean(
            simulate_run(grid, RUMR(), total_load=10_000.0, gamma=0.10,
                         seed=s).makespan
            for s in range(6)
        )
        assert known < online * 0.95


TASK_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="rumr-learned"/>
</task>
"""


class TestDaemonLearning:
    @pytest.fixture
    def learning_daemon(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(10) * 1830)  # 18300 bytes
        grid = grail_lan(total_load=18300.0)
        return APSTDaemon(
            grid,
            config=DaemonConfig(
                base_dir=tmp_path,
                gamma=0.20,
                noise_autocorrelation=0.6,
                seed=5,
                history_path=tmp_path / "history.json",
            ),
        )

    def test_requires_history_path(self, tmp_path):
        (tmp_path / "load.bin").write_bytes(bytes(1000))
        daemon = APSTDaemon(
            das2_cluster(4, total_load=1000.0),
            config=DaemonConfig(base_dir=tmp_path),
        )
        daemon.submit(TASK_XML)
        with pytest.raises(SpecificationError, match="history_path"):
            daemon.run_pending()

    def test_history_accumulates_across_jobs(self, learning_daemon, tmp_path):
        client = APSTClient(learning_daemon)
        for _ in range(3):
            client.submit_and_run(TASK_XML)
        history = ApplicationHistory.load(tmp_path / "history.json")
        assert history.run_count("app:load.bin") == 3

    def test_learned_gamma_converges_to_configured(self, learning_daemon, tmp_path):
        client = APSTClient(learning_daemon)
        for _ in range(4):
            client.submit_and_run(TASK_XML)
        history = ApplicationHistory.load(tmp_path / "history.json")
        learned = history.learned_gamma("app:load.bin")
        assert learned == pytest.approx(0.20, abs=0.08)

    def test_first_run_is_online_later_runs_preplanned(self, learning_daemon):
        client = APSTClient(learning_daemon)
        first = client.submit_and_run(TASK_XML)
        assert first.annotations.get("rumr_mode") == "online"
        client.submit_and_run(TASK_XML)
        third = client.submit_and_run(TASK_XML)
        # with >= MIN_RUNS_TO_LEARN records, the scheduler is pre-planned
        assert third.annotations.get("rumr_mode") in ("fixed", None)
        assert third.algorithm == "rumr-known"
