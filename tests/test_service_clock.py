"""Tests for the service clock: interleaved multi-job simulation."""

import pytest

from repro import das2_cluster, make_scheduler
from repro.errors import ServiceError
from repro.service import ServiceClock, ServiceJobSpec


def spec(job_id, load, *, arrival=0.0, algorithm="umr", **kwargs):
    return ServiceJobSpec(
        job_id=job_id,
        scheduler_factory=lambda: make_scheduler(algorithm),
        total_load=load,
        arrival=arrival,
        seed=3,
        **kwargs,
    )


@pytest.fixture
def grid():
    return das2_cluster(nodes=8)


def big_and_small(grid_unused=None):
    """One long job at t=0, one short job arriving mid-flight."""
    return [spec(1, 40_000.0, arrival=0.0), spec(2, 4_000.0, arrival=100.0)]


class TestBasics:
    def test_single_job_runs_in_one_full_grid_segment(self, grid):
        out = ServiceClock(grid, policy="fair-share").run([spec(1, 10_000.0)])
        record = out.service.records[0]
        assert record.segments == 1
        assert record.peak_workers == len(grid)
        assert record.wait == 0.0
        assert record.stretch == pytest.approx(1.0)

    def test_reports_validate_and_conserve_load(self, grid):
        out = ServiceClock(grid, policy="fair-share").run(big_and_small())
        for job_id, report in out.reports.items():
            report.validate()  # causality + conservation + link exclusivity
        assert out.reports[1].total_load == 40_000.0
        assert out.reports[2].total_load == 4_000.0

    def test_determinism(self, grid):
        out1 = ServiceClock(grid, policy="fair-share").run(big_and_small())
        out2 = ServiceClock(grid, policy="fair-share").run(big_and_small())
        assert out1.reports == out2.reports
        assert out1.service.records == out2.service.records
        assert out1.service.busy_worker_seconds == out2.service.busy_worker_seconds

    def test_duplicate_job_ids_rejected(self, grid):
        with pytest.raises(ServiceError, match="duplicate"):
            ServiceClock(grid).run([spec(1, 100.0), spec(1, 100.0)])

    def test_empty_run(self, grid):
        out = ServiceClock(grid).run([])
        assert out.reports == {} and out.service.num_jobs == 0


class TestMidFlightRelease:
    """The tentpole behaviour: released capacity accelerates survivors."""

    def test_survivor_lease_grows_after_neighbour_finishes(self, grid):
        out = ServiceClock(grid, policy="fair-share").run(big_and_small())
        big = next(r for r in out.service.records if r.job_id == 1)
        small = next(r for r in out.service.records if r.job_id == 2)
        # the small job's arrival and completion each re-lease the big job
        assert big.segments >= 3
        # after the small job finished, the big one got the whole grid back
        assert big.peak_workers == len(grid)
        assert small.finish < big.finish

    def test_segmented_report_carries_service_annotations(self, grid):
        out = ServiceClock(grid, policy="fair-share").run(big_and_small())
        report = out.reports[1]
        assert report.annotations["service_segments"] >= 3
        assert report.annotations["service_policy"] == "fair-share"

    def test_fair_share_beats_static_on_big_job_finish(self, grid):
        """Static partitions never return capacity; fair-share does."""
        fair = ServiceClock(grid, policy="fair-share").run(big_and_small())
        static = ServiceClock(grid, policy="static", slots=2).run(big_and_small())
        fair_big = next(r for r in fair.service.records if r.job_id == 1)
        static_big = next(r for r in static.service.records if r.job_id == 1)
        assert fair_big.finish < static_big.finish
        assert fair.service.span < static.service.span


class TestPolicies:
    def test_fifo_serializes_jobs(self, grid):
        out = ServiceClock(grid, policy="fifo").run(big_and_small())
        big = next(r for r in out.service.records if r.job_id == 1)
        small = next(r for r in out.service.records if r.job_id == 2)
        assert small.start >= big.finish  # waited for the whole big job
        assert small.wait > 0
        assert big.segments == small.segments == 1

    def test_fifo_matches_solo_makespan(self, grid):
        """A FIFO job runs exactly as it would alone on the platform."""
        out = ServiceClock(grid, policy="fifo").run(big_and_small())
        big = next(r for r in out.service.records if r.job_id == 1)
        assert big.turnaround == pytest.approx(big.dedicated_makespan)

    def test_static_jobs_start_immediately_but_finish_slower(self, grid):
        out = ServiceClock(grid, policy="static", slots=2).run(big_and_small())
        for record in out.service.records:
            assert record.wait == 0.0
            assert record.peak_workers == len(grid) // 2

    def test_priority_controls_admission_order(self, grid):
        specs = [
            spec(1, 30_000.0, arrival=0.0),
            spec(2, 5_000.0, arrival=10.0, priority=0),
            spec(3, 5_000.0, arrival=10.0, priority=5),
        ]
        out = ServiceClock(grid, policy="fifo").run(specs)
        starts = {r.job_id: r.start for r in out.service.records}
        assert starts[3] < starts[2]  # higher priority admitted first

    def test_tenant_fair_share_breaks_ties(self, grid):
        """Among equal priorities, the least-served tenant goes first."""
        specs = [
            spec(1, 30_000.0, arrival=0.0, tenant="heavy"),
            spec(2, 5_000.0, arrival=10.0, tenant="heavy"),
            spec(3, 5_000.0, arrival=20.0, tenant="light"),
        ]
        out = ServiceClock(grid, policy="fifo").run(specs)
        starts = {r.job_id: r.start for r in out.service.records}
        # job 2 arrived first, but tenant "heavy" already burned
        # worker-seconds on job 1, so "light" is admitted first
        assert starts[3] < starts[2]


class TestServiceReport:
    def test_aggregates_are_consistent(self, grid):
        out = ServiceClock(grid, policy="fair-share").run(big_and_small())
        service = out.service
        assert service.num_jobs == 2
        assert 0.0 < service.utilization <= 1.0
        assert service.mean_stretch >= 1.0
        assert service.max_stretch >= service.mean_stretch
        assert service.span == pytest.approx(
            max(r.finish for r in service.records)
        )

    def test_render_mentions_every_job_and_policy(self, grid):
        out = ServiceClock(grid, policy="fair-share").run(big_and_small())
        text = out.service.render()
        assert "policy=fair-share" in text
        assert "stretch" in text and "utilization" in text
