"""Integration tests for the real local execution backend."""

import zlib

import pytest

from repro.apst.division import CallbackDivision, UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.errors import ExecutionError
from repro.execution.local import DigestApp, LocalExecutionBackend
from repro.platform.resources import Cluster, Grid
from repro.workloads.video import (
    avimerge,
    make_avisplit_callback,
    mencoder_encode,
    write_dv_file,
)


@pytest.fixture
def lan_grid():
    return Grid.from_clusters(
        Cluster.homogeneous("lan", 3, speed=20.0, bandwidth=200.0,
                            comm_latency=0.2, comp_latency=0.1)
    )


@pytest.fixture
def byte_division(tmp_path):
    path = tmp_path / "load.bin"
    path.write_bytes(bytes(range(256)) * 8)  # 2048 bytes
    return UniformBytesDivision(path, stepsize=64)


class TestLocalBackend:
    def test_digest_app_end_to_end(self, lan_grid, byte_division, tmp_path):
        backend = LocalExecutionBackend(tmp_path / "work", time_scale=0.01)
        report = backend.execute(
            lan_grid, make_scheduler("wf"), byte_division, None, probe_units=64.0
        )
        report.validate()
        assert report.total_load == 2048.0
        assert report.annotations["backend"] == "local-execution"
        assert len(backend.last_outputs) == report.num_chunks

    def test_outputs_ordered_by_offset(self, lan_grid, byte_division, tmp_path):
        backend = LocalExecutionBackend(tmp_path / "work", time_scale=0.01)
        backend.execute(
            lan_grid, make_scheduler("simple-2"), byte_division, None,
            probe_units=64.0,
        )
        # digest outputs exist and are non-empty, one per chunk
        assert all(p.is_file() and p.stat().st_size == 32 for p in backend.last_outputs)

    def test_umr_runs_on_local_backend(self, lan_grid, byte_division, tmp_path):
        backend = LocalExecutionBackend(tmp_path / "work", time_scale=0.01)
        report = backend.execute(
            lan_grid, make_scheduler("umr"), byte_division, None, probe_units=64.0
        )
        assert sum(c.units for c in report.chunks) == pytest.approx(2048.0)

    def test_transfers_are_serialized(self, lan_grid, byte_division, tmp_path):
        backend = LocalExecutionBackend(tmp_path / "work", time_scale=0.01)
        report = backend.execute(
            lan_grid, make_scheduler("simple-3"), byte_division, None,
            probe_units=64.0,
        )
        intervals = sorted((c.send_start, c.send_end) for c in report.chunks)
        for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-6

    def test_invalid_time_scale(self, tmp_path):
        with pytest.raises(ExecutionError):
            LocalExecutionBackend(tmp_path, time_scale=0.0)

    def test_failing_app_surfaces_error(self, lan_grid, byte_division, tmp_path):
        class Broken:
            def process(self, data, units=None):
                raise RuntimeError("app exploded")

        backend = LocalExecutionBackend(tmp_path / "work", app=Broken(),
                                        time_scale=0.01)
        with pytest.raises(ExecutionError):
            backend.execute(
                lan_grid, make_scheduler("simple-1"), byte_division, None,
                probe_units=64.0,
            )


class TestCaseStudyPipeline:
    def test_parallel_encoding_is_byte_identical(self, lan_grid, tmp_path):
        """The Section 5 workflow end to end on the real backend."""
        video = tmp_path / "in.tdv"
        write_dv_file(video, frames=40, frame_bytes=256, seed=1)

        class EncodeApp:
            def process(self, data, units=None):
                src = tmp_path / f"enc_{id(data)}.tdv"
                src.write_bytes(data)
                dst = src.with_suffix(".tm4v")
                mencoder_encode(src, dst)
                return dst.read_bytes()

        division = CallbackDivision(
            40, function=make_avisplit_callback(video), workdir=tmp_path
        )
        backend = LocalExecutionBackend(tmp_path / "work", app=EncodeApp(),
                                        time_scale=0.01)
        report = backend.execute(
            lan_grid, make_scheduler("rumr"), division, None, probe_units=4.0
        )
        assert sum(c.units for c in report.chunks) == pytest.approx(40.0)

        merged = tmp_path / "merged.tm4v"
        avimerge(backend.last_outputs, merged)
        serial = tmp_path / "serial.tm4v"
        mencoder_encode(video, serial)
        assert merged.read_bytes() == serial.read_bytes()

    def test_digest_app_is_default(self, tmp_path):
        backend = LocalExecutionBackend(tmp_path)
        assert isinstance(backend._app, DigestApp)
        assert backend._app.process(b"abc") == __import__("hashlib").sha256(b"abc").digest()
