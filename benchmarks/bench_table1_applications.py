"""Table 1: characteristics of four divisible load applications.

Regenerates every derived column of the paper's Table 1 -- the
communication/computation ratio r (from the measured input sizes and
runtimes at the paper's effective network rate) and the per-unit-cost
uncertainty statistics gamma and (max-min)/mean (from the per-application
unit-cost models) -- and checks them against the published values.
"""

import sys

from _support import RESULTS_DIR

from repro.analysis.tables import render_table
from repro.workloads.applications import TABLE1_APPLICATIONS, table1_rows


def test_table1_reproduction(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    table = render_table(
        ["application", "input(MB)", "runtime(s)", "r", "paper r",
         "gamma", "paper gamma", "spread", "paper spread"],
        [
            [r["application"], r["input_mb"], r["runtime_s"],
             r["r"], r["paper_r"], r["gamma"], r["paper_gamma"],
             r["spread"], r["paper_spread"]]
            for r in rows
        ],
        title="Table 1: divisible load application characteristics "
              "(measured vs paper)",
    )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table1.txt").write_text(table + "\n")

    by_name = {r["application"]: r for r in rows}
    # r reproduces within 2% for every application
    for profile in TABLE1_APPLICATIONS:
        measured = by_name[profile.name]["r"]
        assert abs(measured - profile.paper_r) / profile.paper_r < 0.02
    # uncertainty columns reproduce the paper's shape
    assert 0.04 < by_name["HMMER"]["gamma"] < 0.15
    assert by_name["HMMER"]["spread"] > 10.0          # paper: 2700%
    assert 0.07 < by_name["MPEG"]["gamma"] < 0.13     # paper: 10%
    assert 0.2 < by_name["MPEG"]["spread"] < 0.45     # paper: 30%
    assert by_name["VFleet"]["gamma"] < 0.02          # paper: 1%
    assert by_name["Data Mining"]["gamma"] is None    # paper: N/A
