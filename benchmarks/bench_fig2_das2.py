"""Figure 2: DAS-2 cluster, 16 nodes, r = 37, gamma in {0%, 10%}.

Reproduces both panels of Figure 2 with the paper's methodology (average
of 10 runs per algorithm, algorithms run back-to-back on matched seeds)
and asserts the paper's findings:

* gamma = 0:  UMR/RUMR best (identical -- RUMR degenerates to UMR);
  SIMPLE-5 ~5% slower; Factoring ~10% slower; SIMPLE-1 far behind.
* gamma = 10%: Weighted Factoring ~8% faster than UMR; online RUMR's
  switch comes too late in most runs so it tracks UMR; Fixed-RUMR best.
"""

import pytest
from _support import PAPER_FIG2_DAS2, emit_panel, run_panel

from repro.platform.presets import das2_cluster


@pytest.fixture(scope="module")
def panels():
    return {}


def test_fig2_das2_gamma0(benchmark, panels):
    result = benchmark.pedantic(
        run_panel, args=("Figure 2 -- DAS-2 (16 nodes, r=37), gamma=0",
                         lambda: das2_cluster(16), 0.0),
        rounds=1, iterations=1,
    )
    panels[0.0] = result
    emit_panel(result, PAPER_FIG2_DAS2[0.0], "fig2_das2_gamma0.txt")

    slow = result.slowdowns()
    assert slow["umr"] < 0.02
    assert result.makespan("rumr") == pytest.approx(result.makespan("umr"), rel=1e-6)
    assert 0.02 < slow["simple-5"] < 0.15           # paper: +5%
    assert 0.04 < slow["wf"] < 0.18                 # paper: +10%
    assert slow["simple-1"] > 0.20                  # paper: +26%
    assert slow["simple-1"] > slow["simple-5"]


def test_fig2_das2_gamma10(benchmark, panels):
    result = benchmark.pedantic(
        run_panel, args=("Figure 2 -- DAS-2 (16 nodes, r=37), gamma=10%",
                         lambda: das2_cluster(16), 0.10),
        rounds=1, iterations=1,
    )
    panels[0.10] = result
    emit_panel(result, PAPER_FIG2_DAS2[0.10], "fig2_das2_gamma10.txt")

    # WF faster than UMR (paper: ~8%)
    assert result.makespan("wf") < result.makespan("umr") * 0.96
    # online RUMR fails to use Factoring in most runs and tracks UMR
    rumr = result.by_algorithm["rumr"]
    assert rumr.count_annotation("rumr_switched") <= 3
    assert result.makespan("rumr") > result.makespan("wf")
    # Fixed-RUMR does the best
    assert result.best_algorithm == "fixed-rumr"


def test_fig2_uncertainty_degrades_umr_more_than_wf(benchmark, panels):
    """Cross-panel check: going 0 -> 10% gamma hurts UMR much more than WF."""
    if 0.0 not in panels or 0.10 not in panels:
        pytest.skip("panel tests did not run")

    def degradation():
        return {
            name: panels[0.10].makespan(name) / panels[0.0].makespan(name) - 1.0
            for name in ("umr", "wf")
        }

    d = benchmark.pedantic(degradation, rounds=1, iterations=1)
    assert d["umr"] > d["wf"] + 0.05
