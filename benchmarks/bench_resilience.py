"""Resilience bench: how much straggler makespan speculation recovers.

The acceptance scenario: four workers the scheduler believes are equal
(``estimate_source="manual"`` feeds it identical specs), but one is
actually 10x slower.  Without the resilience tier the run's makespan is
dominated by the straggler's serial queue; with speculative re-dispatch
the stuck chunks are twinned onto idle fast workers and the first
completion wins.  The bar: speculation must recover at least 30 % of
the makespan lost to the straggler,

    recovered = (no_spec - with_spec) / (no_spec - all_fast) >= 0.30

Headline numbers go to ``benchmarks/BENCH_resilience.json`` as one
record of the benchmark trajectory (see ``_trajectory.py``); CI gates
``spec_makespan_ratio`` (with-speculation makespan over the all-fast
ideal, lower is better) against the recorded history.
"""

import json
import sys
from pathlib import Path

import _trajectory

from repro.core.registry import make_scheduler
from repro.dispatch.core import DispatchOptions
from repro.platform.resources import Cluster, Grid, WorkerSpec
from repro.resilience import ResiliencePolicy, StragglerPolicy
from repro.simulation.master import simulate_run

RESULTS_PATH = Path(__file__).parent / "BENCH_resilience.json"

TOTAL_LOAD = 2000.0
ALGORITHM = "simple-5"
FAST_SPEED = 500.0
SLOWDOWN = 10.0
RECOVERY_FLOOR = 0.30


def _grid(straggler: bool) -> Grid:
    workers = [
        WorkerSpec(
            name=f"w{i}",
            speed=FAST_SPEED / (SLOWDOWN if straggler and i == 0 else 1.0),
            bandwidth=5000.0,
            cluster="bench",
        )
        for i in range(4)
    ]
    return Grid.from_clusters(Cluster(name="bench", workers=workers))


def _claimed_fast() -> list[WorkerSpec]:
    """What the scheduler is told: every worker looks fast."""
    return list(_grid(straggler=False).workers)


def _makespan(grid: Grid, *, resilience: ResiliencePolicy | None) -> float:
    options = DispatchOptions(
        estimate_source="manual",
        manual_estimates=_claimed_fast(),
    )
    if resilience is not None:
        options.resilience = resilience
    report = simulate_run(
        grid, make_scheduler(ALGORITHM), TOTAL_LOAD, seed=0, options=options
    )
    report.validate()
    return report.makespan


def test_speculation_recovers_straggler_makespan():
    all_fast = _makespan(_grid(straggler=False), resilience=None)
    no_spec = _makespan(_grid(straggler=True), resilience=None)
    with_spec = _makespan(
        _grid(straggler=True),
        resilience=ResiliencePolicy(straggler=StragglerPolicy()),
    )

    lost = no_spec - all_fast
    assert lost > 0, "the straggler must actually hurt the baseline"
    recovered = (no_spec - with_spec) / lost
    results = {
        "scenario": (
            f"4 workers, worker 0 is {SLOWDOWN:.0f}x slower than the "
            f"scheduler believes, {ALGORITHM} over {TOTAL_LOAD:.0f} units"
        ),
        "makespan_all_fast_s": round(all_fast, 4),
        "makespan_straggler_no_speculation_s": round(no_spec, 4),
        "makespan_straggler_with_speculation_s": round(with_spec, 4),
        "recovered_fraction": round(recovered, 4),
        "recovery_floor": RECOVERY_FLOOR,
        "spec_makespan_ratio": round(with_spec / all_fast, 4),
    }
    print(json.dumps(results, indent=2))
    _trajectory.append(
        RESULTS_PATH,
        {
            "spec_makespan_ratio": results["spec_makespan_ratio"],
            "recovered_fraction": results["recovered_fraction"],
        },
        latest=results,
    )
    assert recovered >= RECOVERY_FLOOR, (
        f"speculation recovered only {recovered:.1%} of the straggler's "
        f"makespan cost (floor {RECOVERY_FLOOR:.0%})"
    )
    assert with_spec < no_spec


if __name__ == "__main__":
    test_speculation_recovers_straggler_makespan()
    sys.exit(0)
