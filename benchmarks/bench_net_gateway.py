"""Gateway load test: 1000+ concurrent submissions on loopback.

The acceptance bar for the ``repro.net`` gateway: at least 1000
concurrent submissions through a real TCP gateway with **zero lost
jobs** while the bounded admission queue visibly engages backpressure
(some submissions bounced with the retry/429 reply and transparently
resent by the client SDK's backoff).  The queue is sized well below the
offered load to force that regime.

Jobs are deliberately tiny (SIMPLE-1 over a 2-chunk load on two
workers): the object under test is the network path -- framing,
admission, batching, drain -- not the scheduler.

Results (throughput, p50/p99/mean submit latency, backpressure counts)
are appended to ``benchmarks/BENCH_net_gateway.json`` as one record of
the benchmark trajectory (see ``_trajectory.py``); the committed copy
tracks the numbers this grew up with, and CI gates the newest p99
against the recorded history.
"""

import json
import statistics
import sys
import threading
import time
from pathlib import Path

import _trajectory

from repro.apst.daemon import APSTDaemon, DaemonConfig
from repro.net import GatewayClient, GatewayConfig, JobGateway
from repro.obs import Observability
from repro.platform.presets import das2_cluster

RESULTS_PATH = Path(__file__).parent / "BENCH_net_gateway.json"

THREADS = 16
PER_THREAD = 64          # 16 x 64 = 1024 submissions >= the 1000 floor
SUBMISSIONS = THREADS * PER_THREAD
MAX_QUEUE = 8            # below the 16-client concurrency: while the runner
                         # executes a batch the queue fills and bounces
BATCH_MAX = 64

TASK_XML = """
<task executable="bench" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="200" algorithm="simple-1"/>
</task>
"""


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def test_gateway_sustains_1000_concurrent_submissions(tmp_path):
    (tmp_path / "load.bin").write_bytes(bytes(400))
    observability = Observability.armed(ring_capacity=65536)
    daemon = APSTDaemon(
        das2_cluster(nodes=2, total_load=400.0),
        config=DaemonConfig(base_dir=tmp_path, seed=1,
                            observability=observability),
    )
    gateway = JobGateway(
        daemon,
        config=GatewayConfig(max_queue=MAX_QUEUE, batch_max=BATCH_MAX),
    )
    gateway.start_in_background()
    client_stats, errors = [], []

    def submitter() -> None:
        try:
            with GatewayClient(gateway.host, gateway.port,
                               max_retries=200) as client:
                for _ in range(PER_THREAD):
                    client.submit(TASK_XML)
                client_stats.append(client.stats)
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    start = time.perf_counter()
    threads = [threading.Thread(target=submitter) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == [], errors[:3]
    with GatewayClient(gateway.host, gateway.port) as client:
        stats = client.drain()["stats"]
    elapsed = time.perf_counter() - start
    gateway.shutdown()

    latencies = [s for stats_ in client_stats for s in stats_.submit_latencies]
    backpressure_retries = sum(s.backpressure_retries for s in client_stats)
    results = {
        "submissions": SUBMISSIONS,
        "threads": THREADS,
        "queue_capacity": MAX_QUEUE,
        "batch_max": BATCH_MAX,
        "jobs_done": stats["done"],
        "jobs_failed": stats["failed"],
        "jobs_lost": SUBMISSIONS - stats["total"],
        "backpressure_rejections": gateway.rejected_submissions,
        "client_backpressure_retries": backpressure_retries,
        "batches_executed": gateway.batches_executed,
        "wall_time_s": round(elapsed, 3),
        "throughput_jobs_per_s": round(stats["done"] / elapsed, 1),
        "submit_latency_s": {
            "p50": round(_percentile(latencies, 0.50), 4),
            "p99": round(_percentile(latencies, 0.99), 4),
            "mean": round(statistics.fmean(latencies), 4),
            "max": round(max(latencies), 4),
        },
    }
    _trajectory.append(
        RESULTS_PATH,
        {
            "throughput_jobs_per_s": results["throughput_jobs_per_s"],
            "submit_p50_s": results["submit_latency_s"]["p50"],
            "submit_p99_s": results["submit_latency_s"]["p99"],
        },
        latest=results,
    )
    print(f"gateway load: {json.dumps(results)}", file=sys.stderr)

    # zero lost jobs: everything submitted was admitted and finished
    assert stats["done"] == SUBMISSIONS, results
    assert results["jobs_lost"] == 0, results
    # the bounded queue visibly pushed back at least once
    assert gateway.rejected_submissions >= 1, results
    assert backpressure_retries >= 1, results
    # every batch respected the configured ceiling
    assert gateway.batches_executed >= SUBMISSIONS / BATCH_MAX
