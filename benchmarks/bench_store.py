"""Store bench: claim throughput under contention, SQLite vs memory.

The durable store's hot path is the claim loop: every job a daemon runs
costs one ``claim`` (a ``BEGIN IMMEDIATE`` transaction on SQLite) plus
two owner-checked transitions.  This bench drains a 1000-job backlog
through four competing claimers per backend and records the per-job cost
of the full claim -> running -> done cycle.  The claim audit doubles as
a correctness check: exactly one claim record per job, or the backend's
atomicity is broken and the throughput number is meaningless.

Headline numbers go to ``benchmarks/BENCH_store.json`` (see
``_trajectory.py``); CI gates ``sqlite_claim_ms_per_job`` against the
recorded history.
"""

import json
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

import _trajectory

from repro.store import MemoryStore, SqliteStore

RESULTS_PATH = Path(__file__).parent / "BENCH_store.json"

JOBS = 1000
CLAIMERS = 4
BATCH = 16
LEASE_S = 60.0

SPEC_XML = """
<task executable="app" input="load.bin">
  <divisibility input="load.bin" method="uniform" start="0"
                steptype="bytes" stepsize="10" algorithm="umr"/>
</task>
"""


def _fill(store) -> float:
    start = time.perf_counter()
    for i in range(JOBS):
        store.insert_job(
            spec_xml=SPEC_XML,
            algorithm="umr",
            tenant=f"tenant-{i % 8}",
        )
    return time.perf_counter() - start


def _drain(store) -> float:
    """Four competing claimers run the claim->running->done cycle."""

    def claimer(owner: str) -> None:
        while True:
            batch = store.claim(owner, lease_s=LEASE_S, limit=BATCH)
            if not batch:
                return
            for job in batch:
                store.transition(
                    job.job_id, "running", expect=("queued",), owner=owner
                )
                store.transition(
                    job.job_id, "done", expect=("running",), owner=owner,
                    makespan=0.0, chunks=1,
                )

    threads = [
        threading.Thread(target=claimer, args=(f"claimer-{i}",))
        for i in range(CLAIMERS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - start


def _bench(store) -> dict:
    insert_s = _fill(store)
    drain_s = _drain(store)
    counts = store.counts()
    assert counts["done"] == JOBS, counts
    claims = Counter(r.job_id for r in store.claim_audit())
    doubled = {j: n for j, n in claims.items() if n != 1}
    assert not doubled, f"double-claimed under contention: {doubled}"
    return {
        "insert_ms_per_job": round(insert_s / JOBS * 1000, 4),
        "claim_ms_per_job": round(drain_s / JOBS * 1000, 4),
        "claims_per_s": round(JOBS / drain_s, 1),
    }


def test_claim_throughput_trajectory():
    memory = _bench(MemoryStore())
    with tempfile.TemporaryDirectory() as tmp:
        store = SqliteStore(Path(tmp) / "bench.db")
        try:
            sqlite = _bench(store)
        finally:
            store.close()

    results = {
        "scenario": (
            f"{JOBS} jobs, {CLAIMERS} competing claimers, batches of "
            f"{BATCH}, full claim->running->done cycle per job"
        ),
        "memory": memory,
        "sqlite": sqlite,
    }
    print(json.dumps(results, indent=2))
    _trajectory.append(
        RESULTS_PATH,
        {
            "sqlite_claim_ms_per_job": sqlite["claim_ms_per_job"],
            "sqlite_insert_ms_per_job": sqlite["insert_ms_per_job"],
            "memory_claim_ms_per_job": memory["claim_ms_per_job"],
        },
        latest=results,
    )


if __name__ == "__main__":
    test_claim_throughput_trajectory()
    sys.exit(0)
