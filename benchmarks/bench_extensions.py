"""Extension benches: the trends behind the paper's discussion.

The paper's figures are bar charts at fixed parameters; the prose makes
trend claims that these benches verify as swept series:

* **Worker-count scaling** -- "when multiple workers are used, the
  communication time does not decrease, while the computation decreases.
  As a result, communication represents a more significant part of the
  makespan as the number of workers increases."  SIMPLE-1's penalty over
  UMR must therefore grow with N.
* **Gamma crossover** -- simulation results in the UMR/RUMR papers say UMR
  wins at low uncertainty and Factoring at high uncertainty; the sweep
  locates the crossover on the DAS-2 platform.
* **Output-transfer sweep** -- the reference-[37] extension: as the
  output/input ratio grows, planning for result transfers (umr-out)
  increasingly beats stock UMR.
* **Self-scheduling ladder** -- CSS -> TSS -> Factoring -> WF at
  gamma = 10%: each refinement of the chunk-decay idea should hold its
  own or improve.
"""

import sys

import pytest
from _support import RESULTS_DIR, run_panel

from repro.analysis.experiments import ExperimentConfig
from repro.analysis.sweeps import run_sweep
from repro.analysis.tables import render_table
from repro.platform.presets import (
    DAS2_COMM_LATENCY_S,
    DAS2_COMP_LATENCY_S,
    DAS2_R,
    PAPER_IDEAL_COMPUTE_S,
    PAPER_LOAD_UNITS,
    das2_cluster,
)
from repro.platform.calibrate import calibrate_cluster
from repro.platform.resources import Grid
from repro.simulation.master import SimulationOptions


def _emit(title, headers, rows, filename):
    table = render_table(headers, rows, title=title, precision=1)
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table + "\n")


def _das2_with_nodes(nodes: int) -> Grid:
    """DAS-2-like cluster with N nodes at constant *per-node* speed.

    Keeping per-node speed and bandwidth fixed (rather than rescaling to a
    target makespan) is what makes the N sweep test the paper's
    serialization claim: computation parallelizes, the link does not.
    """
    reference = das2_cluster(16)
    per_node_speed = reference.workers[0].speed
    return Grid.from_clusters(
        calibrate_cluster(
            "das2",
            nodes=nodes,
            comm_comp_ratio=DAS2_R,
            total_load=per_node_speed * nodes * PAPER_IDEAL_COMPUTE_S,
            ideal_compute_time=PAPER_IDEAL_COMPUTE_S,
            comm_latency=DAS2_COMM_LATENCY_S,
            comp_latency=DAS2_COMP_LATENCY_S,
        )
    )


def test_extension_worker_count_scaling(benchmark):
    counts = (4, 8, 16, 32)

    def sweep():
        return run_sweep(
            "workers",
            counts,
            lambda n: ExperimentConfig(
                label=f"N={n}",
                grid_factory=lambda n=n: _das2_with_nodes(n),
                total_load=PAPER_LOAD_UNITS,
                gamma=0.0,
                algorithms=("simple-1", "umr"),
                runs=1,
            ),
        )

    sweep_result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slow = sweep_result.slowdown_series()
    _emit(
        "Extension: SIMPLE-1 penalty vs worker count (DAS-2-like, gamma=0)",
        ["workers", "simple-1 makespan", "umr makespan", "simple-1 slowdown"],
        [
            [n, sweep_result.series["simple-1"][k], sweep_result.series["umr"][k],
             f"+{slow['simple-1'][k]:.0%}"]
            for k, n in enumerate(counts)
        ],
        "extension_worker_scaling.txt",
    )
    # the paper's serialization claim: the penalty grows with N
    penalties = slow["simple-1"]
    assert penalties[-1] > penalties[0] + 0.10
    assert all(b >= a - 0.02 for a, b in zip(penalties, penalties[1:]))


def test_extension_gamma_crossover(benchmark):
    gammas = (0.0, 0.05, 0.10, 0.15, 0.20)

    def sweep():
        return run_sweep(
            "gamma",
            gammas,
            lambda g: ExperimentConfig(
                label=f"g={g}",
                grid_factory=lambda: das2_cluster(16),
                total_load=PAPER_LOAD_UNITS,
                gamma=g,
                algorithms=("umr", "wf"),
                runs=4,
            ),
        )

    sweep_result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    crossover = sweep_result.crossover("umr", "wf")
    _emit(
        "Extension: UMR vs Weighted Factoring across gamma (DAS-2)",
        ["gamma", "umr makespan", "wf makespan"],
        [
            [g, sweep_result.series["umr"][k], sweep_result.series["wf"][k]]
            for k, g in enumerate(gammas)
        ],
        "extension_gamma_crossover.txt",
    )
    print(f"WF overtakes UMR at gamma = {crossover}", file=sys.stderr)
    # UMR wins the deterministic end; WF wins by 10%; crossover in between
    assert sweep_result.series["umr"][0] < sweep_result.series["wf"][0]
    assert crossover is not None and 0.0 < crossover <= 0.10


def test_extension_output_transfer_sweep(benchmark):
    factors = (0.0, 0.25, 0.5, 1.0)

    # the registry's umr-out is fixed at output_factor=0.1, so build the
    # per-factor schedulers directly rather than via run_sweep
    from repro.core.umr import UMR
    from repro.core.umr_output import OutputAwareUMR
    from repro.simulation.master import simulate_run

    def manual_sweep():
        rows = {}
        for o in factors:
            options = SimulationOptions(output_factor=o)
            stock = simulate_run(das2_cluster(16), UMR(),
                                 total_load=PAPER_LOAD_UNITS, seed=1,
                                 options=options).makespan
            aware = simulate_run(das2_cluster(16), OutputAwareUMR(o),
                                 total_load=PAPER_LOAD_UNITS, seed=1,
                                 options=options).makespan
            rows[o] = (stock, aware)
        return rows

    rows = benchmark.pedantic(manual_sweep, rounds=1, iterations=1)
    _emit(
        "Extension: output transfers on the shared link (DAS-2, gamma=0)",
        ["output/input ratio", "stock UMR", "output-aware UMR", "gain"],
        [
            [o, rows[o][0], rows[o][1], f"{rows[o][0] / rows[o][1] - 1:+.1%}"]
            for o in factors
        ],
        "extension_output_transfers.txt",
    )
    # no outputs: identical; heavy outputs: planning for them wins clearly
    assert rows[0.0][1] == rows[0.0][0]
    assert rows[1.0][1] < rows[1.0][0] * 0.97


def test_extension_transfer_uncertainty(benchmark):
    """RUMR was 'designed to tolerate uncertainty on chunk transfer/
    execution times'; the paper's stable testbed only exercised the
    execution side.  This bench adds transfer-time noise (comm_gamma) on
    DAS-2 and checks the same robustness ordering emerges: decreasing-
    chunk schemes absorb noisy transfers better than UMR's huge final
    round."""
    import statistics

    from repro.core.registry import make_scheduler
    from repro.simulation.master import simulate_run

    def sweep():
        rows = {}
        for name in ("umr", "wf", "fixed-rumr"):
            per_level = {}
            for comm_gamma in (0.0, 0.2):
                per_level[comm_gamma] = statistics.mean(
                    simulate_run(
                        das2_cluster(16), make_scheduler(name),
                        total_load=PAPER_LOAD_UNITS, gamma=0.0,
                        comm_gamma=comm_gamma, seed=3000 + s,
                    ).makespan
                    for s in range(5)
                )
            rows[name] = per_level
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    degradation = {
        name: rows[name][0.2] / rows[name][0.0] - 1.0 for name in rows
    }
    _emit(
        "Extension: transfer-time uncertainty (DAS-2, comm_gamma=20%)",
        ["algorithm", "makespan (stable net)", "makespan (noisy net)",
         "degradation"],
        [
            [n, rows[n][0.0], rows[n][0.2], f"+{degradation[n]:.1%}"]
            for n in rows
        ],
        "extension_transfer_uncertainty.txt",
    )
    # transfer noise hurts everyone a little; UMR (largest final-round
    # transfers on the critical path) degrades at least as much as the
    # decreasing-chunk schemes
    assert all(d >= -0.02 for d in degradation.values())
    assert degradation["umr"] >= degradation["fixed-rumr"] - 0.02


def test_extension_heterogeneity_weighting(benchmark):
    """Paper Section 3.6: Factoring is 'weighted' because speed-
    proportional chunks are 'known to achieve better load-balancing than
    plain factoring'.  Sweep the platform's speed spread and measure the
    weighting advantage growing with heterogeneity."""
    import statistics

    import numpy as np

    from repro.core.factoring import PlainFactoring, WeightedFactoring
    from repro.simulation.master import simulate_run

    spreads = (1.0, 2.0, 4.0, 8.0)  # fastest/slowest speed ratio

    def grid_with_spread(ratio: float) -> Grid:
        factors = list(np.geomspace(1.0, ratio, 16))
        return Grid.from_clusters(
            calibrate_cluster(
                "het",
                nodes=16,
                comm_comp_ratio=DAS2_R,
                total_load=PAPER_LOAD_UNITS,
                ideal_compute_time=PAPER_IDEAL_COMPUTE_S,
                comm_latency=DAS2_COMM_LATENCY_S,
                comp_latency=DAS2_COMP_LATENCY_S,
                speed_factors=factors,
            )
        )

    def sweep():
        rows = {}
        for ratio in spreads:
            grid = grid_with_spread(ratio)
            plain = statistics.mean(
                simulate_run(grid, PlainFactoring(), total_load=PAPER_LOAD_UNITS,
                             seed=s).makespan
                for s in range(3)
            )
            weighted = statistics.mean(
                simulate_run(grid, WeightedFactoring(adaptive=False),
                             total_load=PAPER_LOAD_UNITS, seed=s).makespan
                for s in range(3)
            )
            rows[ratio] = (plain, weighted)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Extension: weighting advantage vs heterogeneity (factoring family)",
        ["speed spread", "plain factoring", "weighted factoring", "gain"],
        [
            [r, rows[r][0], rows[r][1], f"{rows[r][0] / rows[r][1] - 1:+.1%}"]
            for r in spreads
        ],
        "extension_heterogeneity.txt",
    )
    gains = [rows[r][0] / rows[r][1] - 1.0 for r in spreads]
    # homogeneous: weighting is a no-op; strong heterogeneity: a big win
    assert abs(gains[0]) < 0.02
    assert gains[-1] > 0.10
    assert gains[-1] > gains[0]


def test_extension_selfscheduling_ladder(benchmark):
    result = benchmark.pedantic(
        run_panel,
        args=("Extension: self-scheduling lineage (DAS-2, gamma=10%)",
              lambda: das2_cluster(16), 0.10),
        kwargs={"algorithms": ("css", "tss", "gss", "factoring", "wf"), "runs": 5},
        rounds=1, iterations=1,
    )
    makespans = {n: r.stats.mean for n, r in result.by_algorithm.items()}
    _emit(
        "Extension: self-scheduling lineage (DAS-2, gamma=10%)",
        ["algorithm", "mean makespan (s)"],
        [[n, makespans[n]] for n in ("css", "tss", "gss", "factoring", "wf")],
        "extension_selfscheduling.txt",
    )
    # GSS's known weakness -- its first chunks are huge (remaining/N) and
    # straggle under uncertainty -- is precisely what motivated Factoring:
    assert makespans["gss"] == max(makespans.values())
    assert makespans["factoring"] < makespans["gss"] * 0.95
    # weighting is a no-op on the homogeneous DAS-2, so WF ~= Factoring
    assert makespans["wf"] == pytest.approx(makespans["factoring"], rel=0.03)
    # the whole family stays within a modest band of its best member
    best = min(makespans.values())
    assert all(m < best * 1.20 for m in makespans.values())
