"""Cross-backend consistency: simulator vs real threaded execution.

The simulation backend substitutes for the paper's testbed; the threaded
backend really moves bytes and really computes, with modeled costs scaled
into wall-clock.  Both are adapters over the same
:class:`repro.dispatch.core.DispatchCore`, so running the *same*
scheduler on the *same* platform through both must land on nearly the
same makespan (real-thread scheduling jitter allows a small gap) -- the
repository's evidence that the simulated numbers reflect what an actual
master-worker run does.

Exact decision-sequence parity (identical chunk sizes and assignments) is
pinned separately by ``tests/test_dispatch_core.py``; both are built on
:mod:`repro.dispatch.parity`.
"""

import sys
import tempfile
from pathlib import Path

import pytest
from _support import RESULTS_DIR

from repro.analysis.tables import render_table
from repro.dispatch.parity import chunk_signature, run_backend
from repro.platform.resources import Cluster, Grid

#: small platform and load so the wall-clock run stays ~seconds
LOAD_BYTES = 4096
TIME_SCALE = 0.01


def _grid():
    return Grid.from_clusters(
        Cluster.homogeneous("x", 3, speed=300.0, bandwidth=3000.0,
                            comm_latency=0.15, comp_latency=0.05)
    )


def test_backends_agree_on_makespan(benchmark):
    workdir = Path(tempfile.mkdtemp(prefix="bench_consistency_"))
    load_file = workdir / "load.bin"
    load_file.write_bytes(bytes(LOAD_BYTES))

    def compare():
        rows = {}
        for name in ("simple-2", "umr", "wf"):
            reports = {
                kind: run_backend(
                    kind, _grid(), name, load_file, stepsize=16,
                    workdir=workdir / f"work_{name}", time_scale=TIME_SCALE,
                )
                for kind in ("simulation", "local")
            }
            rows[name] = (
                reports["simulation"].makespan,
                reports["local"].makespan,
                chunk_signature(reports["simulation"])
                == chunk_signature(reports["local"]),
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "simulated makespan (s)", "real threaded (model s)",
         "gap", "same decisions"],
        [
            [n, rows[n][0], rows[n][1],
             f"{rows[n][1] / rows[n][0] - 1:+.1%}", str(rows[n][2])]
            for n in rows
        ],
        title="Backend consistency: simulator vs real threaded execution",
        precision=2,
    )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "backend_consistency.txt").write_text(table + "\n")

    for name, (sim, real, same_decisions) in rows.items():
        # the real backend can only be slower (thread/IO overheads on top
        # of modeled costs), and should stay within ~20%
        assert real >= sim * 0.97, f"{name}: real faster than the model?"
        assert real <= sim * 1.25, f"{name}: gap too large ({real / sim - 1:+.1%})"
        if name != "wf":  # wf reacts to observed timings; parity not expected
            assert same_decisions, f"{name}: decision sequences diverged"
