"""Cross-backend consistency: simulator vs real threaded execution.

The simulation backend substitutes for the paper's testbed; the threaded
backend really moves bytes and really computes, with modeled costs scaled
into wall-clock.  Running the *same* scheduler on the *same* platform
through both must land on nearly the same makespan (real-thread
scheduling jitter allows a small gap) -- the repository's evidence that
the simulated numbers reflect what an actual master-worker run does.
"""

import sys
import tempfile
from pathlib import Path

import pytest
from _support import RESULTS_DIR

from repro.analysis.tables import render_table
from repro.apst.division import UniformBytesDivision
from repro.core.registry import make_scheduler
from repro.execution.local import LocalExecutionBackend
from repro.platform.resources import Cluster, Grid
from repro.simulation.master import SimulationOptions, simulate_run

#: small platform and load so the wall-clock run stays ~seconds
LOAD_BYTES = 4096
TIME_SCALE = 0.01


def _grid():
    return Grid.from_clusters(
        Cluster.homogeneous("x", 3, speed=300.0, bandwidth=3000.0,
                            comm_latency=0.15, comp_latency=0.05)
    )


def test_backends_agree_on_makespan(benchmark):
    workdir = Path(tempfile.mkdtemp(prefix="bench_consistency_"))
    load_file = workdir / "load.bin"
    load_file.write_bytes(bytes(LOAD_BYTES))

    def compare():
        rows = {}
        for name in ("simple-2", "umr", "wf"):
            division = UniformBytesDivision(load_file, stepsize=16)
            backend = LocalExecutionBackend(
                workdir / f"work_{name}", time_scale=TIME_SCALE
            )
            real = backend.execute(
                _grid(), make_scheduler(name), division, None,
                probe_units=128.0,
            )
            simulated = simulate_run(
                _grid(), make_scheduler(name), total_load=float(LOAD_BYTES),
                seed=0, options=SimulationOptions(probe_units=128.0),
            )
            rows[name] = (simulated.makespan, real.makespan)
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "simulated makespan (s)", "real threaded (model s)", "gap"],
        [
            [n, rows[n][0], rows[n][1], f"{rows[n][1] / rows[n][0] - 1:+.1%}"]
            for n in rows
        ],
        title="Backend consistency: simulator vs real threaded execution",
        precision=2,
    )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "backend_consistency.txt").write_text(table + "\n")

    for name, (sim, real) in rows.items():
        # the real backend can only be slower (thread/IO overheads on top
        # of modeled costs), and should stay within ~20%
        assert real >= sim * 0.97, f"{name}: real faster than the model?"
        assert real <= sim * 1.25, f"{name}: gap too large ({real / sim - 1:+.1%})"
