"""Figure 4: DAS-2 (8 nodes) + Meteor (8 nodes), gamma in {0%, 10%}.

The two-cluster Grid panel.  Paper findings reproduced and asserted:

* gamma = 0:  UMR and RUMR (identical) lead; SIMPLE-1 +25%, SIMPLE-5 +17%.
* gamma = 10%: Weighted Factoring and Fixed-RUMR lead; SIMPLE-1 +28%,
  SIMPLE-5 +14%.
"""

import pytest
from _support import PAPER_FIG4_MIXED, emit_panel, run_panel

from repro.platform.presets import mixed_grid


def test_fig4_mixed_gamma0(benchmark):
    result = benchmark.pedantic(
        run_panel, args=("Figure 4 -- DAS-2 (8) + Meteor (8), gamma=0",
                         mixed_grid, 0.0),
        rounds=1, iterations=1,
    )
    emit_panel(result, PAPER_FIG4_MIXED[0.0], "fig4_mixed_gamma0.txt")

    slow = result.slowdowns()
    assert slow["umr"] < 0.03
    assert result.makespan("rumr") == pytest.approx(result.makespan("umr"), rel=1e-6)
    assert slow["simple-1"] > 0.20                  # paper: +25%
    assert slow["simple-5"] > 0.10                  # paper: +17%


def test_fig4_mixed_gamma10(benchmark):
    result = benchmark.pedantic(
        run_panel, args=("Figure 4 -- DAS-2 (8) + Meteor (8), gamma=10%",
                         mixed_grid, 0.10),
        rounds=1, iterations=1,
    )
    emit_panel(result, PAPER_FIG4_MIXED[0.10], "fig4_mixed_gamma10.txt")

    slow = result.slowdowns()
    # WF and Fixed-RUMR lead
    assert min(slow["wf"], slow["fixed-rumr"]) == 0.0
    assert max(slow["wf"], slow["fixed-rumr"]) < 0.06
    # SIMPLE-n poor, SIMPLE-1 worse than SIMPLE-5 (paper: +28% vs +14%)
    assert slow["simple-1"] > 0.20
    assert slow["simple-5"] > 0.07
    assert slow["simple-1"] > slow["simple-5"]
