"""Multi-job service: lease policies on a shared DAS-2 platform.

A deterministic 6-job trace (seeded Poisson arrivals, mixed sizes and
algorithms) is run under the three worker-lease policies.  The headline
claim: weighted fair-share beats FIFO-exclusive on mean stretch, because
small jobs arriving behind a long-running one no longer wait for the
whole platform -- they lease a slice immediately, and inherit the big
job's workers the moment it finishes.
"""

import random
import sys

import pytest
from _support import RESULTS_DIR

from repro.core.registry import make_scheduler
from repro.platform.presets import das2_cluster
from repro.service import POLICIES, ServiceClock, ServiceJobSpec

#: (total_load, algorithm, weight): one long batch job, then small
#: interactive ones; small jobs carry a higher fair-share weight.
JOBS = [
    (60_000.0, "umr", 1.0),
    (4_000.0, "umr", 4.0),
    (6_000.0, "wf", 4.0),
    (3_000.0, "umr", 4.0),
    (9_000.0, "simple-5", 4.0),
    (5_000.0, "wf", 4.0),
]
ARRIVAL_SEED = 2005  # the paper's year; fixed -> identical trace every run
MEAN_INTERARRIVAL = 120.0


def service_trace() -> list[ServiceJobSpec]:
    """The benchmark workload: deterministic, rebuilt fresh per policy."""
    rng = random.Random(ARRIVAL_SEED)
    specs = []
    arrival = 0.0
    for i, (load, algorithm, weight) in enumerate(JOBS, start=1):
        if i > 1:
            arrival += rng.expovariate(1.0 / MEAN_INTERARRIVAL)
        specs.append(
            ServiceJobSpec(
                job_id=i,
                scheduler_factory=lambda a=algorithm: make_scheduler(a),
                total_load=load,
                arrival=arrival,
                tenant=f"tenant{1 + i % 3}",
                weight=weight,
                seed=3,
            )
        )
    return specs


def run_policy(policy: str):
    grid = das2_cluster(nodes=8)
    return ServiceClock(grid, policy=policy).run(service_trace())


@pytest.fixture(scope="module")
def outcomes():
    return {}


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_trace(benchmark, outcomes, policy):
    outcome = benchmark.pedantic(run_policy, args=(policy,), rounds=1, iterations=1)
    outcomes[policy] = outcome
    for report in outcome.reports.values():
        report.validate()  # conservation + causality, per job
    assert outcome.service.num_jobs == len(JOBS)
    # deterministic: a second run of the same trace is identical
    again = run_policy(policy)
    assert again.service.records == outcome.service.records


def test_fair_share_beats_fifo_on_stretch(outcomes):
    """The service-level headline result, plus the persisted report."""
    fifo = outcomes["fifo"].service
    static = outcomes["static"].service
    fair = outcomes["fair-share"].service

    text = "\n\n".join(s.render() for s in (fifo, static, fair))
    summary = (
        f"\nmean stretch: fifo={fifo.mean_stretch:.2f} "
        f"static={static.mean_stretch:.2f} fair-share={fair.mean_stretch:.2f}"
    )
    print(text + summary, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "multijob_service.txt").write_text(text + summary + "\n")

    assert fair.mean_stretch < fifo.mean_stretch
    assert fair.mean_wait < fifo.mean_wait
    # released capacity actually flowed back: the big job was re-leased
    big = next(r for r in fair.records if r.job_id == 1)
    assert big.segments > 1
    assert big.peak_workers == fair.num_workers
