"""Benchmark trajectories: headline numbers tracked across commits.

The ``BENCH_*.json`` files the benches commit used to hold only the
latest run, so a slow regression (each commit 5 % worse than the last)
never showed.  This module normalizes them into one shape::

    {
      "benchmark": "net_gateway",
      "latest": { ... full results of the newest run ... },
      "trajectory": [
        {"commit": "6a2eda7", "date": "2026-08-07",
         "headline": {"submit_p99_s": 0.18, ...}},
        ...
      ]
    }

``trajectory`` is append-only (newest last, capped) and carries only
small, comparable headline numbers; ``latest`` keeps the newest run's
full detail.  Legacy flat files are migrated on first append: the old
dict becomes ``latest`` with an unattributed trajectory entry.

``check()`` is the CI regression gate: the newest record's headline
metric must not exceed ``factor`` times the median of the earlier
records (lower-is-better metrics only -- latencies, overhead ratios).
Run it as a script::

    python benchmarks/_trajectory.py check BENCH_net_gateway.json \
        submit_p99_s --factor 1.25
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
from pathlib import Path

#: Bounded history: enough to see a trend, small enough to diff.
MAX_RECORDS = 50


def _current_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def load(path: str | Path) -> dict:
    """Read a BENCH file, migrating the legacy flat-dict layout."""
    path = Path(path)
    if not path.exists():
        return {"benchmark": path.stem.replace("BENCH_", ""),
                "latest": {}, "trajectory": []}
    data = json.loads(path.read_text())
    if "trajectory" in data:
        return data
    # legacy: the file is one run's result dict; keep it as an
    # unattributed first record so the history starts somewhere
    return {
        "benchmark": path.stem.replace("BENCH_", ""),
        "latest": data,
        "trajectory": [{"commit": "unknown", "date": "unknown",
                        "headline": _legacy_headline(data)}],
    }


def _legacy_headline(results: dict) -> dict:
    """Best-effort headline for a pre-trajectory gateway results dict."""
    headline = {}
    if "throughput_jobs_per_s" in results:
        headline["throughput_jobs_per_s"] = results["throughput_jobs_per_s"]
    latency = results.get("submit_latency_s")
    if isinstance(latency, dict):
        for key in ("p50", "p99"):
            if key in latency:
                headline[f"submit_{key}_s"] = latency[key]
    return headline


def append(path: str | Path, headline: dict, *, latest: dict | None = None) -> dict:
    """Append one run's record and rewrite the BENCH file.

    ``headline`` is the small dict of comparable numbers; ``latest``
    (default: the headline itself) is the full result detail to keep
    for the newest run only.
    """
    path = Path(path)
    data = load(path)
    data["latest"] = latest if latest is not None else dict(headline)
    data["trajectory"].append({
        "commit": _current_commit(),
        "date": datetime.date.today().isoformat(),
        "headline": dict(headline),
    })
    data["trajectory"] = data["trajectory"][-MAX_RECORDS:]
    path.write_text(json.dumps(data, indent=2) + "\n")
    return data


def check(path: str | Path, metric: str, *, factor: float = 1.25) -> tuple[bool, str]:
    """Gate the newest record against the history (lower is better).

    Passes when the file has fewer than two records carrying ``metric``
    (nothing to compare), or when the newest value is at most ``factor``
    times the median of the earlier ones.
    """
    data = load(path)
    values = [
        record["headline"][metric]
        for record in data["trajectory"]
        if metric in record.get("headline", {})
    ]
    if len(values) < 2:
        return True, f"{metric}: {len(values)} record(s), nothing to compare"
    baseline = statistics.median(values[:-1])
    newest = values[-1]
    ratio = newest / baseline if baseline > 0 else float("inf")
    message = (
        f"{metric}: latest {newest:.4g} vs baseline median {baseline:.4g} "
        f"(x{ratio:.3f}, gate x{factor})"
    )
    return ratio <= factor, message


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    gate = sub.add_parser("check", help="fail when the newest record regressed")
    gate.add_argument("file", help="BENCH_*.json path")
    gate.add_argument("metric", help="headline key to compare (lower is better)")
    gate.add_argument("--factor", type=float, default=1.25,
                      help="allowed ratio over the baseline median (default 1.25)")
    args = parser.parse_args(argv)
    ok, message = check(args.file, args.metric, factor=args.factor)
    print(("OK " if ok else "REGRESSION ") + message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
