"""Section 4.3: the paper's cross-scenario averages.

'From the experimental results above we draw the following broad
conclusions: 1. The SIMPLE-n algorithm ... is always inefficient (on
average SIMPLE-1 and SIMPLE-5 are 28% and 18% slower than the best
algorithm). ... 2. [UMR's] performance is poor when uncertainty becomes
significant (on average 17% slower than the best algorithm).'

This bench re-runs the full Section 4 grid (3 platforms x 2 gamma
levels), averages each algorithm's slowdown across scenarios, and checks
both conclusions.
"""

import sys

from _support import PAPER_SECTION43, RESULTS_DIR, run_panel

from repro.analysis.metrics import mean_slowdown_across
from repro.analysis.tables import render_table
from repro.platform.presets import das2_cluster, meteor_cluster, mixed_grid

SCENARIOS = [
    ("das2 g=0", lambda: das2_cluster(16), 0.0),
    ("das2 g=10%", lambda: das2_cluster(16), 0.10),
    ("meteor g=0", lambda: meteor_cluster(16), 0.0),
    ("meteor g=10%", lambda: meteor_cluster(16), 0.10),
    ("mixed g=0", mixed_grid, 0.0),
    ("mixed g=10%", mixed_grid, 0.10),
]


def _run_grid():
    return {
        label: run_panel(label, factory, gamma, runs=5)
        for label, factory, gamma in SCENARIOS
    }


def test_section43_averages(benchmark):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    all_slowdowns = [r.slowdowns() for r in results.values()]
    overall = mean_slowdown_across(all_slowdowns)
    high_gamma = mean_slowdown_across(
        [results[label].slowdowns() for label in
         ("das2 g=10%", "meteor g=10%", "mixed g=10%")]
    )

    table = render_table(
        ["algorithm", "mean slowdown (all 6 scenarios)",
         "mean slowdown (gamma=10% only)", "paper"],
        [
            ["simple-1", f"+{overall['simple-1']:.0%}",
             f"+{high_gamma['simple-1']:.0%}", "+28% (all)"],
            ["simple-5", f"+{overall['simple-5']:.0%}",
             f"+{high_gamma['simple-5']:.0%}", "+18% (all)"],
            ["umr", f"+{overall['umr']:.0%}",
             f"+{high_gamma['umr']:.0%}", "+17% (high gamma)"],
            ["wf", f"+{overall['wf']:.0%}", f"+{high_gamma['wf']:.0%}", None],
            ["rumr", f"+{overall['rumr']:.0%}", f"+{high_gamma['rumr']:.0%}", None],
            ["fixed-rumr", f"+{overall['fixed-rumr']:.0%}",
             f"+{high_gamma['fixed-rumr']:.0%}", None],
        ],
        title="Section 4.3 -- average slowdown vs best across scenarios",
    )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "section43_averages.txt").write_text(table + "\n")

    # conclusion 1: SIMPLE-n always inefficient
    assert overall["simple-1"] > 0.18   # paper: 28%
    assert overall["simple-5"] > 0.08   # paper: 18%
    assert overall["simple-1"] > overall["simple-5"]
    # conclusion 2: UMR poor under significant uncertainty
    assert high_gamma["umr"] > 0.10     # paper: 17%
    # conclusion 4: Fixed-RUMR effective across the board
    assert overall["fixed-rumr"] < 0.05
    assert PAPER_SECTION43["simple-1"] == 0.28  # transcription anchor
