"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but direct probes of the mechanisms behind
its conclusions:

* **Fixed-RUMR phase-2 fraction sweep** -- the paper fixes 80/20 'in the
  meantime'; the sweep shows where that sits on the robustness/overlap
  trade-off at gamma = 10%.
* **UMR round-count sensitivity** -- UMR's selling point is the
  *near-optimal* round count; forcing other counts (via the fixed-round
  multi-installment scheduler) quantifies the cost of guessing wrong.
* **Probe accuracy** -- application-level probing vs a perfect oracle:
  how much makespan does single-sample probe error cost at high gamma?
* **Lineage ladder** -- one-round -> fixed installments -> UMR, the
  Section 2.2 progression, on the latency-heavy DAS-2 platform.
"""

import statistics
import sys

from _support import RESULTS_DIR, run_panel

from repro.analysis.tables import render_table
from repro.core.registry import make_scheduler
from repro.core.rumr import RUMR
from repro.platform.presets import PAPER_LOAD_UNITS, das2_cluster
from repro.simulation.master import SimulationOptions, simulate_run


def _mean_makespan(scheduler_factory, *, gamma=0.0, runs=6, options=None, grid=None):
    makespans = []
    for seed in range(runs):
        g = grid if grid is not None else das2_cluster(16)
        report = simulate_run(
            g, scheduler_factory(), total_load=PAPER_LOAD_UNITS,
            gamma=gamma, seed=2000 + seed, options=options,
        )
        makespans.append(report.makespan)
    return statistics.mean(makespans)


def _emit(title, headers, rows, filename):
    table = render_table(headers, rows, title=title, precision=1)
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table + "\n")
    return table


def test_ablation_phase2_fraction(benchmark):
    """Sweep Fixed-RUMR's Factoring-phase share at gamma = 10% on DAS-2."""
    fractions = (0.05, 0.1, 0.2, 0.35, 0.5, 0.7)

    def sweep():
        return {
            f: _mean_makespan(lambda f=f: RUMR(fixed_phase2_fraction=f), gamma=0.10)
            for f in fractions
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best_fraction = min(results, key=results.get)
    _emit(
        "Ablation: Fixed-RUMR phase-2 fraction (DAS-2, gamma=10%)",
        ["phase-2 fraction", "mean makespan (s)"],
        [[f"{f:.2f}", results[f]] for f in fractions],
        "ablation_phase2_fraction.txt",
    )
    # the paper's 0.2 choice sits near the sweet spot: within 5% of the
    # sweep's best, and both extremes are worse than the middle
    assert results[0.2] <= results[best_fraction] * 1.05
    assert results[0.05] > results[best_fraction]
    assert results[0.7] > results[best_fraction]


def test_ablation_round_count(benchmark):
    """Fixed round counts vs UMR's optimized one (DAS-2, gamma = 0)."""
    counts = (1, 2, 4, 8, 16, 32)

    def sweep():
        fixed = {
            m: _mean_makespan(
                lambda m=m: make_scheduler(f"multiinstallment-{m}"), runs=1
            )
            for m in counts
        }
        fixed["umr"] = _mean_makespan(lambda: make_scheduler("umr"), runs=1)
        return fixed

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: fixed installment count vs UMR (DAS-2, gamma=0)",
        ["rounds", "mean makespan (s)"],
        [[str(m), results[m]] for m in (*counts, "umr")],
        "ablation_round_count.txt",
    )
    # UMR's optimized count beats (or ties) every fixed choice, and the
    # worst fixed choice is substantially slower
    best_fixed = min(results[m] for m in counts)
    worst_fixed = max(results[m] for m in counts)
    assert results["umr"] <= best_fixed * 1.02
    assert worst_fixed > results["umr"] * 1.10


def test_ablation_probe_accuracy(benchmark):
    """Single-sample probing vs a perfect oracle at gamma = 20%."""

    def sweep():
        probed = _mean_makespan(lambda: make_scheduler("umr"), gamma=0.20)
        oracle = _mean_makespan(
            lambda: make_scheduler("umr"), gamma=0.20,
            options=SimulationOptions(perfect_estimates=True),
        )
        probed_wf = _mean_makespan(lambda: make_scheduler("wf"), gamma=0.20)
        oracle_wf = _mean_makespan(
            lambda: make_scheduler("wf"), gamma=0.20,
            options=SimulationOptions(perfect_estimates=True),
        )
        return {"umr_probed": probed, "umr_oracle": oracle,
                "wf_probed": probed_wf, "wf_oracle": oracle_wf}

    r = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: probe estimates vs perfect information (DAS-2, gamma=20%)",
        ["configuration", "mean makespan (s)"],
        [[k, v] for k, v in r.items()],
        "ablation_probe_accuracy.txt",
    )
    # probe error costs UMR (no adaptation) more than it costs WF
    umr_penalty = r["umr_probed"] / r["umr_oracle"] - 1.0
    wf_penalty = r["wf_probed"] / r["wf_oracle"] - 1.0
    assert umr_penalty >= wf_penalty - 0.02
    # and neither penalty is absurd
    assert umr_penalty < 0.30


def test_ablation_hotspot_loads(benchmark):
    """Data-dependent costs (Table 1's real uncertainty) vs random noise:
    a deterministic hotspot region -- HMMER's long sequences, MPEG's
    complex scenes -- acts like uncertainty the schedulers cannot predict,
    and the same robustness ordering emerges as under gamma-noise."""
    import statistics

    from repro.simulation.costprofile import hotspot_profile
    from repro.simulation.master import simulate_run

    def sweep():
        profile = hotspot_profile(
            PAPER_LOAD_UNITS, hotspots=[(0.55, 0.8)], scale=2.5
        )
        rows = {}
        for name in ("simple-1", "umr", "wf", "fixed-rumr"):
            rows[name] = statistics.mean(
                simulate_run(
                    das2_cluster(16), make_scheduler(name),
                    total_load=PAPER_LOAD_UNITS, gamma=0.0,
                    seed=4000 + s, cost_profile=profile,
                ).makespan
                for s in range(3)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: deterministic hotspot load (DAS-2, 2.5x region at 55-80%)",
        ["algorithm", "mean makespan (s)"],
        [[k, v] for k, v in rows.items()],
        "ablation_hotspots.txt",
    )
    # the adaptive/two-phase schemes absorb the hotspot; static chunking
    # and plan-committed UMR pay for it
    best = min(rows.values())
    assert rows["wf"] == best  # greedy adaptation wins outright
    assert rows["fixed-rumr"] <= best * 1.06
    assert rows["umr"] >= rows["fixed-rumr"]
    assert rows["simple-1"] > best * 1.5  # the hot half lands on fixed shares


def test_ablation_learned_gamma_rumr(benchmark):
    """The paper's proposed fix, measured: 'the magnitude of the
    uncertainty could be learned from past application executions'.  With
    gamma known in advance, RUMR pre-plans its switch and recovers the
    two-phase advantage that the online variant loses at gamma = 10%."""
    from repro.core.rumr import RUMR, rumr_with_known_gamma

    def sweep():
        return {
            "online rumr": _mean_makespan(RUMR, gamma=0.10),
            "rumr (learned gamma=0.10)": _mean_makespan(
                lambda: rumr_with_known_gamma(0.10), gamma=0.10
            ),
            "fixed-rumr (80/20)": _mean_makespan(
                lambda: RUMR(fixed_phase2_fraction=0.2), gamma=0.10
            ),
            "umr": _mean_makespan(lambda: make_scheduler("umr"), gamma=0.10),
        }

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: learned-gamma RUMR (DAS-2, gamma=10%)",
        ["scheduler", "mean makespan (s)"],
        [[k, v] for k, v in rows.items()],
        "ablation_learned_rumr.txt",
    )
    # learning fixes the late switch: clearly better than online RUMR/UMR,
    # in the same band as the paper's stopgap Fixed-RUMR
    assert rows["rumr (learned gamma=0.10)"] < rows["online rumr"] * 0.95
    assert rows["rumr (learned gamma=0.10)"] < rows["umr"] * 0.95
    assert rows["rumr (learned gamma=0.10)"] < rows["fixed-rumr (80/20)"] * 1.05


def test_ablation_monitoring_vs_probing(benchmark):
    """Section 3.5's two roads measured: free-but-mistranslated monitoring
    (NWS/Ganglia style) vs costly-but-accurate application probing."""
    from repro.apst.monitoring import MonitoringConfig

    def sweep():
        rows = {}
        for label, options in (
            ("oracle", SimulationOptions(estimate_source="oracle")),
            ("probe", SimulationOptions(estimate_source="probe")),
            ("probe (time billed)", SimulationOptions(
                estimate_source="probe", include_probe_time=True)),
            ("monitor (15% error)", SimulationOptions(
                estimate_source="monitor",
                monitoring=MonitoringConfig(translation_error=0.15))),
            ("monitor (30% error)", SimulationOptions(
                estimate_source="monitor",
                monitoring=MonitoringConfig(translation_error=0.30))),
        ):
            rows[label] = _mean_makespan(
                lambda: make_scheduler("umr"), gamma=0.0, options=options
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: resource information source for UMR (DAS-2, gamma=0)",
        ["estimate source", "mean makespan (s)"],
        [[k, v] for k, v in rows.items()],
        "ablation_monitoring.txt",
    )
    # probing matches the oracle on a dedicated platform
    assert rows["probe"] <= rows["oracle"] * 1.02
    # monitoring's translation error costs real makespan, growing with error
    assert rows["monitor (15% error)"] > rows["probe"]
    assert rows["monitor (30% error)"] > rows["monitor (15% error)"] * 0.99
    # even billing the probe round, probing beats badly-translated monitoring
    assert rows["probe (time billed)"] < rows["monitor (30% error)"]


def test_ablation_lineage_ladder(benchmark):
    """One-round -> multi-installment -> UMR on the latency-heavy DAS-2."""

    def sweep():
        return {
            name: _mean_makespan(lambda n=name: make_scheduler(n), runs=1)
            for name in (
                "oneround-linear", "oneround-affine",
                "multiinstallment-5", "umr", "adaptive-umr",
            )
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(
        "Ablation: DLS lineage on DAS-2 (gamma=0)",
        ["algorithm", "mean makespan (s)"],
        [[k, v] for k, v in results.items()],
        "ablation_lineage.txt",
    )
    # each generation improves (or at least does not regress) on DAS-2
    assert results["umr"] < results["oneround-affine"]
    assert results["oneround-affine"] <= results["oneround-linear"] * 1.02
    assert results["umr"] <= results["multiinstallment-5"] * 1.02
