"""Shared infrastructure for the figure/table reproduction benches.

Each bench runs one panel of the paper's evaluation (10 runs per
algorithm, like the paper), prints the measured-vs-paper comparison
table, and persists it under ``benchmarks/results/`` so EXPERIMENTS.md
can reference the exact rows.

The paper reports most results as percentage slowdown relative to the
best algorithm of each panel; the ``PAPER_*`` dicts below transcribe
those numbers from the text of Sections 4.2 and 5.2 (0.0 marks the
winner(s); None where the paper gives no number for that algorithm).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.experiments import ExperimentConfig, ExperimentResult, run_experiment
from repro.analysis.tables import render_slowdown_table
from repro.core.registry import PAPER_ALGORITHMS
from repro.platform.presets import PAPER_LOAD_UNITS

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper-reported slowdowns vs the best algorithm, per panel.
PAPER_FIG2_DAS2 = {
    0.0: {"umr": 0.0, "rumr": 0.0, "simple-5": 0.05, "wf": 0.10, "simple-1": 0.26,
          "fixed-rumr": None},
    0.10: {"fixed-rumr": 0.0, "wf": None, "umr": None, "rumr": None,
           "simple-1": None, "simple-5": None},
}
PAPER_FIG3_METEOR = {
    0.0: {"umr": 0.0, "wf": 0.0, "rumr": 0.0, "fixed-rumr": 0.0,
          "simple-1": 0.21, "simple-5": 0.24},
    0.10: {"wf": 0.0, "fixed-rumr": 0.0, "umr": 0.20, "rumr": 0.23,
           "simple-1": None, "simple-5": None},
}
PAPER_FIG4_MIXED = {
    0.0: {"umr": 0.0, "rumr": 0.0, "simple-5": 0.17, "simple-1": 0.25,
          "wf": None, "fixed-rumr": None},
    0.10: {"wf": 0.0, "fixed-rumr": 0.0, "simple-5": 0.14, "simple-1": 0.28,
           "umr": None, "rumr": None},
}
PAPER_CASE_STUDY = {
    "wf": 0.0, "rumr": 0.02, "umr": 0.07, "fixed-rumr": 0.07,
    "simple-5": 0.38, "simple-1": 0.52,
}

#: Section 4.3 averages across the grid of Section 4 scenarios.
PAPER_SECTION43 = {"simple-1": 0.28, "simple-5": 0.18, "umr_high_gamma": 0.17}


def run_panel(
    label: str,
    grid_factory,
    gamma: float,
    *,
    total_load: float = PAPER_LOAD_UNITS,
    autocorrelation: float = 0.0,
    runs: int = 10,
    algorithms=PAPER_ALGORITHMS,
) -> ExperimentResult:
    """Run one figure panel with the paper's 10-run methodology."""
    return run_experiment(
        ExperimentConfig(
            label=label,
            grid_factory=grid_factory,
            total_load=total_load,
            gamma=gamma,
            algorithms=algorithms,
            runs=runs,
            noise_autocorrelation=autocorrelation,
        )
    )


def emit_panel(result: ExperimentResult, paper: dict | None, filename: str) -> str:
    """Render, print, and persist one panel's comparison table (+ CSV)."""
    from repro.analysis.export import experiment_to_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    experiment_to_csv(result, RESULTS_DIR / (filename.rsplit(".", 1)[0] + ".csv"))
    table = render_slowdown_table(
        result.config.label,
        result.slowdowns(),
        makespans={n: r.stats.mean for n, r in result.by_algorithm.items()},
        paper=paper,
    )
    rumr = result.by_algorithm.get("rumr")
    if rumr is not None:
        switched = rumr.count_annotation("rumr_switched")
        late = rumr.count_annotation("rumr_switch_too_late")
        table += (
            f"\n(online RUMR: switched {switched}/{len(rumr.annotations)} runs, "
            f"detected-but-too-late {late}/{len(rumr.annotations)})"
        )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(table + "\n")
    return table
