"""Figure 3: Meteor cluster, 16 nodes, r = 46, gamma in {0%, 10%}.

Paper findings reproduced and asserted:

* gamma = 0: all cost-model-aware algorithms achieve comparable
  performance (start-up costs are low, so 'the UMR approach does not lead
  to any advantage'); only SIMPLE-n trails clearly (paper: +21% / +24%).
* gamma = 10%: 'the only thing that matters ... is adaptation to
  uncertainty' -- Weighted Factoring best, UMR +20%, RUMR +23% (failed
  switch), Fixed-RUMR ~ Weighted Factoring.
"""

import pytest
from _support import PAPER_FIG3_METEOR, emit_panel, run_panel

from repro.platform.presets import meteor_cluster


def test_fig3_meteor_gamma0(benchmark):
    result = benchmark.pedantic(
        run_panel, args=("Figure 3 -- Meteor (16 nodes, r=46), gamma=0",
                         lambda: meteor_cluster(16), 0.0),
        rounds=1, iterations=1,
    )
    emit_panel(result, PAPER_FIG3_METEOR[0.0], "fig3_meteor_gamma0.txt")

    slow = result.slowdowns()
    # sophisticated algorithms within a few percent of each other
    for name in ("umr", "wf", "rumr", "fixed-rumr"):
        assert slow[name] < 0.10
    # static chunking clearly behind
    assert slow["simple-1"] > 0.12
    assert slow["simple-5"] > 0.08


def test_fig3_meteor_gamma10(benchmark):
    result = benchmark.pedantic(
        run_panel, args=("Figure 3 -- Meteor (16 nodes, r=46), gamma=10%",
                         lambda: meteor_cluster(16), 0.10),
        rounds=1, iterations=1,
    )
    emit_panel(result, PAPER_FIG3_METEOR[0.10], "fig3_meteor_gamma10.txt")

    slow = result.slowdowns()
    # WF (or its equal, Fixed-RUMR) wins; UMR/RUMR trail by >= ~10%
    assert slow["wf"] < 0.05
    assert slow["umr"] > 0.10                       # paper: +20%
    assert slow["rumr"] > 0.08                      # paper: +23%
    assert result.makespan("fixed-rumr") == pytest.approx(
        result.makespan("wf"), rel=0.05             # paper: 'roughly the same'
    )
    # the paper's takeaway: on a nearby dedicated cluster, simple
    # Factoring is sufficient
    assert result.makespan("wf") <= result.makespan("umr")
