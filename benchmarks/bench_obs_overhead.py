"""Observability overhead: instrumented vs no-op on the six-job trace.

The ``repro.obs`` layer promises that code which does not opt in pays
one attribute check per instrumentation site.  This bench runs the PR 1
six-job service trace (bench_multijob_service's workload) under three
configurations and compares against the no-op default (``OBS_DISABLED``):

* **engine instrumentation** (profiler: heap high-water, run timing,
  per-phase wall time hooked into the engine hot loop) -- design budget
  5 % (DESIGN.md section 4.4); measures ~2 % on a quiet machine;
* **full collection** (ring-buffer event bus + metrics + tracer +
  profiler, i.e. ``Observability.armed()``) -- buys a structured record
  of every chunk and measures ~10-20 % on this trace;
* **distributed** (full collection + an active trace context, the
  daemon's state while running a gateway-submitted traced job) -- adds
  span-identity assignment and a per-chunk dispatch span on top of full
  collection; budget 5 % over *armed* (the distributed machinery must
  be nearly free relative to what collection already costs, and exactly
  free when ``OBS_DISABLED`` -- the no-op baseline is that path).

Timing interleaves the configurations and takes min-of-N
``process_time`` per configuration (the minimum discards interference,
which only ever adds time).  The *assertions* carry generous headroom
over the design budgets: shared CI boxes show +/-20 % CPU-speed swings
at this timescale, and a flaky tight gate is worse than a loose one --
the gates exist to catch a gross regression (an accidental allocation
or syscall on the disabled/hot path), while the printed ratios and the
persisted trajectory (``BENCH_obs_overhead.json``, gated by CI against
its own history) track the real numbers.
"""

import sys
import time
from pathlib import Path

import _trajectory
from _support import RESULTS_DIR
from bench_multijob_service import service_trace

from repro.obs import EngineProfiler, Observability, TraceContext
from repro.platform.presets import das2_cluster
from repro.service import ServiceClock

TRAJECTORY_PATH = Path(__file__).parent / "BENCH_obs_overhead.json"

#: DESIGN.md section 4.4 budget for the engine's own instrumentation.
ENGINE_BUDGET = 1.05
#: Distributed identity/span budget, relative to plain full collection.
DISTRIBUTED_BUDGET = 1.05
#: Gate ceilings = budget + timer-noise headroom (see module docstring).
ENGINE_GATE = 1.25
FULL_COLLECTION_GATE = 1.60
DISTRIBUTED_GATE = 1.30
REPEATS = 9


def _distributed() -> Observability:
    """Full collection with an active trace context (traced-job state)."""
    obs = Observability.armed(distributed=True)
    obs.tracer.set_context(TraceContext.new_root(obs.tracer))
    return obs


_CONFIGS = {
    "no-op": lambda: None,
    "engine": lambda: Observability(profiler=EngineProfiler()),
    "armed": Observability.armed,
    "distributed": _distributed,
}


def _run_once(observability) -> float:
    grid = das2_cluster(nodes=8)
    kwargs = {} if observability is None else {"observability": observability}
    clock = ServiceClock(grid, policy="fair-share", **kwargs)
    start = time.process_time()
    outcome = clock.run(service_trace())
    elapsed = time.process_time() - start
    assert outcome.service.num_jobs == 6
    return elapsed


def _measure() -> dict[str, float]:
    for factory in _CONFIGS.values():
        _run_once(factory())  # warm caches/bytecode before timing
    best = {name: float("inf") for name in _CONFIGS}
    for _ in range(REPEATS):
        for name, factory in _CONFIGS.items():
            best[name] = min(best[name], _run_once(factory()))
    return best


def test_instrumentation_overhead_within_budget():
    best = _measure()
    base = best["no-op"]
    engine_ratio = best["engine"] / base
    armed_ratio = best["armed"] / base
    distributed_over_armed = best["distributed"] / best["armed"]

    summary = (
        f"obs overhead: no-op={base * 1e3:.1f}ms "
        f"engine={best['engine'] * 1e3:.1f}ms (x{engine_ratio:.3f}, "
        f"budget {ENGINE_BUDGET}) "
        f"armed={best['armed'] * 1e3:.1f}ms (x{armed_ratio:.3f}) "
        f"distributed={best['distributed'] * 1e3:.1f}ms "
        f"(x{distributed_over_armed:.3f} over armed, "
        f"budget {DISTRIBUTED_BUDGET})"
    )
    print(summary, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_overhead.txt").write_text(summary + "\n")
    _trajectory.append(
        TRAJECTORY_PATH,
        {
            "engine_ratio": round(engine_ratio, 4),
            "armed_ratio": round(armed_ratio, 4),
            "distributed_over_armed_ratio": round(distributed_over_armed, 4),
        },
    )

    assert engine_ratio <= ENGINE_GATE, summary
    assert armed_ratio <= FULL_COLLECTION_GATE, summary
    assert distributed_over_armed <= DISTRIBUTED_GATE, summary


def test_armed_run_actually_collected():
    """Guard against the bench silently measuring two no-op runs."""
    obs = Observability.armed()
    grid = das2_cluster(nodes=8)
    ServiceClock(grid, policy="fair-share", observability=obs).run(service_trace())
    assert obs.ring_events("chunk.completed")
    assert "repro_chunks_dispatched_total" in obs.metrics.render_prometheus()
    assert obs.profiler.report().events_processed > 0
