"""Automatic algorithm selection, evaluated across the paper's scenarios.

Section 3.3: the algorithm "could be determined automatically by APST".
This bench measures how good that automation is: for every Section 4 / 5
scenario, the advisor picks an algorithm (using only the gamma knowledge
a user would have), and we compare its pick's makespan against the
scenario's true best algorithm (from the full back-to-back comparison).
A perfect advisor has zero regret; we require <= 3% everywhere.
"""

import sys

from _support import RESULTS_DIR, run_panel

from repro.analysis.tables import render_table
from repro.apst.advisor import recommend_algorithm
from repro.platform.presets import (
    GRAIL_FRAMES,
    GRAIL_GAMMA,
    GRAIL_NOISE_AUTOCORRELATION,
    PAPER_LOAD_UNITS,
    das2_cluster,
    grail_lan,
    meteor_cluster,
    mixed_grid,
)

SCENARIOS = [
    ("das2 g=0", lambda: das2_cluster(16), 0.0, PAPER_LOAD_UNITS, 0.0),
    ("das2 g=10%", lambda: das2_cluster(16), 0.10, PAPER_LOAD_UNITS, 0.0),
    ("meteor g=0", lambda: meteor_cluster(16), 0.0, PAPER_LOAD_UNITS, 0.0),
    ("meteor g=10%", lambda: meteor_cluster(16), 0.10, PAPER_LOAD_UNITS, 0.0),
    ("mixed g=10%", mixed_grid, 0.10, PAPER_LOAD_UNITS, 0.0),
    ("grail g=20%", grail_lan, GRAIL_GAMMA, float(GRAIL_FRAMES),
     GRAIL_NOISE_AUTOCORRELATION),
]


def test_advisor_regret_across_paper_scenarios(benchmark):
    def evaluate():
        rows = []
        for label, factory, gamma, load, ac in SCENARIOS:
            recommendation = recommend_algorithm(
                factory(), load,
                gamma=gamma if gamma > 0 else None,
                autocorrelation=ac,
            )
            truth = run_panel(label, factory, gamma, total_load=load,
                              autocorrelation=ac, runs=5)
            best = truth.best_algorithm
            picked_makespan = truth.makespan(recommendation.algorithm)
            best_makespan = truth.makespan(best)
            rows.append({
                "scenario": label,
                "picked": recommendation.algorithm,
                "true_best": best,
                "regret": picked_makespan / best_makespan - 1.0,
            })
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    table = render_table(
        ["scenario", "advisor pick", "true best", "regret"],
        [[r["scenario"], r["picked"], r["true_best"], f"+{r['regret']:.1%}"]
         for r in rows],
        title="Automatic algorithm selection: regret vs the true best",
    )
    print(table, file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "advisor_regret.txt").write_text(table + "\n")

    for r in rows:
        assert r["regret"] <= 0.03, f"{r['scenario']}: regret {r['regret']:.1%}"
    # the advisor never recommends static chunking
    assert all(not r["picked"].startswith("simple") for r in rows)
