"""Section 5 case study: parallel MPEG-4 encoding on the GRAIL LAN.

Two parts:

1. **The scheduling panel** (the paper's quantitative comparison): seven
   non-dedicated processors (1 slow + 6 fast), r = 13.5, measured
   gamma ~ 20% with persistent background load (AR noise), an 1830-frame
   load with callback division at frame granularity.  Paper: Weighted
   Factoring best; RUMR within 2% with a *successful* phase switch in
   every run; UMR and Fixed-RUMR ~7% slower; SIMPLE-5 +38%; SIMPLE-1 +52%.

2. **The end-to-end pipeline** on the real local execution backend:
   split (callback/avisplit) -> ship -> encode (toy mencoder) -> collect
   -> merge (avimerge), verifying the merged output is byte-identical to
   a serial encode -- the correctness property behind the whole case
   study.
"""

import sys
import tempfile
from pathlib import Path

import pytest
from _support import PAPER_CASE_STUDY, emit_panel, run_panel

from repro.apst.division import CallbackDivision
from repro.core.registry import make_scheduler
from repro.execution.local import LocalExecutionBackend
from repro.platform.presets import (
    GRAIL_FRAMES,
    GRAIL_GAMMA,
    GRAIL_NOISE_AUTOCORRELATION,
    grail_lan,
)
from repro.platform.resources import Cluster, Grid
from repro.workloads.video import (
    avimerge,
    make_avisplit_callback,
    mencoder_encode,
    write_dv_file,
)


def test_case_study_scheduling_panel(benchmark):
    result = benchmark.pedantic(
        run_panel,
        args=("Section 5 -- GRAIL LAN (7 procs, r=13.5), gamma~20%",
              grail_lan, GRAIL_GAMMA),
        kwargs={"total_load": float(GRAIL_FRAMES),
                "autocorrelation": GRAIL_NOISE_AUTOCORRELATION},
        rounds=1, iterations=1,
    )
    emit_panel(result, PAPER_CASE_STUDY, "case_study_grail.txt")

    slow = result.slowdowns()
    # WF best, RUMR within ~2% (paper), both far ahead of SIMPLE-n
    assert min(slow["wf"], slow["rumr"]) == 0.0
    assert abs(slow["wf"] - slow["rumr"]) < 0.05
    # RUMR switches successfully in every run (paper: 10/10)
    rumr = result.by_algorithm["rumr"]
    assert rumr.count_annotation("rumr_switched") == len(rumr.annotations)
    # UMR and Fixed-RUMR trail (paper: ~7%)
    assert slow["umr"] > 0.05
    assert slow["fixed-rumr"] > 0.02
    # static chunking far behind, SIMPLE-5 better than SIMPLE-1 (paper order)
    assert slow["simple-1"] > 0.35
    assert slow["simple-5"] > 0.25
    assert slow["simple-1"] > slow["simple-5"]


class _EncodeApp:
    """Worker-side toy mencoder: encode a TDV chunk to TM4V bytes."""

    def __init__(self, scratch: Path) -> None:
        self._scratch = scratch
        self._counter = 0

    def process(self, data: bytes, units=None) -> bytes:
        self._counter += 1
        src = self._scratch / f"chunk_{self._counter}.tdv"
        src.write_bytes(data)
        dst = src.with_suffix(".tm4v")
        mencoder_encode(src, dst)
        return dst.read_bytes()


def test_case_study_end_to_end_pipeline(benchmark):
    """Figure 5's seven steps on the real backend, with verification."""
    workdir = Path(tempfile.mkdtemp(prefix="bench_case_study_"))
    frames = 60  # shortened load so the real run takes seconds
    video = workdir / "input.tdv"
    write_dv_file(video, frames=frames, frame_bytes=1024, seed=11)
    grid = Grid.from_clusters(
        Cluster.homogeneous("lan", 4, speed=30.0, bandwidth=400.0,
                            comm_latency=0.1, comp_latency=0.05)
    )

    def pipeline():
        division = CallbackDivision(
            frames, function=make_avisplit_callback(video), workdir=workdir
        )
        backend = LocalExecutionBackend(
            workdir / "work", app=_EncodeApp(workdir), time_scale=0.005
        )
        report = backend.execute(
            grid, make_scheduler("rumr"), division, None, probe_units=4.0
        )
        merged = workdir / "mpeg4.tm4v"
        avimerge(backend.last_outputs, merged)
        return report, merged

    report, merged = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    serial = workdir / "serial.tm4v"
    mencoder_encode(video, serial)
    identical = merged.read_bytes() == serial.read_bytes()
    print(
        f"case-study pipeline: {report.num_chunks} chunks over "
        f"{len(grid)} workers, makespan {report.makespan:.1f} model-s, "
        f"merged output byte-identical: {identical}",
        file=sys.stderr,
    )
    assert identical
    assert sum(c.units for c in report.chunks) == pytest.approx(frames)
