"""Testbed presets calibrated to the paper's published constants.

Section 4 of the paper evaluates on a two-cluster Grid:

* **DAS-2** (Vrije Universiteit, Amsterdam): 1 GHz Pentium-III nodes
  reached over a WAN.  Measured constants: communication start-up ~6.4 s,
  computation start-up ~0.7 s, application-level bandwidth ~92 kB/s,
  communication/computation ratio r = 37.
* **Meteor** (SDSC, near the APST daemon): 790-996 MHz Pentium-III nodes.
  Constants: ~0.7 s / ~0.1 s start-ups, ~116 kB/s, r = 46.

Section 5's case study runs on the **GRAIL** lab LAN: 7 processors
(1 x 700 MHz Athlon + 6 x 1.73 GHz Athlon XP), non-dedicated, measured
r = 13.5 and gamma ~= 20%; the load is an 1830-frame DV video.

The paper's synthetic-application runs lasted 68-178 minutes; we size the
synthetic load at :data:`PAPER_LOAD_UNITS` units with an ideal (fully
parallel, zero-communication) compute time of 100 minutes, which lands
every algorithm in the paper's band.  Load units are abstract -- what
matters for every scheduling effect is r, the start-up costs, and gamma,
all of which are taken from the paper.
"""

from __future__ import annotations

import numpy as np

from .calibrate import calibrate_cluster, clock_speed_factors
from .resources import Cluster, Grid

#: Synthetic-application load (abstract units) for the Section 4 experiments.
PAPER_LOAD_UNITS = 10_000.0

#: Ideal fully-parallel compute time for the Section 4 experiments (seconds).
PAPER_IDEAL_COMPUTE_S = 6_000.0

#: DAS-2 constants from the paper.
DAS2_R = 37.0
DAS2_COMM_LATENCY_S = 6.4
DAS2_COMP_LATENCY_S = 0.7

#: Meteor constants from the paper.
METEOR_R = 46.0
METEOR_COMM_LATENCY_S = 0.7
METEOR_COMP_LATENCY_S = 0.1
METEOR_MHZ_RANGE = (790.0, 996.0)

#: GRAIL case-study constants from the paper.
GRAIL_R = 13.5
GRAIL_COMM_LATENCY_S = 0.5
GRAIL_COMP_LATENCY_S = 0.3
GRAIL_GAMMA = 0.20
#: AR(1) coefficient of per-worker noise on the non-dedicated GRAIL hosts:
#: background load persists across consecutive chunks (unlike the dedicated
#: Section 4 platforms, where per-chunk noise is independent).
GRAIL_NOISE_AUTOCORRELATION = 0.6
GRAIL_FRAMES = 1830
GRAIL_PROBE_FRAMES = 21
GRAIL_IDEAL_COMPUTE_S = 700.0
#: Effective *application-level* speed factors.  The paper reports clock
#: rates (1 x 700 MHz Athlon + 6 x 1.73 GHz Athlon XP, ratio 0.40), but its
#: own SIMPLE-1 result (+52% over Weighted Factoring) pins the slow host's
#: effective mencoder throughput at ~0.5 of the fast hosts -- clock ratio
#: alone would make the slow host's uniform share dominate at ~+90%.  We
#: calibrate to the application-level ratio the paper's numbers imply.
GRAIL_SPEED_FACTORS = (0.51, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


def das2_cluster(
    nodes: int = 16,
    *,
    total_load: float = PAPER_LOAD_UNITS,
    ideal_compute_time: float = PAPER_IDEAL_COMPUTE_S,
) -> Grid:
    """The DAS-2 cluster as used in Figure 2 (16 nodes, r = 37)."""
    cluster = calibrate_cluster(
        "das2",
        nodes=nodes,
        comm_comp_ratio=DAS2_R,
        total_load=total_load,
        ideal_compute_time=ideal_compute_time,
        comm_latency=DAS2_COMM_LATENCY_S,
        comp_latency=DAS2_COMP_LATENCY_S,
    )
    return Grid.from_clusters(cluster)


def _meteor_factors(nodes: int) -> list[float]:
    """Deterministic spread of clock rates over the paper's 790-996 MHz."""
    low, high = METEOR_MHZ_RANGE
    mhz = np.linspace(low, high, nodes)
    return clock_speed_factors(list(mhz))


def meteor_cluster(
    nodes: int = 16,
    *,
    total_load: float = PAPER_LOAD_UNITS,
    ideal_compute_time: float = PAPER_IDEAL_COMPUTE_S,
) -> Grid:
    """The Meteor cluster as used in Figure 3 (16 nodes, r = 46)."""
    cluster = calibrate_cluster(
        "meteor",
        nodes=nodes,
        comm_comp_ratio=METEOR_R,
        total_load=total_load,
        ideal_compute_time=ideal_compute_time,
        comm_latency=METEOR_COMM_LATENCY_S,
        comp_latency=METEOR_COMP_LATENCY_S,
        speed_factors=_meteor_factors(nodes),
    )
    return Grid.from_clusters(cluster)


def mixed_grid(
    das2_nodes: int = 8,
    meteor_nodes: int = 8,
    *,
    total_load: float = PAPER_LOAD_UNITS,
    ideal_compute_time: float = PAPER_IDEAL_COMPUTE_S,
) -> Grid:
    """DAS-2 (8 nodes) + Meteor (8 nodes), the Figure 4 platform.

    Each half is calibrated so the *combined* grid delivers the target
    aggregate speed; per-cluster r keeps the paper's per-site values.
    """
    total_nodes = das2_nodes + meteor_nodes
    das2_share = total_load * das2_nodes / total_nodes
    meteor_share = total_load * meteor_nodes / total_nodes
    das2 = calibrate_cluster(
        "das2",
        nodes=das2_nodes,
        comm_comp_ratio=DAS2_R,
        total_load=das2_share,
        ideal_compute_time=ideal_compute_time,
        comm_latency=DAS2_COMM_LATENCY_S,
        comp_latency=DAS2_COMP_LATENCY_S,
    )
    meteor = calibrate_cluster(
        "meteor",
        nodes=meteor_nodes,
        comm_comp_ratio=METEOR_R,
        total_load=meteor_share,
        ideal_compute_time=ideal_compute_time,
        comm_latency=METEOR_COMM_LATENCY_S,
        comp_latency=METEOR_COMP_LATENCY_S,
        speed_factors=_meteor_factors(meteor_nodes),
    )
    return Grid.from_clusters(das2, meteor)


def grail_lan(
    *,
    total_load: float = float(GRAIL_FRAMES),
    ideal_compute_time: float = GRAIL_IDEAL_COMPUTE_S,
) -> Grid:
    """The GRAIL lab LAN of the Section 5 case study (7 processors).

    Load units are video *frames*; the heterogeneity mirrors the paper's
    1 x 700 MHz + 6 x 1.73 GHz processor mix at the application-level
    throughput ratio its results imply (see GRAIL_SPEED_FACTORS).
    """
    cluster = calibrate_cluster(
        "grail",
        nodes=len(GRAIL_SPEED_FACTORS),
        comm_comp_ratio=GRAIL_R,
        total_load=total_load,
        ideal_compute_time=ideal_compute_time,
        comm_latency=GRAIL_COMM_LATENCY_S,
        comp_latency=GRAIL_COMP_LATENCY_S,
        speed_factors=GRAIL_SPEED_FACTORS,
    )
    return Grid.from_clusters(cluster)


def preset_by_name(name: str) -> Grid:
    """Look up a preset platform: das2 | meteor | mixed | grail."""
    presets = {
        "das2": das2_cluster,
        "meteor": meteor_cluster,
        "mixed": mixed_grid,
        "grail": grail_lan,
    }
    key = name.strip().lower()
    if key not in presets:
        raise KeyError(f"unknown platform preset {name!r}; options: {sorted(presets)}")
    return presets[key]()


__all__ = [
    "PAPER_LOAD_UNITS",
    "PAPER_IDEAL_COMPUTE_S",
    "DAS2_R",
    "METEOR_R",
    "GRAIL_R",
    "GRAIL_GAMMA",
    "GRAIL_FRAMES",
    "GRAIL_PROBE_FRAMES",
    "das2_cluster",
    "meteor_cluster",
    "mixed_grid",
    "grail_lan",
    "preset_by_name",
]
