"""Grid platform descriptions, presets, and calibration."""

from .calibrate import calibrate_cluster, clock_speed_factors, platform_summary
from .presets import (
    das2_cluster,
    grail_lan,
    meteor_cluster,
    mixed_grid,
    preset_by_name,
)
from .resources import Cluster, Grid, WorkerSpec

__all__ = [
    "Cluster",
    "Grid",
    "WorkerSpec",
    "calibrate_cluster",
    "clock_speed_factors",
    "platform_summary",
    "das2_cluster",
    "meteor_cluster",
    "mixed_grid",
    "grail_lan",
    "preset_by_name",
]
