"""Platform calibration from paper-reported aggregates.

The paper reports its testbed in aggregate terms -- the communication/
computation ratio ``r``, start-up costs, and the 68-178 minute makespan
band -- rather than raw per-worker rates.  This module inverts those
aggregates into concrete :class:`~repro.platform.resources.WorkerSpec`
parameters:

* the *ideal compute time* (load fully parallelized, no communication)
  pins the aggregate speed:  ``sum(S_i) = W / T_ideal``;
* the ratio pins the bandwidth:  ``B = r * mean(S_i)`` (per the paper's
  definition of r as per-unit compute time over per-unit transfer time).

Heterogeneity is expressed as per-worker speed factors (e.g. CPU clock
ratios), which preserve the aggregate speed.
"""

from __future__ import annotations

from collections.abc import Sequence

from .._util import check_positive
from ..errors import PlatformError
from .resources import Cluster, Grid, WorkerSpec


def calibrate_cluster(
    name: str,
    *,
    nodes: int,
    comm_comp_ratio: float,
    total_load: float,
    ideal_compute_time: float,
    comm_latency: float = 0.0,
    comp_latency: float = 0.0,
    speed_factors: Sequence[float] | None = None,
) -> Cluster:
    """Build a cluster whose aggregates match the paper's reported values.

    Parameters
    ----------
    comm_comp_ratio:
        Target platform ``r`` (bandwidth over mean speed).
    total_load / ideal_compute_time:
        Together they fix the aggregate speed: processing ``total_load``
        units with every worker busy takes ``ideal_compute_time`` seconds.
    speed_factors:
        Optional per-node relative speeds (e.g. CPU MHz ratios); length
        must equal ``nodes``.  They are normalized so the aggregate speed
        is preserved exactly.
    """
    if nodes < 1:
        raise PlatformError("nodes must be >= 1")
    check_positive("comm_comp_ratio", comm_comp_ratio, PlatformError)
    check_positive("total_load", total_load, PlatformError)
    check_positive("ideal_compute_time", ideal_compute_time, PlatformError)
    total_speed = total_load / ideal_compute_time
    mean_speed = total_speed / nodes
    bandwidth = comm_comp_ratio * mean_speed

    if speed_factors is None:
        factors = [1.0] * nodes
    else:
        factors = [float(f) for f in speed_factors]
        if len(factors) != nodes:
            raise PlatformError(
                f"speed_factors has {len(factors)} entries for {nodes} nodes"
            )
        if min(factors) <= 0:
            raise PlatformError("speed factors must be positive")
    scale = total_speed / sum(factors)
    workers = tuple(
        WorkerSpec(
            name=f"{name}-{i:02d}",
            speed=factors[i] * scale,
            bandwidth=bandwidth,
            comm_latency=comm_latency,
            comp_latency=comp_latency,
            cluster=name,
        )
        for i in range(nodes)
    )
    return Cluster(name=name, workers=workers)


def clock_speed_factors(mhz: Sequence[float]) -> list[float]:
    """Speed factors from CPU clock rates (normalized to the fastest)."""
    if not mhz:
        raise PlatformError("need at least one clock rate")
    fastest = max(mhz)
    if fastest <= 0:
        raise PlatformError("clock rates must be positive")
    return [m / fastest for m in mhz]


def platform_summary(grid: Grid) -> dict:
    """Aggregate view of a grid, for reports and sanity checks."""
    speeds = [w.speed for w in grid.workers]
    bandwidths = [w.bandwidth for w in grid.workers]
    return {
        "workers": len(grid),
        "clusters": list(grid.clusters),
        "total_speed": grid.total_speed,
        "mean_speed": grid.mean_speed,
        "comm_comp_ratio": grid.comm_comp_ratio,
        "speed_min": min(speeds),
        "speed_max": max(speeds),
        "bandwidth_mean": sum(bandwidths) / len(bandwidths),
        "comm_latency_mean": sum(w.comm_latency for w in grid.workers) / len(grid),
        "comp_latency_mean": sum(w.comp_latency for w in grid.workers) / len(grid),
    }
