"""Grid platform description: workers, clusters, and single-level-tree grids.

APST-DV (and all the multi-round DLS literature it implements) models the
platform as a *single-level tree*: one master that holds the input load and
``N`` workers, each reached through its own logical link.  Transfers out of
the master are **serialized** (one outgoing transfer at a time), which the
paper identifies as the reason communication matters even at large
communication/computation ratios.

Costs are *affine*, per the paper:

* transferring a chunk of ``x`` load units to worker *i* occupies the master
  link for ``comm_latency_i + x / bandwidth_i`` seconds;
* computing that chunk on worker *i* takes ``comp_latency_i + x / speed_i``
  seconds (times a multiplicative noise term when uncertainty is enabled).

Load is measured in abstract *units* (bytes, frames, records...); speeds in
units/second and bandwidths in units/second, so the communication/
computation ratio of the platform is ``r = bandwidth / speed`` per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .._util import check_nonnegative, check_positive
from ..errors import PlatformError


@dataclass(frozen=True)
class WorkerSpec:
    """Static description of one worker and its link from the master.

    Parameters
    ----------
    name:
        Unique worker identifier (e.g. ``"das2-03"``).
    speed:
        Computation rate in load units per second (``S_i``).
    bandwidth:
        Link bandwidth from the master in load units per second (``B_i``).
    comm_latency:
        Communication start-up cost ``nLat_i`` in seconds (connection
        establishment, batch-scheduler hand-off...).
    comp_latency:
        Computation start-up cost ``cLat_i`` in seconds (process launch,
        input staging on the node...).
    cluster:
        Name of the cluster this worker belongs to (informational).
    """

    name: str
    speed: float
    bandwidth: float
    comm_latency: float = 0.0
    comp_latency: float = 0.0
    cluster: str = "default"

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("worker name must be non-empty")
        check_positive("speed", self.speed, PlatformError)
        check_positive("bandwidth", self.bandwidth, PlatformError)
        check_nonnegative("comm_latency", self.comm_latency, PlatformError)
        check_nonnegative("comp_latency", self.comp_latency, PlatformError)

    @property
    def comm_comp_ratio(self) -> float:
        """Per-unit communication/computation ratio ``r_i = B_i / S_i``.

        Matches the paper's definition: the time to *compute* one unit of
        load divided by the time to *transfer* it.
        """
        return self.bandwidth / self.speed

    def unit_compute_time(self) -> float:
        """Seconds to compute one load unit (excluding start-up)."""
        return 1.0 / self.speed

    def unit_transfer_time(self) -> float:
        """Seconds to transfer one load unit (excluding start-up)."""
        return 1.0 / self.bandwidth

    def compute_time(self, units: float) -> float:
        """Deterministic (noise-free) compute time of a chunk."""
        check_nonnegative("units", units, PlatformError)
        return self.comp_latency + units / self.speed

    def transfer_time(self, units: float) -> float:
        """Link occupancy to send a chunk of ``units`` to this worker."""
        check_nonnegative("units", units, PlatformError)
        return self.comm_latency + units / self.bandwidth

    def scaled(self, *, speed_factor: float = 1.0, bandwidth_factor: float = 1.0) -> "WorkerSpec":
        """Return a copy with scaled speed/bandwidth (for heterogeneity)."""
        check_positive("speed_factor", speed_factor, PlatformError)
        check_positive("bandwidth_factor", bandwidth_factor, PlatformError)
        return replace(
            self,
            speed=self.speed * speed_factor,
            bandwidth=self.bandwidth * bandwidth_factor,
        )


@dataclass(frozen=True)
class Cluster:
    """A named group of workers sharing a site (DAS-2, Meteor, GRAIL...)."""

    name: str
    workers: tuple[WorkerSpec, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("cluster name must be non-empty")
        if not self.workers:
            raise PlatformError(f"cluster {self.name!r} has no workers")
        for w in self.workers:
            if w.cluster != self.name:
                raise PlatformError(
                    f"worker {w.name!r} declares cluster {w.cluster!r}, "
                    f"but is placed in cluster {self.name!r}"
                )

    def __len__(self) -> int:
        return len(self.workers)

    @staticmethod
    def homogeneous(
        name: str,
        count: int,
        *,
        speed: float,
        bandwidth: float,
        comm_latency: float = 0.0,
        comp_latency: float = 0.0,
    ) -> "Cluster":
        """Build a cluster of ``count`` identical workers named ``name-NN``."""
        if count <= 0:
            raise PlatformError("cluster must have at least one worker")
        workers = tuple(
            WorkerSpec(
                name=f"{name}-{i:02d}",
                speed=speed,
                bandwidth=bandwidth,
                comm_latency=comm_latency,
                comp_latency=comp_latency,
                cluster=name,
            )
            for i in range(count)
        )
        return Cluster(name=name, workers=workers)


@dataclass(frozen=True)
class Grid:
    """A single-level-tree platform: a master plus workers from >= 1 clusters.

    The order of ``workers`` is the canonical worker index used everywhere
    (scheduler dispatch targets, traces, reports).
    """

    workers: tuple[WorkerSpec, ...]
    master_name: str = "master"
    clusters: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.workers:
            raise PlatformError("grid must contain at least one worker")
        names = [w.name for w in self.workers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise PlatformError(f"duplicate worker names in grid: {dupes}")
        if not self.clusters:
            seen: list[str] = []
            for w in self.workers:
                if w.cluster not in seen:
                    seen.append(w.cluster)
            object.__setattr__(self, "clusters", tuple(seen))

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    @staticmethod
    def from_clusters(*clusters: Cluster, master_name: str = "master") -> "Grid":
        """Aggregate clusters into one grid (single-level tree)."""
        if not clusters:
            raise PlatformError("at least one cluster required")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate cluster names: {names}")
        workers: list[WorkerSpec] = []
        for c in clusters:
            workers.extend(c.workers)
        return Grid(
            workers=tuple(workers),
            master_name=master_name,
            clusters=tuple(c.name for c in clusters),
        )

    def subset(self, indices: list[int]) -> "Grid":
        """Grid restricted to the given worker indices (order preserved)."""
        if not indices:
            raise PlatformError("subset must keep at least one worker")
        try:
            workers = tuple(self.workers[i] for i in indices)
        except IndexError as exc:
            raise PlatformError(f"worker index out of range: {indices}") from exc
        return Grid(workers=workers, master_name=self.master_name)

    @property
    def total_speed(self) -> float:
        """Aggregate compute rate ``sum(S_i)`` in units/second."""
        return sum(w.speed for w in self.workers)

    @property
    def mean_speed(self) -> float:
        return self.total_speed / len(self.workers)

    @property
    def comm_comp_ratio(self) -> float:
        """Platform-level ``r``: mean bandwidth over mean speed.

        For the homogeneous clusters of the paper this coincides with the
        per-worker ratio (r = 37 on DAS-2, r = 46 on Meteor).
        """
        mean_bw = sum(w.bandwidth for w in self.workers) / len(self.workers)
        return mean_bw / self.mean_speed

    def index_of(self, worker_name: str) -> int:
        """Canonical index of a worker by name."""
        for i, w in enumerate(self.workers):
            if w.name == worker_name:
                return i
        raise PlatformError(f"no worker named {worker_name!r} in grid")

    def cluster_workers(self, cluster: str) -> list[WorkerSpec]:
        """Workers belonging to ``cluster``."""
        found = [w for w in self.workers if w.cluster == cluster]
        if not found:
            raise PlatformError(f"no workers in cluster {cluster!r}")
        return found
