"""Multi-level Grid topologies collapsed to the star scheduling model.

The paper: "We target distributed Grid platforms that aggregate multiple
parallel computing platforms, typically commodity clusters.  These
platforms can be easily modeled as single-level trees in which each leaf
is a cluster and the root is the master."

This module performs that modelling step explicitly.  A platform is
described as a tree of sites and network links (master -> WAN routers ->
cluster head nodes -> workers) with per-link bandwidth and latency; the
collapse to the star model gives each worker

* ``bandwidth`` = the bottleneck (minimum) bandwidth along its path from
  the master, and
* ``comm_latency`` = the sum of per-link latencies along the path (plus
  the worker's own start-up cost),

which is exact for the serialized-master-link regime the DLS algorithms
assume (only one transfer is in flight at a time, so no two links are
ever contended simultaneously).

The tree is held as a :mod:`networkx` DiGraph; :func:`collapse_to_grid`
produces the :class:`~repro.platform.resources.Grid` all schedulers and
backends consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .._util import check_nonnegative, check_positive
from ..errors import PlatformError
from .resources import Grid, WorkerSpec


@dataclass(frozen=True)
class ComputeNode:
    """A leaf of the topology: one worker's compute capability."""

    speed: float
    comp_latency: float = 0.0
    cluster: str = "default"


class GridTopology:
    """A tree of network links with compute nodes at the leaves."""

    def __init__(self, master: str = "master") -> None:
        if not master:
            raise PlatformError("master name must be non-empty")
        self._graph = nx.DiGraph()
        self._graph.add_node(master)
        self._master = master
        self._compute: dict[str, ComputeNode] = {}

    @property
    def master(self) -> str:
        return self._master

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def add_link(
        self, parent: str, child: str, *, bandwidth: float, latency: float = 0.0
    ) -> "GridTopology":
        """Add a network link from ``parent`` down to ``child``."""
        check_positive("bandwidth", bandwidth, PlatformError)
        check_nonnegative("latency", latency, PlatformError)
        if parent not in self._graph:
            raise PlatformError(
                f"parent {parent!r} not in topology (add links top-down)"
            )
        if child in self._graph:
            raise PlatformError(f"node {child!r} already exists (tree, not DAG)")
        self._graph.add_edge(parent, child, bandwidth=bandwidth, latency=latency)
        return self

    def add_worker(
        self,
        parent: str,
        name: str,
        *,
        speed: float,
        bandwidth: float,
        latency: float = 0.0,
        comp_latency: float = 0.0,
        cluster: str | None = None,
    ) -> "GridTopology":
        """Add a worker leaf under ``parent`` with its local link."""
        self.add_link(parent, name, bandwidth=bandwidth, latency=latency)
        self._compute[name] = ComputeNode(
            speed=speed,
            comp_latency=comp_latency,
            cluster=cluster if cluster is not None else parent,
        )
        return self

    def add_cluster(
        self,
        parent: str,
        name: str,
        nodes: int,
        *,
        uplink_bandwidth: float,
        uplink_latency: float = 0.0,
        lan_bandwidth: float,
        lan_latency: float = 0.0,
        speed: float,
        comp_latency: float = 0.0,
    ) -> "GridTopology":
        """Convenience: a head node plus ``nodes`` homogeneous workers."""
        if nodes < 1:
            raise PlatformError("cluster needs at least one node")
        self.add_link(parent, name, bandwidth=uplink_bandwidth,
                      latency=uplink_latency)
        for i in range(nodes):
            self.add_worker(
                name,
                f"{name}-{i:02d}",
                speed=speed,
                bandwidth=lan_bandwidth,
                latency=lan_latency,
                comp_latency=comp_latency,
                cluster=name,
            )
        return self

    # -- collapse ------------------------------------------------------------
    def path_parameters(self, worker: str) -> tuple[float, float]:
        """(bottleneck bandwidth, total latency) master -> worker."""
        if worker not in self._compute:
            raise PlatformError(f"{worker!r} is not a worker leaf")
        try:
            path = nx.shortest_path(self._graph, self._master, worker)
        except nx.NetworkXNoPath as exc:
            raise PlatformError(
                f"no path from master to worker {worker!r}"
            ) from exc
        bandwidth = float("inf")
        latency = 0.0
        for a, b in zip(path, path[1:]):
            edge = self._graph.edges[a, b]
            bandwidth = min(bandwidth, edge["bandwidth"])
            latency += edge["latency"]
        return bandwidth, latency

    def collapse_to_grid(self) -> Grid:
        """The single-level-tree view the DLS algorithms schedule on.

        Exact under serialized master transfers: the effective rate of a
        store-and-forward path with one transfer in flight is its
        bottleneck link, and start-up costs add along the path.
        """
        if not self._compute:
            raise PlatformError("topology has no workers")
        self.validate()
        workers = []
        for name in self._compute:
            node = self._compute[name]
            bandwidth, latency = self.path_parameters(name)
            workers.append(
                WorkerSpec(
                    name=name,
                    speed=node.speed,
                    bandwidth=bandwidth,
                    comm_latency=latency,
                    comp_latency=node.comp_latency,
                    cluster=node.cluster,
                )
            )
        return Grid(workers=tuple(workers), master_name=self._master)

    def validate(self) -> None:
        """Structural checks: a tree rooted at the master, workers at leaves."""
        if not nx.is_arborescence(self._graph):
            raise PlatformError("topology must be a tree rooted at the master")
        for name in self._compute:
            if self._graph.out_degree(name) != 0:
                raise PlatformError(f"worker {name!r} must be a leaf")
        for node in self._graph.nodes:
            if (
                node != self._master
                and self._graph.out_degree(node) == 0
                and node not in self._compute
            ):
                raise PlatformError(
                    f"leaf {node!r} has no compute capability (dangling router?)"
                )


def paper_two_cluster_topology() -> GridTopology:
    """The paper's physical platform as an explicit multi-level topology.

    Master at GRAIL (UCSD); Meteor reached over a metro link to SDSC;
    DAS-2 reached over the transatlantic WAN.  Link numbers are chosen so
    the collapsed star matches the calibrated presets (the WAN is each
    path's bottleneck and carries most of the latency).
    """
    from .presets import mixed_grid

    reference = mixed_grid(8, 8)
    das2_ref = reference.cluster_workers("das2")[0]
    meteor_ref = reference.cluster_workers("meteor")[0]
    topo = GridTopology("grail-master")
    # wide-area paths: bottleneck at the WAN hop, ample LAN behind it
    topo.add_link("grail-master", "wan-amsterdam",
                  bandwidth=das2_ref.bandwidth, latency=das2_ref.comm_latency * 0.9)
    topo.add_link("grail-master", "metro-sdsc",
                  bandwidth=meteor_ref.bandwidth, latency=meteor_ref.comm_latency * 0.5)
    for i, w in enumerate(reference.cluster_workers("das2")):
        topo.add_worker(
            "wan-amsterdam", f"das2-{i:02d}",
            speed=w.speed,
            bandwidth=w.bandwidth * 10,
            latency=w.comm_latency * 0.1,
            comp_latency=w.comp_latency,
            cluster="das2",
        )
    for i, w in enumerate(reference.cluster_workers("meteor")):
        topo.add_worker(
            "metro-sdsc", f"meteor-{i:02d}",
            speed=w.speed,
            bandwidth=w.bandwidth * 10,
            latency=w.comm_latency * 0.5,
            comp_latency=w.comp_latency,
            cluster="meteor",
        )
    return topo
