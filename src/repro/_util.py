"""Small shared helpers (validation, numerics, formatting)."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def require(condition: bool, exc_type: type[Exception], message: str) -> None:
    """Raise ``exc_type(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc_type(message)


def check_positive(name: str, value: float, exc_type: type[Exception]) -> None:
    """Validate that ``value`` is a finite, strictly positive number."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise exc_type(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0:
        raise exc_type(f"{name} must be finite and > 0, got {value!r}")


def check_nonnegative(name: str, value: float, exc_type: type[Exception]) -> None:
    """Validate that ``value`` is a finite number >= 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise exc_type(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value < 0:
        raise exc_type(f"{name} must be finite and >= 0, got {value!r}")


def almost_equal(a: float, b: float, *, rel: float = 1e-9, absolute: float = 1e-9) -> bool:
    """Tolerant float comparison used throughout load-conservation checks."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=absolute)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (an empty mean is a bug here)."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Sample coefficient of variation (std / mean), 0.0 for < 2 samples.

    Uses the unbiased (n-1) variance estimator, which is what the online
    gamma estimator in RUMR relies on.
    """
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    if m == 0:
        return 0.0
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    return math.sqrt(var) / m


def cumulative_sums(values: Iterable[float]) -> list[float]:
    """Running cumulative sums as a list."""
    total = 0.0
    out: list[float] = []
    for v in values:
        total += v
        out.append(total)
    return out


def format_seconds(seconds: float) -> str:
    """Human-readable duration, e.g. ``1h 42m 10s``."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    s = int(round(seconds))
    h, rem = divmod(s, 3600)
    m, sec = divmod(rem, 60)
    if h:
        return f"{h}h {m:02d}m {sec:02d}s"
    if m:
        return f"{m}m {sec:02d}s"
    return f"{seconds:.2f}s"
