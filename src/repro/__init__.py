"""repro: a reproduction of "Practical Divisible Load Scheduling on Grid
Platforms with APST-DV" (van der Raadt, Yang & Casanova, IPDPS 2005).

Public API overview
-------------------
* :mod:`repro.core` -- the DLS algorithms (SIMPLE-n, UMR, Weighted
  Factoring, RUMR, Fixed-RUMR, plus lineage/extension algorithms).
* :mod:`repro.platform` -- grid descriptions and paper-calibrated presets
  (DAS-2, Meteor, mixed, GRAIL).
* :mod:`repro.simulation` -- the discrete-event backend that substitutes
  for the paper's two-cluster testbed.
* :mod:`repro.apst` -- the APST-DV environment: XML specs, load division
  methods, probing, and the daemon.
* :mod:`repro.workloads` -- the synthetic application, Table-1 application
  profiles, and the case-study video toolchain.
* :mod:`repro.analysis` -- experiment harness and statistics.

Quickstart
----------
>>> from repro import simulate_run, make_scheduler, das2_cluster
>>> grid = das2_cluster(nodes=16)
>>> report = simulate_run(grid, make_scheduler("umr"), total_load=10_000.0, seed=1)
>>> report.makespan > 0
True
"""

from .core import PAPER_ALGORITHMS, Scheduler, available_algorithms, make_scheduler
from .obs import OBS_DISABLED, MetricsRegistry, Observability
from .platform import (
    Cluster,
    Grid,
    WorkerSpec,
    das2_cluster,
    grail_lan,
    meteor_cluster,
    mixed_grid,
    preset_by_name,
)
from .simulation import ExecutionReport, SimulationOptions, UncertaintyModel, simulate_run

# imported last: the advisor pulls in repro.apst, whose probing module
# needs repro.simulation fully initialized first
from .apst.advisor import Recommendation, recommend_algorithm  # noqa: E402
from .service import (  # noqa: E402  (also layered on repro.apst)
    MultiJobService,
    ServiceClock,
    ServiceReport,
    WorkerLeaseArbiter,
)

__version__ = "0.1.0"

__all__ = [
    "MetricsRegistry",
    "OBS_DISABLED",
    "Observability",
    "Recommendation",
    "recommend_algorithm",
    "MultiJobService",
    "ServiceClock",
    "ServiceReport",
    "WorkerLeaseArbiter",
    "Scheduler",
    "make_scheduler",
    "available_algorithms",
    "PAPER_ALGORITHMS",
    "Grid",
    "Cluster",
    "WorkerSpec",
    "das2_cluster",
    "meteor_cluster",
    "mixed_grid",
    "grail_lan",
    "preset_by_name",
    "simulate_run",
    "SimulationOptions",
    "UncertaintyModel",
    "ExecutionReport",
    "__version__",
]
