"""The multi-job service facade: daemon jobs through the service clock.

:class:`MultiJobService` is the deployment-shaped entry point: it accepts
the same XML task submissions as :class:`~repro.apst.daemon.APSTDaemon`
(plus service metadata -- tenant, priority, weight, arrival), then runs
everything queued *concurrently* under a worker-lease policy instead of
sequentially.  Finished jobs are handed back to the daemon as ordinary
DONE jobs, so ``status``/``report``/``outputs`` and cross-run history
learning keep working unchanged.
"""

from __future__ import annotations

from pathlib import Path

from ..apst.daemon import APSTDaemon, Job, JobState
from ..apst.xmlspec import TaskSpec
from ..errors import JobUnrecoverableError, ServiceError
from .arbiter import WorkerLeaseArbiter
from .clock import ServiceClock, ServiceOutcome
from .manager import JobManager, ServiceJobSpec
from .report import ServiceReport


class MultiJobService:
    """Concurrent execution of daemon jobs over a shared platform."""

    def __init__(
        self,
        daemon: APSTDaemon,
        *,
        policy: str = "fair-share",
        slots: int | None = None,
    ) -> None:
        self._daemon = daemon
        # built eagerly so a bad policy/slots fails at construction
        self._arbiter = WorkerLeaseArbiter(
            len(daemon.platform), policy, slots=slots,
            observability=daemon.observability,
        )
        # one store and one DLQ for the deployment: tenant accounts and
        # parked jobs live in the daemon's job store, so the daemon's
        # sequential path, the lease clock, and the gateway's verbs all
        # see the same durable state
        self._manager = JobManager(store=daemon.store)
        self._manager.dlq = daemon.dlq
        self._last_outcome: ServiceOutcome | None = None

    @property
    def policy(self) -> str:
        return self._arbiter.policy

    @property
    def daemon(self) -> APSTDaemon:
        return self._daemon

    @property
    def manager(self) -> JobManager:
        return self._manager

    @property
    def last_outcome(self) -> ServiceOutcome | None:
        return self._last_outcome

    # -- lifecycle verbs -----------------------------------------------------
    def submit(
        self,
        task: TaskSpec | str | Path,
        *,
        algorithm: str | None = None,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        arrival: float = 0.0,
    ) -> int:
        """Queue a task with service metadata; returns the daemon job id."""
        if not tenant:
            raise ServiceError("tenant must be non-empty")
        if weight <= 0:
            raise ServiceError(f"weight must be positive, got {weight}")
        if arrival < 0:
            raise ServiceError(f"arrival must be non-negative, got {arrival}")
        # service metadata rides on the durable job record, so a restarted
        # daemon (or a peer sharing the store) admits with the same
        # tenant/priority/weight ordering
        return self._daemon.submit(
            task,
            algorithm=algorithm,
            tenant=tenant,
            priority=priority,
            weight=weight,
            arrival=arrival,
        )

    def cancel(self, job_id: int) -> Job:
        """Cancel a QUEUED job (delegates to the daemon's state machine)."""
        return self._daemon.cancel(job_id)

    def stats(self) -> dict[str, int]:
        return self._daemon.stats()

    def drain(self) -> ServiceOutcome:
        """Run everything queued, then refuse further submissions."""
        self._daemon.stop_accepting()
        return self.run()

    # -- execution -----------------------------------------------------------
    def run(self) -> ServiceOutcome:
        """Run every queued job concurrently under the lease policy.

        Jobs are *claimed* from the store first (owner + lease), so two
        daemons sharing a SQLite store partition the queue without ever
        double-running a job; service metadata comes back off the durable
        records.
        """
        specs = []
        for job in self._daemon.claim_pending():
            record = self._daemon.stored(job.job_id)
            if not self._daemon.mark_running(job):
                continue  # lost the claim to a peer between claim and run
            try:
                prepared = self._daemon.prepare(job.job_id)
            except Exception as exc:
                self._daemon.record_failure(
                    job, f"{type(exc).__name__}: {exc}"
                )
                continue
            specs.append(
                ServiceJobSpec(
                    job_id=job.job_id,
                    scheduler_factory=prepared.scheduler_factory,
                    total_load=prepared.division.total_units,
                    arrival=record.arrival,
                    tenant=record.tenant,
                    priority=record.priority,
                    weight=record.weight,
                    division=prepared.division,
                    probe_units=prepared.probe_units,
                    seed=self._daemon.config.seed,
                )
            )
        if not specs:
            outcome = ServiceOutcome(
                reports={},
                service=ServiceReport(
                    policy=self._arbiter.policy,
                    num_workers=len(self._daemon.platform),
                ),
            )
            self._last_outcome = outcome
            return outcome
        clock = ServiceClock(
            self._daemon.platform,
            arbiter=self._arbiter,
            manager=self._manager,
            simulate=self._daemon.simulate_segment,
            observability=self._daemon.observability,
        )
        try:
            outcome = clock.run(specs)
        except Exception as exc:
            chain = (
                exc.failure_chain if isinstance(exc, JobUnrecoverableError) else None
            )
            for spec in specs:
                job = self._daemon.job(spec.job_id)
                if job.state is JobState.RUNNING:
                    error = f"{type(exc).__name__}: {exc}"
                    self._daemon.record_failure(
                        job,
                        error,
                        failure_chain=chain + [error] if chain is not None else None,
                    )
            raise
        for job_id, report in outcome.reports.items():
            self._daemon.record_result(self._daemon.job(job_id), report)
        self._last_outcome = outcome
        return outcome
