"""Service-level reporting: what multi-tenant operators look at.

A single job's quality metric is its makespan; a shared service is judged
on how jobs fare *against each other*: how long they queue (wait), how
long submission-to-completion takes (turnaround), how much sharing slowed
each job versus a dedicated platform (stretch), and how busy the platform
capacity was overall (aggregate utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import format_seconds
from ..analysis.metrics import aggregate_utilization, stretch
from ..errors import ServiceError
from ..obs import get_logger

#: Diagnostics use the ``repro.obs`` logging bridge (no bare ``print``)
#: so CLI verbosity flags apply uniformly; ``render()`` stays a pure
#: string builder for the caller to display.
_log = get_logger("service.report")


@dataclass(frozen=True)
class JobServiceRecord:
    """Service-side lifecycle of one job (timings in service seconds)."""

    job_id: int
    tenant: str
    algorithm: str
    arrival: float
    start: float
    finish: float
    #: makespan of the same job alone on the full platform (stretch baseline)
    dedicated_makespan: float
    #: lease segments the job ran in (1 = never re-leased)
    segments: int
    #: largest lease the job held
    peak_workers: int
    #: chunks caught in transfer/compute at a preemption and re-dispatched
    retransmits: int = 0

    def __post_init__(self) -> None:
        if not self.arrival <= self.start <= self.finish:
            raise ServiceError(
                f"job {self.job_id}: inconsistent lifecycle "
                f"arrival={self.arrival} start={self.start} finish={self.finish}"
            )

    @property
    def wait(self) -> float:
        """Seconds spent in the admission queue before the first lease."""
        return self.start - self.arrival

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time."""
        return self.finish - self.arrival

    @property
    def stretch(self) -> float:
        """Turnaround over the dedicated-platform makespan (>= ~1)."""
        return stretch(self.turnaround, self.dedicated_makespan)


@dataclass
class ServiceReport:
    """Aggregate view of one multi-job service run under one policy."""

    policy: str
    num_workers: int
    records: list[JobServiceRecord] = field(default_factory=list)
    #: worker-seconds spent computing retained chunks, over all jobs
    busy_worker_seconds: float = 0.0

    @property
    def num_jobs(self) -> int:
        return len(self.records)

    @property
    def span(self) -> float:
        """Service horizon: first arrival to last completion."""
        if not self.records:
            return 0.0
        return max(r.finish for r in self.records) - min(r.arrival for r in self.records)

    @property
    def utilization(self) -> float:
        return aggregate_utilization(self.busy_worker_seconds, self.num_workers, self.span)

    @property
    def mean_wait(self) -> float:
        return self._mean([r.wait for r in self.records])

    @property
    def mean_turnaround(self) -> float:
        return self._mean([r.turnaround for r in self.records])

    @property
    def mean_stretch(self) -> float:
        return self._mean([r.stretch for r in self.records])

    @property
    def max_stretch(self) -> float:
        return max((r.stretch for r in self.records), default=0.0)

    @staticmethod
    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        """Human-readable service report (per-job rows + aggregates)."""
        if not self.records:
            _log.warning("rendering a service report with no completed jobs")
        lines = [
            f"=== Service report: policy={self.policy} "
            f"({self.num_jobs} jobs on {self.num_workers} workers) ===",
            f"{'job':>4s} {'tenant':10s} {'algorithm':12s} {'arrival':>9s} "
            f"{'wait':>9s} {'turnaround':>11s} {'stretch':>8s} "
            f"{'segs':>4s} {'peak':>4s} {'rtx':>4s}",
        ]
        for r in sorted(self.records, key=lambda r: r.job_id):
            lines.append(
                f"{r.job_id:4d} {r.tenant:10s} {r.algorithm:12s} {r.arrival:9.1f} "
                f"{r.wait:9.1f} {r.turnaround:11.1f} {r.stretch:8.2f} "
                f"{r.segments:4d} {r.peak_workers:4d} {r.retransmits:4d}"
            )
        lines += [
            f"span            : {format_seconds(self.span)} ({self.span:.1f}s)",
            f"utilization     : {self.utilization:.1%} of {self.num_workers} workers",
            f"mean wait       : {self.mean_wait:.1f}s",
            f"mean turnaround : {self.mean_turnaround:.1f}s",
            f"mean stretch    : {self.mean_stretch:.2f} (max {self.max_stretch:.2f})",
        ]
        return "\n".join(lines)
