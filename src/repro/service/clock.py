"""The service clock: interleaving concurrent divisible-load jobs.

The single-job simulator (:class:`~repro.simulation.master.SimulatedMaster`)
runs one application to completion.  The service clock layers a second,
coarser discrete-event loop on top: its events are *service epochs* -- job
arrivals and job completions -- and between epochs every RUNNING job
advances on its own leased sub-grid.

At each epoch the :class:`~repro.service.arbiter.WorkerLeaseArbiter`
re-partitions the platform.  A job whose lease is unchanged keeps running
undisturbed.  A job whose lease changed is *preempted at chunk
granularity*: chunks that finished computing are banked, anything in
transfer or mid-computation is re-dispatched on the new lease (the next
segment re-divides the remaining load).  This is how capacity released by
a finishing job accelerates its surviving neighbours mid-flight.

Consistency guarantees, verified per job by ``ExecutionReport.validate``:
load is conserved across segments, chunk causality holds on the job
timeline, and a job's transfers never overlap.  A job that runs start to
finish in a single full-platform lease produces an ``ExecutionReport``
identical to the sequential daemon path -- the service degenerates to
``run_pending`` exactly.

Modelling note: concurrent jobs each ship chunks from their own staging
master, so the serialized-link constraint is per job, not global (a
multi-homed master -- one NIC per tenant slice).  Within a job the
paper's serialization is preserved.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..apst.division import DivisionMethod, UniformUnitsDivision
from ..core.base import Scheduler
from ..errors import ServiceError
from ..obs import (
    JOB_ADMITTED,
    JOB_COMPLETED,
    JOB_PREEMPTED,
    LEASE_GRANTED,
    LEASE_REVOKED,
    OBS_DISABLED,
    Observability,
)
from ..platform.resources import Grid
from ..simulation.compute import UncertaintyModel
from ..simulation.master import SimulatedMaster, SimulationOptions
from ..simulation.trace import ChunkTrace, ExecutionReport
from .arbiter import LeaseRequest, WorkerLeaseArbiter
from .manager import JobManager, ServiceJobSpec
from .report import JobServiceRecord, ServiceReport

_EPS = 1e-9
#: Epoch-count safety bound (an epoch consumes an arrival or a completion).
MAX_EPOCHS = 1_000_000


class SegmentSimulator(Protocol):
    """Anything that can simulate one lease segment (a sub-grid run)."""

    def __call__(
        self,
        grid: Grid,
        scheduler: Scheduler,
        total_units: float,
        *,
        division: DivisionMethod | None = None,
        probe_units: float | None = None,
        seed: int | None = None,
        quantum: float | None = None,
    ) -> ExecutionReport:
        ...


def default_segment_simulator(
    *,
    gamma: float = 0.0,
    autocorrelation: float = 0.0,
    options: SimulationOptions | None = None,
) -> SegmentSimulator:
    """A :class:`SegmentSimulator` for standalone (daemon-less) use."""
    base = options or SimulationOptions()

    def simulate(
        grid: Grid,
        scheduler: Scheduler,
        total_units: float,
        *,
        division: DivisionMethod | None = None,
        probe_units: float | None = None,
        seed: int | None = None,
        quantum: float | None = None,
    ) -> ExecutionReport:
        opts = base
        if probe_units is not None and opts.probe_units is None:
            opts = dataclasses.replace(opts, probe_units=probe_units)
        if quantum is not None and quantum != opts.quantum:
            opts = dataclasses.replace(opts, quantum=quantum)
        master = SimulatedMaster(
            grid,
            scheduler,
            total_units,
            division=division,
            uncertainty=UncertaintyModel(gamma=gamma, autocorrelation=autocorrelation),
            seed=seed,
            options=opts,
        )
        return master.run()

    return simulate


@dataclass
class LeaseSegment:
    """One contiguous interval during which a job held a fixed lease.

    The service-run lease log is built from these; the Chrome-trace
    exporter renders them as per-worker ownership lanes.
    """

    job_id: int
    workers: tuple[int, ...]
    start: float
    end: float = -1.0

    @property
    def closed(self) -> bool:
        return self.end >= self.start


@dataclass
class _RunningJob:
    """Clock-internal dynamic state of one job holding a lease."""

    spec: ServiceJobSpec
    job_start: float
    remaining: float
    lease: tuple[int, ...] = ()
    segment_start: float = 0.0
    segment_total: float = 0.0
    segment_report: ExecutionReport | None = None
    #: index of the CURRENT segment; -1 before the first one starts
    segment_index: int = -1
    #: banked chunks (absolute service time, platform worker indices)
    kept: list[ChunkTrace] = field(default_factory=list)
    probe_time: float = 0.0
    annotations: dict = field(default_factory=dict)
    peak_workers: int = 0
    #: chunks that were in transfer/compute at a preemption and had to be
    #: re-dispatched on a later lease segment
    retransmits: int = 0
    #: the lease-log entry of the current segment (end still open)
    open_segment: LeaseSegment | None = None

    @property
    def projected_finish(self) -> float:
        assert self.segment_report is not None
        return self.segment_start + self.segment_report.makespan

    def remaining_at(self, now: float) -> float:
        """Uncompleted load estimate at service time ``now`` (no commit)."""
        assert self.segment_report is not None
        done = self.segment_report.completed_units_by(now - self.segment_start)
        return max(0.0, self.segment_total - done)


@dataclass
class ServiceOutcome:
    """Everything one service run produces."""

    reports: dict[int, ExecutionReport]
    service: ServiceReport
    #: chronological lease log (who held which workers, when)
    leases: list[LeaseSegment] = field(default_factory=list)


class ServiceClock:
    """Epoch-driven execution of a set of :class:`ServiceJobSpec` s."""

    def __init__(
        self,
        grid: Grid,
        *,
        policy: str = "fair-share",
        slots: int | None = None,
        arbiter: WorkerLeaseArbiter | None = None,
        manager: JobManager | None = None,
        simulate: SegmentSimulator | None = None,
        gamma: float = 0.0,
        autocorrelation: float = 0.0,
        options: SimulationOptions | None = None,
        observability: Observability | None = None,
    ) -> None:
        self._grid = grid
        self._obs = observability or OBS_DISABLED
        self._arbiter = arbiter or WorkerLeaseArbiter(
            len(grid), policy, slots=slots, observability=self._obs
        )
        if self._arbiter.num_workers != len(grid):
            raise ServiceError(
                f"arbiter covers {self._arbiter.num_workers} workers, "
                f"but the grid has {len(grid)}"
            )
        self._manager = manager or JobManager()
        # The dedicated-makespan baseline is a counterfactual (the job alone
        # on the full platform), not part of the service execution: keep it
        # un-instrumented so it neither pollutes the event stream nor counts
        # against the observability overhead budget.
        self._baseline_simulate: SegmentSimulator = simulate or (
            default_segment_simulator(
                gamma=gamma, autocorrelation=autocorrelation, options=options
            )
        )
        if self._obs.enabled and (options is None or options.observability is None):
            # Standalone (daemon-less) use: thread the service-level handle
            # down into the per-segment simulations as well.
            options = dataclasses.replace(
                options or SimulationOptions(), observability=self._obs
            )
        self._simulate: SegmentSimulator = simulate or default_segment_simulator(
            gamma=gamma, autocorrelation=autocorrelation, options=options
        )
        self._quantum = (options or SimulationOptions()).quantum
        self._identity = tuple(range(len(grid)))

    @property
    def policy(self) -> str:
        return self._arbiter.policy

    # -- main loop ----------------------------------------------------------
    def run(self, specs: Iterable[ServiceJobSpec]) -> ServiceOutcome:
        specs = list(specs)
        ids = [s.job_id for s in specs]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate job ids submitted to the service: {ids}")
        for spec in specs:
            self._manager.register(spec)

        pending = deque(sorted(specs, key=lambda s: (s.arrival, s.job_id)))
        queued: list[ServiceJobSpec] = []
        running: dict[int, _RunningJob] = {}
        start_order: list[int] = []
        reports: dict[int, ExecutionReport] = {}
        records: list[JobServiceRecord] = []
        busy_box = [0.0]
        dedicated_cache: dict[int, float] = {}
        self._lease_log: list[LeaseSegment] = []

        now = pending[0].arrival if pending else 0.0
        epochs = 0
        while pending or queued or running:
            epochs += 1
            if epochs > MAX_EPOCHS:
                raise ServiceError("service clock did not converge (epoch bound hit)")

            # 1. complete every job whose projection is due
            due = sorted(
                (jid for jid in start_order if running[jid].projected_finish <= now + _EPS),
                key=lambda jid: (running[jid].projected_finish, jid),
            )
            for jid in due:
                rj = running.pop(jid)
                start_order.remove(jid)
                report, record = self._complete(rj, busy_box, dedicated_cache)
                reports[jid] = report
                records.append(record)

            # 2. admit arrivals that are due
            while pending and pending[0].arrival <= now + _EPS:
                queued.append(pending.popleft())

            # 3. arbitrate and apply lease changes
            queued_order = self._manager.admission_order(queued)
            desired = self._arbiter.assign(
                [self._request(running[jid], now) for jid in start_order],
                [LeaseRequest(job_id=s.job_id, remaining=s.total_load, weight=s.weight)
                 for s in queued_order],
            )
            for jid, lease in desired.items():
                if jid in running:
                    rj = running[jid]
                    if lease != rj.lease:
                        self._truncate(rj, now, busy_box)
                        if rj.remaining <= _EPS * max(1.0, rj.spec.total_load):
                            # possible only with trailing non-compute work
                            # (e.g. output transfers): everything computed,
                            # so the job is done at this epoch
                            running.pop(jid)
                            start_order.remove(jid)
                            report, record = self._finalize(
                                rj, now, busy_box, dedicated_cache
                            )
                            reports[jid] = report
                            records.append(record)
                            continue
                        self._start_segment(rj, lease, now)
                else:
                    spec = next(s for s in queued if s.job_id == jid)
                    queued.remove(spec)
                    rj = _RunningJob(spec=spec, job_start=now, remaining=spec.total_load)
                    if self._obs.enabled:
                        self._obs.emit(
                            JOB_ADMITTED,
                            sim_time=now,
                            job_id=jid,
                            tenant=spec.tenant,
                            wait=now - spec.arrival,
                            workers=len(lease),
                        )
                    self._start_segment(rj, lease, now)
                    running[jid] = rj
                    start_order.append(jid)

            # 4. advance the clock to the next epoch
            candidates = [rj.projected_finish for rj in running.values()]
            if pending:
                candidates.append(pending[0].arrival)
            if not candidates:
                if queued:
                    raise ServiceError(
                        f"{len(queued)} job(s) starved: the arbiter granted "
                        "no leases and no further events are due"
                    )
                continue  # all sets empty: while-condition exits
            advanced = min(candidates)
            if advanced < now - _EPS:
                raise ServiceError(f"service time went backwards: {advanced} < {now}")
            now = max(now, advanced)

        service = ServiceReport(
            policy=self._arbiter.policy,
            num_workers=len(self._grid),
            records=records,
            busy_worker_seconds=busy_box[0],
        )
        return ServiceOutcome(reports=reports, service=service, leases=self._lease_log)

    # -- segment management -------------------------------------------------
    def _request(self, rj: _RunningJob, now: float) -> LeaseRequest:
        return LeaseRequest(
            job_id=rj.spec.job_id,
            remaining=rj.remaining_at(now),
            weight=rj.spec.weight,
        )

    def _start_segment(self, rj: _RunningJob, lease: tuple[int, ...], now: float) -> None:
        spec = rj.spec
        segment_index = rj.segment_index + 1
        sub_grid = self._grid if lease == self._identity else self._grid.subset(list(lease))
        quantum: float | None = None
        if segment_index == 0 and spec.division is not None:
            division: DivisionMethod | None = spec.division
        else:
            quantum = min(self._quantum, rj.remaining)
            division = UniformUnitsDivision(total=rj.remaining, step=quantum)
        if segment_index == 0:
            seed = spec.seed
        elif spec.seed is None:
            seed = None
        else:  # deterministic, distinct per (job, segment)
            seed = spec.seed + 101 * spec.job_id + segment_index
        report = self._simulate(
            sub_grid,
            spec.scheduler_factory(),
            rj.remaining,
            division=division,
            probe_units=spec.probe_units,
            seed=seed,
            quantum=quantum,
        )
        rj.lease = lease
        rj.segment_start = now
        rj.segment_total = rj.remaining
        rj.segment_report = report
        rj.segment_index = segment_index
        rj.peak_workers = max(rj.peak_workers, len(lease))
        segment = LeaseSegment(job_id=spec.job_id, workers=lease, start=now)
        rj.open_segment = segment
        self._lease_log.append(segment)
        if self._obs.enabled:
            self._obs.emit(
                LEASE_GRANTED,
                sim_time=now,
                job_id=spec.job_id,
                segment=segment_index,
                workers=list(lease),
            )

    def _absorb(
        self,
        rj: _RunningJob,
        chunks: list[ChunkTrace],
        occupancy_seconds: float,
        busy_box: list[float],
    ) -> None:
        """Bank a segment's finished chunks and settle its accounting."""
        assert rj.segment_report is not None
        rj.kept.extend(
            c.shifted(rj.segment_start, worker_index=rj.lease[c.worker_index])
            for c in chunks
        )
        busy_box[0] += sum(c.compute_time for c in chunks)
        rj.probe_time += rj.segment_report.probe_time
        rj.annotations.update(rj.segment_report.annotations)
        self._manager.charge(rj.spec.tenant, len(rj.lease) * occupancy_seconds)

    def _close_segment(self, rj: _RunningJob, now: float) -> None:
        """End the open lease-log entry (idempotent) and publish the revoke."""
        segment = rj.open_segment
        if segment is None:
            return
        segment.end = now
        rj.open_segment = None
        if self._obs.enabled:
            self._obs.emit(
                LEASE_REVOKED,
                sim_time=now,
                job_id=rj.spec.job_id,
                workers=list(segment.workers),
                duration=now - segment.start,
            )

    def _truncate(self, rj: _RunningJob, now: float, busy_box: list[float]) -> None:
        """Preempt the current segment at ``now`` (chunk granularity)."""
        assert rj.segment_report is not None
        elapsed = now - rj.segment_start
        kept = rj.segment_report.completed_by(elapsed)
        dispatched = sum(
            1 for c in rj.segment_report.chunks if c.send_start <= elapsed + _EPS
        )
        lost = max(0, dispatched - len(kept))
        rj.retransmits += lost
        self._absorb(rj, kept, elapsed, busy_box)
        rj.remaining = max(0.0, rj.segment_total - sum(c.units for c in kept))
        self._close_segment(rj, now)
        if self._obs.enabled:
            self._obs.emit(
                JOB_PREEMPTED,
                sim_time=now,
                job_id=rj.spec.job_id,
                segment=rj.segment_index,
                kept_chunks=len(kept),
                retransmitted_chunks=lost,
                remaining=rj.remaining,
            )
            if self._obs.metrics is not None:
                self._obs.metrics.counter(
                    "repro_service_preemptions_total",
                    help="Chunk-granularity job preemptions in the service clock.",
                ).inc()

    def _complete(
        self,
        rj: _RunningJob,
        busy_box: list[float],
        dedicated_cache: dict[int, float],
    ) -> tuple[ExecutionReport, JobServiceRecord]:
        assert rj.segment_report is not None
        finish = rj.projected_finish
        self._absorb(
            rj, rj.segment_report.chunks, finish - rj.segment_start, busy_box
        )
        rj.remaining = 0.0
        self._close_segment(rj, finish)
        return self._finalize(rj, finish, busy_box, dedicated_cache)

    def _finalize(
        self,
        rj: _RunningJob,
        finish: float,
        busy_box: list[float],
        dedicated_cache: dict[int, float],
    ) -> tuple[ExecutionReport, JobServiceRecord]:
        assert rj.segment_report is not None
        spec = rj.spec
        self._manager.complete(spec)
        self._arbiter.release(spec.job_id)
        if rj.segment_index == 0 and rj.lease == self._identity:
            # one full-platform segment: this IS the sequential daemon run
            report = rj.segment_report
        else:
            ordered = sorted(rj.kept, key=lambda c: (c.send_start, c.chunk_id))
            report = ExecutionReport(
                algorithm=rj.segment_report.algorithm,
                total_load=spec.total_load,
                makespan=finish - rj.job_start,
                probe_time=rj.probe_time,
                chunks=[
                    c.shifted(-rj.job_start, chunk_id=i)
                    for i, c in enumerate(ordered)
                ],
                link_busy_time=sum(c.transfer_time for c in rj.kept),
                gamma_configured=rj.segment_report.gamma_configured,
                seed=spec.seed,
                annotations={
                    **rj.annotations,
                    "service_segments": rj.segment_index + 1,
                    "service_policy": self._arbiter.policy,
                    "service_retransmitted_chunks": rj.retransmits,
                },
            )
            report.validate()
        if spec.job_id not in dedicated_cache:
            dedicated_cache[spec.job_id] = self._dedicated_makespan(spec)
        record = JobServiceRecord(
            job_id=spec.job_id,
            tenant=spec.tenant,
            algorithm=report.algorithm,
            arrival=spec.arrival,
            start=rj.job_start,
            finish=finish,
            dedicated_makespan=dedicated_cache[spec.job_id],
            segments=rj.segment_index + 1,
            peak_workers=rj.peak_workers,
            retransmits=rj.retransmits,
        )
        if self._obs.enabled:
            self._obs.emit(
                JOB_COMPLETED,
                sim_time=finish,
                job_id=spec.job_id,
                makespan=finish - rj.job_start,
                segments=rj.segment_index + 1,
                retransmits=rj.retransmits,
            )
            if self._obs.metrics is not None:
                self._obs.metrics.histogram(
                    "repro_service_job_wait_seconds",
                    help="Time jobs spent queued before their first lease.",
                ).observe(rj.job_start - spec.arrival)
        return report, record

    def _dedicated_makespan(self, spec: ServiceJobSpec) -> float:
        """The stretch baseline: the job alone on the full platform."""
        report = self._baseline_simulate(
            self._grid,
            spec.scheduler_factory(),
            spec.total_load,
            division=spec.division,
            probe_units=spec.probe_units,
            seed=spec.seed,
        )
        return report.makespan
