"""Worker-lease arbitration: partitioning one Grid among concurrent jobs.

A divisible-load job does not need any *particular* worker -- it needs
capacity.  The arbiter exploits that: it hands each RUNNING job a
disjoint *lease* (a subset of platform worker indices) and re-arbitrates
at every service epoch (job arrival or completion).  Three policies:

* ``fifo``          -- exclusive: the oldest admitted job leases the whole
                       grid; everyone else waits.  This is exactly the
                       sequential behaviour of ``APSTDaemon.run_pending``.
* ``static``        -- the grid is pre-cut into ``slots`` fixed sub-grids;
                       each job occupies one slot until it finishes.  Jobs
                       start sooner than under FIFO but finished slots'
                       capacity never helps a still-running neighbour.
* ``fair-share``    -- weighted proportional sharing: each active job
                       leases workers in proportion to
                       ``weight x remaining load`` (largest-remainder
                       rounding, every job >= 1 worker).  When a job
                       finishes, its workers are re-leased to the
                       survivors mid-flight.

Leases are *sticky*: re-arbitration keeps a job on its current workers
wherever counts allow, so an epoch that does not change a job's
allocation does not interrupt it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ServiceError
from ..obs import OBS_DISABLED, Observability

POLICIES = ("fifo", "static", "fair-share")


@dataclass(frozen=True)
class LeaseRequest:
    """One job's claim on the platform, as seen by the arbiter.

    ``remaining`` is the undispatched load at arbitration time -- the
    quantity fair-share weighs leases by.  ``max_workers`` optionally caps
    the lease; requesting a zero-worker lease is invalid by definition (a
    running divisible-load job always needs at least one worker).
    """

    job_id: int
    remaining: float
    weight: float = 1.0
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.remaining <= 0:
            raise ServiceError(
                f"job {self.job_id}: lease request with no remaining load "
                f"({self.remaining}); finished jobs must release, not request"
            )
        if self.weight <= 0:
            raise ServiceError(
                f"job {self.job_id}: lease weight must be positive, got {self.weight}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ServiceError(
                f"job {self.job_id}: zero-worker lease request "
                f"(max_workers={self.max_workers}); a job needs >= 1 worker"
            )


class WorkerLeaseArbiter:
    """Stateful lease assignment over ``num_workers`` platform workers."""

    def __init__(
        self,
        num_workers: int,
        policy: str = "fair-share",
        *,
        slots: int | None = None,
        observability: Observability | None = None,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(
                f"cannot arbitrate over {num_workers} workers; need at least one"
            )
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown lease policy {policy!r}; options: {', '.join(POLICIES)}"
            )
        self._n = num_workers
        self._policy = policy
        if slots is None:
            slots = min(4, num_workers) if policy == "static" else 1
        if not 1 <= slots <= num_workers:
            raise ServiceError(
                f"slots must be in [1, {num_workers}], got {slots}"
            )
        self._slots = slots
        self._blocks = self._make_blocks(num_workers, slots)
        self._leases: dict[int, tuple[int, ...]] = {}
        self._block_of: dict[int, int] = {}
        obs = observability or OBS_DISABLED
        if obs.metrics is not None:
            labels = {"policy": policy}
            self._m_assignments = obs.metrics.counter(
                "repro_arbiter_assignments_total",
                "Arbitration rounds (one per service epoch).",
                labels=labels,
            )
            self._m_changes = obs.metrics.counter(
                "repro_arbiter_lease_changes_total",
                "Jobs whose worker lease changed across an arbitration round.",
                labels=labels,
            )
            self._g_active = obs.metrics.gauge(
                "repro_arbiter_active_jobs",
                "Jobs granted a lease by the latest arbitration round.",
                labels=labels,
            )
        else:
            self._m_assignments = None
            self._m_changes = None
            self._g_active = None

    # -- public API ---------------------------------------------------------
    @property
    def policy(self) -> str:
        return self._policy

    @property
    def num_workers(self) -> int:
        return self._n

    def lease_of(self, job_id: int) -> tuple[int, ...]:
        return self._leases.get(job_id, ())

    def release(self, job_id: int) -> None:
        """Forget a finished/cancelled job's lease and (static) its slot."""
        self._leases.pop(job_id, None)
        self._block_of.pop(job_id, None)

    def assign(
        self,
        running: Sequence[LeaseRequest],
        queued: Sequence[LeaseRequest],
    ) -> dict[int, tuple[int, ...]]:
        """Leases for this epoch: every returned job should be RUNNING.

        ``running`` must be in lease-grant order (oldest first); ``queued``
        in admission order.  Jobs absent from the result stay queued.
        Every granted lease has >= 1 worker, leases are disjoint, and a
        running job whose allocation is unchanged keeps its exact workers.
        """
        ids = [r.job_id for r in (*running, *queued)]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate job ids in arbitration: {ids}")
        for r in running:
            if r.job_id not in self._leases:
                raise ServiceError(
                    f"job {r.job_id} claims to be running but holds no lease"
                )
        if self._policy == "fifo":
            result = self._assign_fifo(running, queued)
        elif self._policy == "static":
            result = self._assign_static(running, queued)
        else:
            result = self._assign_fair(running, queued)
        if self._m_assignments is not None:
            self._m_assignments.inc()
            changed = sum(
                1
                for jid, lease in result.items()
                if self._leases.get(jid) is not None and self._leases[jid] != lease
            )
            if changed:
                self._m_changes.inc(changed)
            self._g_active.set(float(len(result)))
        self._leases = dict(result)
        return result

    # -- policies ------------------------------------------------------------
    def _assign_fifo(
        self, running: Sequence[LeaseRequest], queued: Sequence[LeaseRequest]
    ) -> dict[int, tuple[int, ...]]:
        if len(running) > 1:
            raise ServiceError(
                f"fifo policy cannot have {len(running)} concurrent jobs"
            )
        everything = tuple(range(self._n))
        if running:
            return {running[0].job_id: everything}
        if queued:
            return {queued[0].job_id: everything}
        return {}

    def _assign_static(
        self, running: Sequence[LeaseRequest], queued: Sequence[LeaseRequest]
    ) -> dict[int, tuple[int, ...]]:
        result: dict[int, tuple[int, ...]] = {}
        for r in running:  # running jobs keep their slot, always
            block = self._block_of.get(r.job_id)
            if block is None:
                raise ServiceError(f"running job {r.job_id} lost its slot")
            result[r.job_id] = self._blocks[block]
        occupied = {self._block_of[r.job_id] for r in running}
        free = [i for i in range(self._slots) if i not in occupied]
        for r, block in zip(queued, free):
            self._block_of[r.job_id] = block
            result[r.job_id] = self._blocks[block]
        return result

    def _assign_fair(
        self, running: Sequence[LeaseRequest], queued: Sequence[LeaseRequest]
    ) -> dict[int, tuple[int, ...]]:
        active = [*running, *queued][: self._n]  # >= 1 worker each
        if not active:
            return {}
        shares = [r.weight * r.remaining for r in active]
        counts = self._proportional_counts(
            shares, self._n, caps=[r.max_workers for r in active]
        )
        # Sticky placement: keep current workers up to the new count ...
        result: dict[int, list[int]] = {}
        free = set(range(self._n))
        for r, count in zip(active, counts):
            keep = [w for w in self._leases.get(r.job_id, ()) if w in free][:count]
            result[r.job_id] = keep
            free -= set(keep)
        # ... then fill deficits from the free pool, lowest index first.
        pool = sorted(free)
        for r, count in zip(active, counts):
            need = count - len(result[r.job_id])
            if need > 0:
                result[r.job_id].extend(pool[:need])
                del pool[:need]
        return {
            job_id: tuple(sorted(workers))
            for job_id, workers in result.items()
            if workers
        }

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _make_blocks(n: int, slots: int) -> list[tuple[int, ...]]:
        """Near-even contiguous partition of ``range(n)`` into ``slots``."""
        blocks = []
        start = 0
        for i in range(slots):
            size = n // slots + (1 if i < n % slots else 0)
            blocks.append(tuple(range(start, start + size)))
            start += size
        return blocks

    @staticmethod
    def _proportional_counts(
        shares: Sequence[float], n: int, caps: Sequence[int | None]
    ) -> list[int]:
        """Integer worker counts proportional to ``shares``, summing <= n.

        Every job gets at least one worker; the rest go by largest
        remainder (ties resolve to the earlier job, deterministically).
        Caps are honoured; capacity nobody may take is left idle.
        """
        k = len(shares)
        if k > n:
            raise ServiceError(f"cannot grant {k} leases over {n} workers")
        total = sum(shares)
        raw = [(n - k) * s / total for s in shares]
        counts = [1 + math.floor(r) for r in raw]
        remainder_order = sorted(
            range(k), key=lambda i: (-(raw[i] - math.floor(raw[i])), i)
        )
        leftover = n - sum(counts)
        for i in remainder_order[:leftover]:
            counts[i] += 1
        # honour per-job caps, recycling the excess to uncapped jobs
        excess = 0
        for i, cap in enumerate(caps):
            if cap is not None and counts[i] > cap:
                excess += counts[i] - cap
                counts[i] = cap
        while excess > 0:
            progressed = False
            for i in remainder_order:
                cap = caps[i]
                if cap is None or counts[i] < cap:
                    counts[i] += 1
                    excess -= 1
                    progressed = True
                    if excess == 0:
                        break
            if not progressed:
                break  # everyone capped: leave the rest idle
        return counts
