"""Admission control for the multi-job scheduling service.

The single-job APST-DV daemon runs whatever is queued, in submission
order.  A shared Grid installation serves many users at once, so the
service layer adds an *admission queue* with three ordering inputs:

* **priority** -- higher-priority jobs are admitted first;
* **per-tenant fair share** -- among equal priorities, the tenant that
  has consumed the least service (in worker-seconds of lease occupancy)
  goes first, so one user submitting a burst of jobs cannot starve the
  others;
* **arrival order** -- the final, deterministic tie-break.

The :class:`JobManager` owns this queue plus the per-tenant accounting;
the :class:`~repro.service.clock.ServiceClock` charges it whenever a
lease segment ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..apst.division import DivisionMethod
from ..core.base import Scheduler
from ..errors import ServiceError
from ..resilience import DeadLetterEntry, DeadLetterQueue
from ..store import JobStore, MemoryStore, TenantUsage


@dataclass
class ServiceJobSpec:
    """Everything the service clock needs to run one job.

    ``division`` (optional) is used for the first lease segment only; a
    segment started after a preemption re-divides the remaining load on a
    uniform grid of ``quantum`` units, because the undispatched byte
    ranges are no longer a contiguous prefix of the original input.
    """

    job_id: int
    scheduler_factory: Callable[[], Scheduler]
    total_load: float
    arrival: float = 0.0
    tenant: str = "default"
    priority: int = 0
    weight: float = 1.0
    division: DivisionMethod | None = None
    probe_units: float | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.total_load <= 0:
            raise ServiceError(
                f"job {self.job_id}: total_load must be positive, got {self.total_load}"
            )
        if self.weight <= 0:
            raise ServiceError(
                f"job {self.job_id}: weight must be positive, got {self.weight}"
            )
        if self.arrival < 0:
            raise ServiceError(
                f"job {self.job_id}: arrival must be non-negative, got {self.arrival}"
            )
        if not self.tenant:
            raise ServiceError(f"job {self.job_id}: tenant must be non-empty")


#: Per-tenant service consumption, used for fair-share admission.  The
#: record itself lives in the job store (so two daemons sharing a SQLite
#: store charge the same accounts); this is the store's snapshot type.
TenantAccount = TenantUsage


@dataclass
class JobManager:
    """Admission queue ordering plus per-tenant fair-share accounting.

    The manager is a pure scheduling *policy*: it owns no job or account
    state of its own.  Tenant accounts live in the job store (pass the
    daemon's store to share accounting across daemons and survive
    restarts; the default private :class:`~repro.store.MemoryStore`
    keeps the old in-process behavior).

    The manager also fronts the service's job-level dead-letter queue:
    jobs whose chunks cannot complete on any live worker are parked here
    (with their failure chain) instead of silently staying FAILED, so an
    operator can inspect and replay them.  By default the manager owns a
    private queue; the service layer points ``dlq`` at the daemon's so
    both views show the same entries.
    """

    store: JobStore = field(default_factory=MemoryStore)
    dlq: DeadLetterQueue = field(default_factory=DeadLetterQueue)

    def park(
        self,
        *,
        job_id: int,
        algorithm: str | None,
        task: object,
        failure_chain: list[str] | None = None,
        spec_xml: str | None = None,
    ) -> DeadLetterEntry:
        """Park one unrecoverable job in the dead-letter queue."""
        return self.dlq.park(
            job_id=job_id,
            algorithm=algorithm,
            task=task,
            failure_chain=failure_chain,
            spec_xml=spec_xml,
        )

    def parked(self) -> list[DeadLetterEntry]:
        return self.dlq.entries()

    def account(self, tenant: str) -> TenantAccount:
        """Snapshot of ``tenant``'s accumulated usage (zeroes if unknown)."""
        return self.store.tenant_usage(tenant)

    def accounts(self) -> list[TenantAccount]:
        return self.store.tenant_usages()

    def register(self, spec: ServiceJobSpec) -> None:
        self.store.tenant_charge(spec.tenant, submitted=1)

    def charge(self, tenant: str, worker_seconds: float) -> None:
        """Charge lease occupancy (workers held x seconds held) to a tenant."""
        if worker_seconds < 0:
            raise ServiceError(
                f"cannot charge negative worker-seconds ({worker_seconds})"
            )
        self.store.tenant_charge(tenant, worker_seconds=worker_seconds)

    def complete(self, spec: ServiceJobSpec) -> None:
        self.store.tenant_charge(spec.tenant, completed=1)

    def usage(self, tenant: str) -> float:
        return self.store.tenant_usage(tenant).worker_seconds

    def admission_order(self, queued: Sequence[ServiceJobSpec]) -> list[ServiceJobSpec]:
        """Deterministic admission order of the currently queued jobs.

        Priority (descending), then least-served tenant, then arrival,
        then job id.  Tenant usage is snapshotted at sort time, so as a
        heavy tenant accumulates worker-seconds its later jobs drop
        behind lighter tenants of equal priority.
        """
        return sorted(
            queued,
            key=lambda s: (-s.priority, self.usage(s.tenant), s.arrival, s.job_id),
        )
