"""Multi-job scheduling service: concurrent divisible-load jobs.

The paper's APST-DV daemon runs one application at a time.  This package
turns it into a shared *service*: an admission queue with priorities and
per-tenant fair share (:mod:`~repro.service.manager`), a worker-lease
arbiter partitioning the Grid among concurrent jobs
(:mod:`~repro.service.arbiter`), an epoch-driven clock interleaving the
per-job simulations (:mod:`~repro.service.clock`), service-level metrics
(:mod:`~repro.service.report`), and a daemon-backed facade
(:mod:`~repro.service.service`).
"""

from .arbiter import POLICIES, LeaseRequest, WorkerLeaseArbiter
from .clock import LeaseSegment, ServiceClock, ServiceOutcome, default_segment_simulator
from .manager import JobManager, ServiceJobSpec, TenantAccount
from .report import JobServiceRecord, ServiceReport
from .service import MultiJobService

__all__ = [
    "POLICIES",
    "JobManager",
    "JobServiceRecord",
    "LeaseRequest",
    "LeaseSegment",
    "MultiJobService",
    "ServiceClock",
    "ServiceJobSpec",
    "ServiceOutcome",
    "ServiceReport",
    "TenantAccount",
    "WorkerLeaseArbiter",
    "default_segment_simulator",
]
