"""Analytic makespan models (cross-validation of the simulator)."""

from .models import (
    dispatch_schedule_makespan,
    lower_bounds,
    one_round_makespan,
    report_replay_makespan,
    static_chunking_makespan,
)

__all__ = [
    "lower_bounds",
    "static_chunking_makespan",
    "dispatch_schedule_makespan",
    "one_round_makespan",
    "report_replay_makespan",
]
