"""Analytic makespan models -- an independent check on the simulator.

The DLS literature reasons about these schedules in closed form; this
module implements those derivations *without* the event engine (plain
recurrences over workers and rounds).  Agreement between these models and
the discrete-event backend at gamma = 0 is the repository's strongest
correctness evidence: two independent implementations of the same cost
model must coincide to float precision.

All functions assume the paper's model: serialized master link, affine
transfer cost ``nLat_i + a/B_i``, affine compute cost ``cLat_i + a/S_i``,
deterministic times.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..platform.resources import Grid


def lower_bounds(grid: Grid, total_load: float) -> dict[str, float]:
    """Physical lower bounds no schedule can beat.

    * ``compute``: the aggregate compute rate bound ``W / sum(S_i)``;
    * ``link``: all load crosses the serialized link, cheapest via the
      fastest link: ``W / max(B_i)``;
    * ``combined``: the max of the two plus the cheapest single start-up
      (some chunk must be sent before anything computes).
    """
    if total_load <= 0:
        raise SchedulingError("load must be positive")
    compute = total_load / grid.total_speed
    link = total_load / max(w.bandwidth for w in grid.workers)
    first_latency = min(w.comm_latency for w in grid.workers)
    return {
        "compute": compute,
        "link": link,
        "combined": max(compute, link) + first_latency,
    }


def static_chunking_makespan(grid: Grid, total_load: float, n: int = 1) -> float:
    """Exact makespan of SIMPLE-n under deterministic costs.

    Chunks of ``W/(N*n)`` are dispatched round-major in worker order on
    the serialized link; each worker computes its queued chunks
    back-to-back.  The recurrence tracks, per worker, when its last
    queued chunk finishes computing.
    """
    if n < 1:
        raise SchedulingError("n must be >= 1")
    workers = grid.workers
    chunk = total_load / (len(workers) * n)
    link_free = 0.0
    worker_free = [0.0] * len(workers)
    finish = 0.0
    for _round in range(n):
        for i, w in enumerate(workers):
            send_start = link_free
            arrival = send_start + w.comm_latency + chunk / w.bandwidth
            link_free = arrival
            start = max(arrival, worker_free[i])
            end = start + w.comp_latency + chunk / w.speed
            worker_free[i] = end
            finish = max(finish, end)
    return finish


def dispatch_schedule_makespan(
    grid: Grid, dispatches: list[tuple[int, float]]
) -> float:
    """Exact makespan of ANY fixed dispatch sequence under the model.

    ``dispatches`` is the ordered list of (worker_index, units) the master
    pushes greedily onto the serialized link.  This reproduces exactly
    what the discrete-event backend does at gamma = 0, via a plain loop --
    the cross-validation oracle for arbitrary schedules (UMR plans,
    one-round solutions, recorded runs).
    """
    workers = grid.workers
    link_free = 0.0
    worker_free = [0.0] * len(workers)
    finish = 0.0
    for worker_index, units in dispatches:
        if not 0 <= worker_index < len(workers):
            raise SchedulingError(f"invalid worker index {worker_index}")
        if units < 0:
            raise SchedulingError("negative chunk")
        w = workers[worker_index]
        arrival = link_free + w.comm_latency + units / w.bandwidth
        link_free = arrival
        start = max(arrival, worker_free[worker_index])
        end = start + w.comp_latency + units / w.speed
        worker_free[worker_index] = end
        finish = max(finish, end)
    return finish


def one_round_makespan(grid: Grid, chunks: list[float]) -> float:
    """Exact makespan of a one-round schedule (chunks in worker order)."""
    if len(chunks) != len(grid.workers):
        raise SchedulingError("one chunk per worker required")
    dispatches = [(i, a) for i, a in enumerate(chunks) if a > 0]
    return dispatch_schedule_makespan(grid, dispatches)


def report_replay_makespan(grid: Grid, report) -> float:
    """Replay a recorded run's dispatch order through the analytic model.

    For a gamma = 0 run on the simulation backend, this must equal the
    reported makespan (minus the probe, which the report excludes) to
    float precision.

    The replay recomputes every transfer and compute cost from the grid
    parameters, but honours each chunk's *recorded* send time as a lower
    bound on when its transfer may begin: schedulers that gate dispatch
    (e.g. Weighted Factoring's bounded prefetch depth) deliberately let
    the link idle, and a purely greedy replay would under-estimate their
    makespan rather than validate it.
    """
    ordered = sorted(report.chunks, key=lambda c: c.send_start)
    workers = grid.workers
    link_free = 0.0
    worker_free = [0.0] * len(workers)
    finish = 0.0
    for c in ordered:
        if not 0 <= c.worker_index < len(workers):
            raise SchedulingError(f"invalid worker index {c.worker_index}")
        if c.units < 0:
            raise SchedulingError("negative chunk")
        w = workers[c.worker_index]
        send_start = max(link_free, c.send_start)
        arrival = send_start + w.comm_latency + c.units / w.bandwidth
        link_free = arrival
        start = max(arrival, worker_free[c.worker_index])
        end = start + w.comp_latency + c.units / w.speed
        worker_free[c.worker_index] = end
        finish = max(finish, end)
    return finish
