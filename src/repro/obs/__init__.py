"""``repro.obs``: structured tracing, metrics, and profiling.

The observability layer of the reproduction, used by every other layer
(engine, scheduler driver, daemon, multi-job service, CLI):

* :mod:`repro.obs.events` -- typed event bus with pluggable sinks
  (ring buffer, JSONL, stdlib-logging bridge);
* :mod:`repro.obs.metrics` -- counters / gauges / fixed-bucket
  histograms with Prometheus-text and JSON exposition;
* :mod:`repro.obs.tracing` -- wall-clock span tracing of the host
  process;
* :mod:`repro.obs.chrome_trace` -- Chrome trace-event (Perfetto)
  export rendering simulated time and wall time as separate track
  groups;
* :mod:`repro.obs.profile` -- engine throughput / heap / phase
  profiling.

Everything hangs off one :class:`Observability` handle.  The default is
:data:`OBS_DISABLED`: every component is ``None``, ``enabled`` is
False, and instrumented hot paths pay a single attribute check (the
overhead budget is enforced by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import logging
from contextlib import contextmanager

from .events import (
    CHUNK_COMPLETED,
    CHUNK_DISPATCHED,
    CHUNK_ESCALATED,
    CHUNK_RETRANSMITTED,
    CHUNK_SPECULATED,
    CHUNK_SPECULATION_LOST,
    CHUNK_SPECULATION_WON,
    EVENT_TYPES,
    JOB_ADMITTED,
    JOB_CANCELLED,
    JOB_COMPLETED,
    JOB_FAILED,
    JOB_PARKED,
    JOB_PREEMPTED,
    JOB_REPLAYED,
    JOB_SUBMITTED,
    LEASE_GRANTED,
    LEASE_REVOKED,
    NET_BATCH_EXECUTED,
    NET_REQUEST,
    NET_REQUEST_REJECTED,
    NET_WORKER_LOST,
    NET_WORKER_REGISTERED,
    OBS_LOGGER_NAME,
    PROBE_FINISHED,
    PROBE_WORKER_MEASURED,
    ROUND_STARTED,
    WORKER_QUARANTINED,
    Event,
    EventBus,
    JsonlSink,
    LoggingSink,
    RingBufferSink,
)
from .chrome_trace import (
    build_chrome_trace,
    distributed_trace_events,
    lease_trace_events,
    report_trace_events,
    tracer_trace_events,
    write_chrome_trace,
)
from .distributed import (
    ClockOffsetEstimator,
    TelemetryAggregator,
    TelemetryBuffer,
    TraceContext,
    parse_traceparent,
    span_record,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .profile import EngineProfile, EngineProfiler
from .tracing import OpenSpan, Span, Tracer, new_trace_id


class _NullContext:
    """Reusable no-op context manager (cheaper than nullcontext())."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Observability:
    """Bundle of the observability components one run threads through.

    Components are optional and independent; an all-``None`` instance is
    the no-op default, and ``enabled`` is the one flag hot paths check.
    """

    __slots__ = ("bus", "metrics", "tracer", "profiler", "aggregator", "_enabled")

    def __init__(
        self,
        *,
        bus: EventBus | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        profiler: EngineProfiler | None = None,
        aggregator: TelemetryAggregator | None = None,
    ) -> None:
        self.bus = bus
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        self.aggregator = aggregator
        self._enabled = any(
            component is not None
            for component in (bus, metrics, tracer, profiler, aggregator)
        )

    @property
    def enabled(self) -> bool:
        return self._enabled

    @classmethod
    def armed(
        cls,
        *,
        ring_capacity: int = 16384,
        with_logging: bool = False,
        distributed: bool = False,
    ) -> "Observability":
        """A fully instrumented handle: ring buffer, metrics, tracer, profiler.

        ``distributed=True`` additionally attaches a
        :class:`TelemetryAggregator` so remote telemetry batches have
        somewhere to merge (the master/gateway side of a remote run).
        """
        bus = EventBus([RingBufferSink(ring_capacity)])
        if with_logging:
            bus.attach(LoggingSink())
        return cls(
            bus=bus,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
            profiler=EngineProfiler(),
            aggregator=TelemetryAggregator() if distributed else None,
        )

    # -- convenience ---------------------------------------------------------
    def emit(self, name: str, *, sim_time: float | None = None, **fields) -> None:
        """Publish an event if a bus is attached (no-op otherwise)."""
        if self.bus is not None:
            self.bus.emit(name, sim_time=sim_time, **fields)  # repro: allow[taxonomy] -- generic forwarder; EventBus.emit enforces the taxonomy at runtime

    def span(self, name: str, **args):
        """Wall-clock span via the tracer and profiler (no-op when off)."""
        if self.tracer is None and self.profiler is None:
            return _NULL_CONTEXT
        return self._span(name, args)

    @contextmanager
    def _span(self, name: str, args: dict):
        if self.tracer is not None and self.profiler is not None:
            with self.tracer.span(name, **args), self.profiler.phase(name):
                yield
        elif self.tracer is not None:
            with self.tracer.span(name, **args):
                yield
        else:
            assert self.profiler is not None
            with self.profiler.phase(name):
                yield

    def ring_events(self, name: str | None = None) -> list[Event]:
        """Events buffered in the first ring-buffer sink (if any)."""
        if self.bus is not None:
            for sink in self.bus.sinks:
                if isinstance(sink, RingBufferSink):
                    return sink.events(name)
        return []

    def close(self) -> None:
        if self.bus is not None:
            self.bus.close()


#: The shared no-op default every instrumented layer falls back to.
OBS_DISABLED = Observability()


# -- logging bridge ---------------------------------------------------------

def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.obs`` tree, subject to one verbosity knob."""
    return logging.getLogger(f"{OBS_LOGGER_NAME}.{name}")


def configure_logging(verbosity: int = 0, *, stream=None) -> logging.Logger:
    """Wire the ``repro.obs`` logger tree for CLI use.

    ``verbosity``: -1 (``-q``) shows only errors, 0 shows warnings,
    1 (``-v``) shows info, 2+ (``-vv``) shows the full debug/event
    stream.  Returns the root ``repro.obs`` logger.
    """
    level = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}.get(
        max(-1, min(verbosity, 2)), logging.DEBUG
    )
    logger = logging.getLogger(OBS_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger


__all__ = [
    "CHUNK_COMPLETED",
    "CHUNK_DISPATCHED",
    "CHUNK_ESCALATED",
    "CHUNK_RETRANSMITTED",
    "CHUNK_SPECULATED",
    "CHUNK_SPECULATION_LOST",
    "CHUNK_SPECULATION_WON",
    "ClockOffsetEstimator",
    "Counter",
    "EVENT_TYPES",
    "EngineProfile",
    "EngineProfiler",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JOB_ADMITTED",
    "JOB_CANCELLED",
    "JOB_COMPLETED",
    "JOB_FAILED",
    "JOB_PARKED",
    "JOB_PREEMPTED",
    "JOB_REPLAYED",
    "JOB_SUBMITTED",
    "JsonlSink",
    "LEASE_GRANTED",
    "LEASE_REVOKED",
    "LoggingSink",
    "MetricsRegistry",
    "NET_BATCH_EXECUTED",
    "NET_REQUEST",
    "NET_REQUEST_REJECTED",
    "NET_WORKER_LOST",
    "NET_WORKER_REGISTERED",
    "OBS_DISABLED",
    "OBS_LOGGER_NAME",
    "Observability",
    "OpenSpan",
    "PROBE_FINISHED",
    "PROBE_WORKER_MEASURED",
    "ROUND_STARTED",
    "RingBufferSink",
    "Span",
    "TelemetryAggregator",
    "TelemetryBuffer",
    "TraceContext",
    "Tracer",
    "WORKER_QUARANTINED",
    "build_chrome_trace",
    "configure_logging",
    "distributed_trace_events",
    "get_logger",
    "lease_trace_events",
    "new_trace_id",
    "parse_prometheus",
    "parse_traceparent",
    "report_trace_events",
    "span_record",
    "tracer_trace_events",
    "write_chrome_trace",
]
