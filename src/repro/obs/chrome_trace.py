"""Chrome trace-event (Perfetto / ``chrome://tracing``) export.

Renders a run as the JSON trace-event format both viewers accept:

* **Simulated time** -- one process (``pid``) per job, one thread
  (``tid``) per worker lane plus a master-link lane, a complete-event
  (``ph == "X"``) per chunk transfer and per chunk computation.  This is
  the paper's detailed execution report, but scrubbable.
* **Lease lanes** -- for service runs, one process whose per-worker rows
  show which job held each worker over service time (the arbiter's
  decisions made visible).
* **Wall-clock time** -- a separate process holding the host-side spans
  a :class:`~repro.obs.tracing.Tracer` collected (engine loops,
  scheduler planning), so simulator *performance* sits next to simulator
  *output* in one view.

Timestamps (``ts``/``dur``) are microseconds, per the format. Simulated
and wall timelines use disjoint ``pid`` ranges so Perfetto groups them
separately; they are not aligned (one is simulated seconds, the other
host seconds) and are not meant to be.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

#: Process-id layout: wall-clock spans, lease lanes, then one pid per job.
WALL_PID = 1
LEASE_PID = 2
SIM_PID_BASE = 10
#: Distributed (cross-process, clock-corrected) groups start here.
DIST_PID_BASE = 100

#: Thread-id layout within a simulated-time process.
LINK_TID = 0
WORKER_TID_BASE = 1

_US = 1e6  # seconds -> microseconds


def _meta(name: str, pid: int, args: dict, tid: int = 0) -> dict:
    return {"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args}


def _complete(name, cat, pid, tid, start_s, duration_s, args=None) -> dict:
    event = {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": pid,
        "tid": tid,
        "ts": start_s * _US,
        "dur": max(0.0, duration_s) * _US,
    }
    if args:
        event["args"] = args
    return event


def report_trace_events(
    report,
    *,
    pid: int = SIM_PID_BASE,
    label: str | None = None,
    worker_names: Mapping[int, str] | None = None,
) -> list[dict]:
    """Trace events for one :class:`ExecutionReport` (simulated time).

    Each worker gets a lane of chunk-computation spans; the serialized
    master link gets its own lane of transfer spans.  Incomplete chunks
    (preempted mid-flight) are skipped -- they have no extent to draw.
    """
    title = label or f"simulated: {report.algorithm}"
    events = [
        _meta("process_name", pid, {"name": title}),
        _meta("process_sort_index", pid, {"sort_index": pid}),
        _meta("thread_name", pid, {"name": "master link"}, tid=LINK_TID),
    ]
    names: dict[int, str] = dict(worker_names or {})
    for chunk in report.chunks:
        names.setdefault(chunk.worker_index, chunk.worker_name)
    for index in sorted(names):
        events.append(
            _meta(
                "thread_name",
                pid,
                {"name": f"{names[index]} (w{index})"},
                tid=WORKER_TID_BASE + index,
            )
        )
    for chunk in report.chunks:
        if not chunk.completed:
            continue
        args = {
            "chunk_id": chunk.chunk_id,
            "units": chunk.units,
            "round": chunk.round_index,
            "phase": chunk.phase,
        }
        events.append(
            _complete(
                f"xfer #{chunk.chunk_id}",
                "transfer",
                pid,
                LINK_TID,
                chunk.send_start,
                chunk.transfer_time,
                args,
            )
        )
        events.append(
            _complete(
                f"chunk #{chunk.chunk_id} ({chunk.phase})",
                "compute",
                pid,
                WORKER_TID_BASE + chunk.worker_index,
                chunk.compute_start,
                chunk.compute_time,
                args,
            )
        )
    return events


def lease_trace_events(
    leases: Iterable,
    *,
    pid: int = LEASE_PID,
    worker_names: Mapping[int, str] | None = None,
) -> list[dict]:
    """Per-worker lanes showing lease ownership over service time.

    ``leases`` is an iterable of objects with ``job_id``, ``workers``
    (platform indices), ``start``, and ``end`` attributes -- the
    :class:`~repro.service.clock.LeaseSegment` log of a service run.
    """
    leases = list(leases)
    events = [
        _meta("process_name", pid, {"name": "worker leases"}),
        _meta("process_sort_index", pid, {"sort_index": pid}),
    ]
    names = dict(worker_names or {})
    seen: set[int] = set()
    for segment in leases:
        seen.update(segment.workers)
    for index in sorted(seen):
        events.append(
            _meta(
                "thread_name",
                pid,
                {"name": f"{names.get(index, f'worker {index}')} lease"},
                tid=WORKER_TID_BASE + index,
            )
        )
    for segment in leases:
        for index in segment.workers:
            events.append(
                _complete(
                    f"job {segment.job_id}",
                    "lease",
                    pid,
                    WORKER_TID_BASE + index,
                    segment.start,
                    segment.end - segment.start,
                    {"job_id": segment.job_id, "workers": len(segment.workers)},
                )
            )
    return events


def tracer_trace_events(tracer, *, pid: int = WALL_PID) -> list[dict]:
    """The wall-clock track group, from a :class:`Tracer`'s spans."""
    events = [
        _meta("process_name", pid, {"name": "host wall clock"}),
        _meta("process_sort_index", pid, {"sort_index": pid}),
        _meta("thread_name", pid, {"name": "host"}, tid=0),
    ]
    for span in tracer.spans():
        events.append(
            _complete(
                span.name,
                span.category,
                pid,
                0,
                span.start,
                span.duration,
                dict(span.args) if span.args else None,
            )
        )
    return events


def _process_sort_key(process: str) -> tuple[int, str]:
    """Gateway first, then the daemon, then workers alphabetically."""
    order = {"gateway": 0, "daemon": 1}
    return (order.get(process, 2), process)


def distributed_trace_events(
    span_records: Iterable[Mapping],
    *,
    pid_base: int = DIST_PID_BASE,
) -> list[dict]:
    """Track groups for clock-corrected cross-process span records.

    ``span_records`` is the normalized shape the
    :class:`~repro.obs.distributed.TelemetryAggregator` serves: one
    flat dict per span with ``process``, ``start`` (unix seconds,
    already offset-corrected onto the master clock), ``duration``, the
    trace identity fields, and ``args``.  Each process becomes its own
    track group; within a process, a span's ``args['lane']`` (when
    present) selects the thread row -- the dispatch core uses it to put
    each worker's chunk lifecycle on its own lane.

    The shared timeline is re-zeroed at the earliest span so Perfetto
    doesn't render epoch-sized offsets.
    """
    records = [r for r in span_records if r.get("duration") is not None]
    if not records:
        return []
    t0 = min(float(r["start"]) for r in records)
    events: list[dict] = []
    processes = sorted({str(r.get("process", "?")) for r in records},
                       key=_process_sort_key)
    pids = {name: pid_base + i for i, name in enumerate(processes)}
    lanes_seen: dict[str, set[int]] = {name: set() for name in processes}
    for record in records:
        process = str(record.get("process", "?"))
        args = dict(record.get("args") or {})
        lane = int(args.pop("lane", 0))
        lanes_seen[process].add(lane)
        for key in ("trace_id", "span_id", "parent_span_id"):
            if record.get(key):
                args[key] = record[key]
        if record.get("clock_offset"):
            args["clock_offset_s"] = record["clock_offset"]
        events.append(
            _complete(
                str(record.get("name", "span")),
                str(record.get("category", "wall")),
                pids[process],
                lane,
                float(record["start"]) - t0,
                float(record["duration"]),
                args or None,
            )
        )
    for name in processes:
        pid = pids[name]
        events.insert(0, _meta("process_sort_index", pid, {"sort_index": pid}))
        events.insert(0, _meta("process_name", pid, {"name": f"distributed: {name}"}))
        for lane in sorted(lanes_seen[name]):
            label = "main" if lane == 0 else f"lane {lane}"
            events.append(_meta("thread_name", pid, {"name": label}, tid=lane))
    return events


def build_chrome_trace(
    *,
    reports: Mapping[int, object] | None = None,
    tracer=None,
    leases: Iterable | None = None,
    worker_names: Mapping[int, str] | None = None,
    labels: Mapping[int, str] | None = None,
    metadata: dict | None = None,
    distributed_spans: Iterable[Mapping] | None = None,
) -> dict:
    """Assemble a complete Chrome trace object.

    ``reports`` maps a job id to its :class:`ExecutionReport`; each job
    becomes its own simulated-time process.  ``tracer`` contributes the
    wall-clock group, ``leases`` the arbitration lanes, and
    ``distributed_spans`` the clock-corrected cross-process groups.
    """
    events: list[dict] = []
    if tracer is not None:
        events.extend(tracer_trace_events(tracer))
    if leases is not None:
        events.extend(lease_trace_events(leases, worker_names=worker_names))
    if distributed_spans is not None:
        events.extend(distributed_trace_events(distributed_spans))
    for offset, (job_id, report) in enumerate(sorted((reports or {}).items())):
        label = (labels or {}).get(job_id) or (
            f"job {job_id}: {report.algorithm} (simulated time)"
        )
        events.extend(
            report_trace_events(
                report,
                pid=SIM_PID_BASE + offset,
                label=label,
                worker_names=worker_names,
            )
        )
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        trace["otherData"] = metadata
    return trace


def write_chrome_trace(path: str | Path, trace: dict) -> Path:
    """Write a trace object as JSON; returns the path written."""
    out = Path(path)
    out.write_text(json.dumps(trace, sort_keys=True))
    return out
