"""Span-based wall-clock tracing of the host process.

The simulator reports *simulated* time; this module measures the other
axis -- how long the reproduction itself takes to run.  A
:class:`Tracer` records named spans (engine hot loops, scheduler
planning calls, probe construction) on the host's monotonic clock,
relative to the tracer's creation instant, so a whole service run's
spans share one timeline.

Spans nest naturally (the context manager tracks depth), and the Chrome
trace exporter (:mod:`repro.obs.chrome_trace`) renders them as a
separate *wall-clock* track group next to the simulated-time worker
lanes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One completed wall-clock span (times in seconds since tracer epoch)."""

    name: str
    start: float
    duration: float
    category: str = "wall"
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class Tracer:
    """Collects wall-clock spans on one monotonic timeline."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._spans: list[Span] = []
        self._depth = 0

    @property
    def epoch_wall_time(self) -> float:
        """Host ``perf_counter`` value the timeline is relative to."""
        return self._epoch

    def spans(self, name: str | None = None) -> list[Span]:
        """Completed spans in completion order (optionally filtered)."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def elapsed(self) -> float:
        """Seconds since the tracer was created."""
        return time.perf_counter() - self._epoch

    def total(self, name: str) -> float:
        """Summed duration of every span with ``name``."""
        return sum(s.duration for s in self._spans if s.name == name)

    @contextmanager
    def span(self, name: str, *, category: str = "wall", **args):
        """Record a wall-clock span around the enclosed block."""
        start = time.perf_counter() - self._epoch
        depth = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self._spans.append(
                Span(
                    name=name,
                    start=start,
                    duration=time.perf_counter() - self._epoch - start,
                    category=category,
                    depth=depth,
                    args=args,
                )
            )

    def add_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        category: str = "wall",
        **args,
    ) -> Span:
        """Record an externally measured span (start relative to epoch)."""
        span = Span(
            name=name, start=start, duration=duration, category=category, args=args
        )
        self._spans.append(span)
        return span
