"""Span-based wall-clock tracing of the host process.

The simulator reports *simulated* time; this module measures the other
axis -- how long the reproduction itself takes to run.  A
:class:`Tracer` records named spans (engine hot loops, scheduler
planning calls, probe construction) on the host's monotonic clock,
relative to the tracer's creation instant, so a whole service run's
spans share one timeline.

Spans nest naturally (the context manager tracks depth), and the Chrome
trace exporter (:mod:`repro.obs.chrome_trace`) renders them as a
separate *wall-clock* track group next to the simulated-time worker
lanes.

Distributed identity
--------------------
When a :class:`~repro.obs.distributed.TraceContext` is activated on the
tracer (:meth:`Tracer.activate`), every span additionally carries a
W3C-traceparent-style identity -- ``trace_id`` / ``span_id`` /
``parent_span_id`` -- so spans recorded in *different processes* (the
gateway, the daemon, each socket worker) can be stitched into one
causally-linked trace by the telemetry aggregator.  Parenting follows
the context-manager nesting within a process; the activated context's
``span_id`` is the parent of top-level spans, which is how a span in
one process becomes the parent of spans in another.  Without an active
context nothing changes: ids stay ``None`` and the hot path pays
nothing beyond the pre-existing bookkeeping.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return os.urandom(16).hex()


@dataclass(frozen=True)
class Span:
    """One completed wall-clock span (times in seconds since tracer epoch)."""

    name: str
    start: float
    duration: float
    category: str = "wall"
    depth: int = 0
    args: dict = field(default_factory=dict)
    #: distributed identity; None unless a trace context was active
    trace_id: str | None = None
    span_id: str | None = None
    parent_span_id: str | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class OpenSpan:
    """A span begun with :meth:`Tracer.start_span`, awaiting ``finish``.

    Used where a span's start and end happen in different call frames
    (the dispatch core opens one per chunk at dispatch time and closes
    it at completion), so the context-manager form cannot apply.
    """

    name: str
    start: float
    category: str
    args: dict
    trace_id: str | None
    span_id: str | None
    parent_span_id: str | None

    @property
    def traceparent(self) -> str | None:
        """W3C-style propagation header naming this span as the parent."""
        if self.trace_id is None or self.span_id is None:
            return None
        return f"00-{self.trace_id}-{self.span_id}-01"


class Tracer:
    """Collects wall-clock spans on one monotonic timeline."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        # The same instant on the shareable wall clock: lets exporters
        # place this tracer's relative timeline on an absolute axis that
        # other processes' telemetry can be aligned with.
        self._epoch_unix = time.time()
        self._spans: list[Span] = []
        self._depth = 0
        self._context = None  # active distributed TraceContext (or None)
        self._span_stack: list[str] = []  # open span ids, innermost last
        # Span ids are cheap: one random 64-bit prefix per tracer plus a
        # counter, instead of an os.urandom call per span.
        self._id_prefix = os.urandom(4).hex()
        self._id_counter = itertools.count(1)

    @property
    def epoch_wall_time(self) -> float:
        """Host ``perf_counter`` value the timeline is relative to."""
        return self._epoch

    @property
    def epoch_unix_time(self) -> float:
        """``time.time()`` at the tracer's epoch (absolute alignment)."""
        return self._epoch_unix

    @property
    def context(self):
        """The active :class:`TraceContext`, or None."""
        return self._context

    def set_context(self, context) -> None:
        """Install (or clear, with None) the active trace context."""
        self._context = context

    @contextmanager
    def activate(self, context):
        """Scope a distributed trace context over the enclosed block."""
        previous = self._context
        self._context = context
        try:
            yield context
        finally:
            self._context = previous

    def new_span_id(self) -> str:
        """A fresh 64-bit span id (16 lowercase hex chars)."""
        # 32 random bits + 32 counter bits = exactly 16 hex chars, the
        # W3C width -- a longer id would fail traceparent validation on
        # the receiving process.
        return f"{self._id_prefix}{next(self._id_counter) & 0xFFFFFFFF:08x}"

    def current_traceparent(self) -> str | None:
        """Propagation header naming the innermost open span as parent.

        Falls back to the activated context's span when no span is open;
        None when no context is active.  Lets code that ships work to
        another process mid-span (the probe round) hand that process a
        parent without opening a dedicated span per request.
        """
        context = self._context
        if context is None:
            return None
        parent = self._span_stack[-1] if self._span_stack else context.span_id
        return f"00-{context.trace_id}-{parent}-01"

    def _identity(self) -> tuple[str | None, str | None, str | None]:
        """(trace_id, span_id, parent_span_id) under the active context."""
        context = self._context
        if context is None:
            return None, None, None
        parent = self._span_stack[-1] if self._span_stack else context.span_id
        return context.trace_id, self.new_span_id(), parent

    def spans(self, name: str | None = None) -> list[Span]:
        """Completed spans in completion order (optionally filtered)."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def elapsed(self) -> float:
        """Seconds since the tracer was created."""
        return time.perf_counter() - self._epoch

    def total(self, name: str) -> float:
        """Summed duration of every span with ``name``."""
        return sum(s.duration for s in self._spans if s.name == name)

    @contextmanager
    def span(self, name: str, *, category: str = "wall", **args):
        """Record a wall-clock span around the enclosed block."""
        start = time.perf_counter() - self._epoch
        depth = self._depth
        self._depth += 1
        trace_id, span_id, parent_id = self._identity()
        if span_id is not None:
            self._span_stack.append(span_id)
        try:
            yield
        finally:
            self._depth -= 1
            if span_id is not None:
                self._span_stack.pop()
            self._spans.append(
                Span(
                    name=name,
                    start=start,
                    duration=time.perf_counter() - self._epoch - start,
                    category=category,
                    depth=depth,
                    args=args,
                    trace_id=trace_id,
                    span_id=span_id,
                    parent_span_id=parent_id,
                )
            )

    def start_span(self, name: str, *, category: str = "wall", **args) -> OpenSpan:
        """Open a span whose end will be reported via :meth:`finish`.

        Unlike :meth:`span`, an open span does not join the nesting
        stack (its lifetime is not lexically scoped); it parents to the
        innermost span open at *start* time, or the active context.
        """
        trace_id, span_id, parent_id = self._identity()
        return OpenSpan(
            name=name,
            start=time.perf_counter() - self._epoch,
            category=category,
            args=args,
            trace_id=trace_id,
            span_id=span_id,
            parent_span_id=parent_id,
        )

    def finish(self, open_span: OpenSpan, **extra_args) -> Span:
        """Close an :class:`OpenSpan` and record the completed span."""
        span = Span(
            name=open_span.name,
            start=open_span.start,
            duration=time.perf_counter() - self._epoch - open_span.start,
            category=open_span.category,
            args={**open_span.args, **extra_args},
            trace_id=open_span.trace_id,
            span_id=open_span.span_id,
            parent_span_id=open_span.parent_span_id,
        )
        self._spans.append(span)
        return span

    def add_span(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        category: str = "wall",
        **args,
    ) -> Span:
        """Record an externally measured span (start relative to epoch)."""
        trace_id, span_id, parent_id = self._identity()
        span = Span(
            name=name, start=start, duration=duration, category=category, args=args,
            trace_id=trace_id, span_id=span_id, parent_span_id=parent_id,
        )
        self._spans.append(span)
        return span
