"""Metrics registry: counters, gauges, fixed-bucket histograms.

A deliberately small, dependency-free subset of the Prometheus data
model, enough to answer the operator questions the multi-job service
raises (how many chunks were dispatched? how long do chunks queue? how
many jobs were preempted?) with two expositions:

* :meth:`MetricsRegistry.render_prometheus` -- the text exposition
  format (``# HELP`` / ``# TYPE`` / sample lines), scrape-ready;
* :meth:`MetricsRegistry.to_json` -- a structured dump for programmatic
  consumers and the ``apst-dv metrics --format json`` verb.

:func:`parse_prometheus` round-trips the text format back into samples;
the test suite uses it to prove the exposition is well-formed.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Sequence

from ..errors import ReproError

#: Default histogram buckets (seconds): spans probe latencies to long runs.
DEFAULT_TIME_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0)


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ReproError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ReproError(f"metric name cannot start with a digit: {name!r}")
    return name


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"')


def _format_labels(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        return [(self.name, self.labels, self._value)]

    def to_dict(self) -> dict:
        return {"type": self.kind, "labels": self.labels, "value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, heap high-water)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def max(self, value: float) -> None:
        """High-water update: keep the larger of current and ``value``."""
        if value > self._value:
            self._value = float(value)

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        return [(self.name, self.labels, self._value)]

    def to_dict(self) -> dict:
        return {"type": self.kind, "labels": self.labels, "value": self._value}


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches everything else.  ``observe`` is O(log buckets).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: dict[str, str] | None = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labels = dict(labels or {})
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ReproError(f"histogram {name} has duplicate bucket bounds")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> list[float]:
        return list(self._bounds)

    def observe(self, value: float) -> None:
        if math.isnan(value):
            return  # NaN observations carry no information
        self._bucket_counts[bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts per upper bound (including ``+Inf``)."""
        out: dict[float, int] = {}
        running = 0
        for bound, n in zip([*self._bounds, math.inf], self._bucket_counts):
            running += n
            out[bound] = running
        return out

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        rows: list[tuple[str, dict[str, str], float]] = []
        for bound, cumulative in self.bucket_counts().items():
            rows.append(
                (
                    f"{self.name}_bucket",
                    {**self.labels, "le": _format_value(bound)},
                    float(cumulative),
                )
            )
        rows.append((f"{self.name}_sum", self.labels, self._sum))
        rows.append((f"{self.name}_count", self.labels, float(self._count)))
        return rows

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "labels": self.labels,
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                _format_value(b): n for b, n in self.bucket_counts().items()
            },
        }


class MetricsRegistry:
    """Namespace of metrics, keyed by (name, frozen label set)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, tuple(sorted((labels or {}).items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def metrics(self) -> list:
        return [self._metrics[k] for k in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exposition ----------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format, families sorted by name."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self.metrics():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(
                    f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, *, indent: int | None = None) -> str:
        data: dict[str, list] = {}
        for metric in self.metrics():
            data.setdefault(metric.name, []).append(metric.to_dict())
        return json.dumps(data, indent=indent, sort_keys=True)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse text exposition back into ``{'name{labels}': value}`` samples.

    A minimal parser for round-trip testing and the CLI self-check; it
    understands the subset :meth:`MetricsRegistry.render_prometheus`
    emits (HELP/TYPE comments, single-line samples, +Inf).
    """
    samples: dict[str, float] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # the value is the last whitespace-separated token; the sample id
        # (name + optional {labels}) is everything before it
        try:
            key, value_text = line.rsplit(None, 1)
        except ValueError as exc:
            raise ReproError(f"malformed exposition line {line_no}: {raw!r}") from exc
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(value_text)
            except ValueError as exc:
                raise ReproError(
                    f"bad sample value on line {line_no}: {raw!r}"
                ) from exc
        if key in samples:
            raise ReproError(f"duplicate sample {key!r} on line {line_no}")
        samples[key] = value
    return samples
