"""Distributed tracing and telemetry aggregation across process boundaries.

A job that flows client -> gateway -> daemon -> remote socket workers
runs in (at least) four processes, each with its own
:class:`~repro.obs.Observability` handle and its own clock.  This module
supplies the three pieces that stitch those views into one trace:

* :class:`TraceContext` -- a W3C-traceparent-style identity
  (``00-<trace_id>-<span_id>-01``) carried in protocol frames.  Each
  process parses the header, activates the context on its local
  :class:`~repro.obs.tracing.Tracer`, and every span it records is then
  causally linked (``trace_id`` shared, ``parent_span_id`` pointing at
  the upstream process's span).

* :class:`TelemetryBuffer` -- a bounded process-local staging area for
  spans, bus events, and metric snapshots.  Remote processes drain it
  into a *telemetry batch* (one JSON-serializable dict) that rides back
  over the existing NDJSON protocol -- piggybacked on worker chunk
  replies and flushed on drain -- instead of needing a side channel.

* :class:`TelemetryAggregator` -- the gateway-side store that merges
  batches from every process.  Remote wall-clock timestamps are
  corrected with a per-process clock offset estimated NTP-style from
  the request/reply round trips the protocol already makes
  (:class:`ClockOffsetEstimator`): the offset
  ``theta = ((t1 - t0) + (t2 - t3)) / 2`` is immune to how long the
  worker computed between receiving (``t1``) and replying (``t2``), so
  every probe and chunk round trip is a valid sample; the minimum-RTT
  sample wins (least queueing noise).

The normalized unit everywhere is the *span record*: a flat dict with
``name`` / ``process`` / ``category`` / ``start`` (unix seconds on the
recording process's clock) / ``duration`` / ``trace_id`` / ``span_id``
/ ``parent_span_id`` / ``args``.  ``GET /trace``, the Chrome-trace
exporter, and the JSON-schema check in CI all consume this shape.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from ..analysis import lockwatch
from ..errors import ReproError
from .tracing import Span, Tracer, new_trace_id

#: Hard bounds on what one telemetry batch may carry; a process that
#: outproduces its flush cadence drops oldest-first rather than growing.
MAX_BATCH_SPANS = 2048
MAX_BATCH_EVENTS = 4096

_TRACEPARENT_VERSION = "00"
_TRACE_FLAGS = "01"  # sampled


# -- trace context -----------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """One hop of a distributed trace: the ids new spans inherit.

    ``trace_id`` identifies the whole end-to-end trace; ``span_id`` is
    the *parent* for spans recorded under this context (i.e. the id of
    the upstream span that caused this process to do work).
    """

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        return f"{_TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{_TRACE_FLAGS}"

    @staticmethod
    def from_traceparent(header: str) -> "TraceContext":
        parts = str(header).split("-")
        if len(parts) != 4:
            raise ReproError(f"malformed traceparent {header!r}: expected 4 fields")
        version, trace_id, span_id, _flags = parts
        if version != _TRACEPARENT_VERSION:
            raise ReproError(f"unsupported traceparent version {version!r}")
        if len(trace_id) != 32 or not _is_hex(trace_id) or trace_id == "0" * 32:
            raise ReproError(f"malformed traceparent trace_id {trace_id!r}")
        if len(span_id) != 16 or not _is_hex(span_id) or span_id == "0" * 16:
            raise ReproError(f"malformed traceparent span_id {span_id!r}")
        return TraceContext(trace_id=trace_id, span_id=span_id)

    @staticmethod
    def new_root(tracer: Tracer | None = None) -> "TraceContext":
        """A fresh trace rooted at a fresh span id."""
        span_id = tracer.new_span_id() if tracer is not None else new_trace_id()[:16]
        return TraceContext(trace_id=new_trace_id(), span_id=span_id)


def _is_hex(text: str) -> bool:
    return all(c in "0123456789abcdef" for c in text)


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Lenient parse for protocol edges: None/invalid headers yield None.

    Telemetry must never make a request fail; a malformed header means
    the span simply starts a correlation gap, not an error response.
    """
    if not header:
        return None
    try:
        return TraceContext.from_traceparent(header)
    except ReproError:
        return None


# -- span records ------------------------------------------------------------


def span_record(span: Span, *, process: str, epoch_unix: float) -> dict:
    """Normalize a tracer span to the wire/store shape.

    ``epoch_unix`` is the tracer's :attr:`~Tracer.epoch_unix_time`; span
    starts are relative to the tracer epoch, records are absolute unix
    seconds *on the recording process's clock* (the aggregator corrects
    them with the clock-offset estimate at query time).
    """
    return {
        "name": span.name,
        "process": process,
        "category": span.category,
        "start": epoch_unix + span.start,
        "duration": span.duration,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_span_id": span.parent_span_id,
        "args": dict(span.args),
    }


# -- process-local buffering -------------------------------------------------


class TelemetryBuffer:
    """Bounded staging area a process drains into telemetry batches.

    Attach it to the local observability handle and it collects all
    three record kinds:

    * spans -- pulled from ``tracer`` with a cursor on each drain;
    * events -- the buffer is itself an :class:`EventBus` sink
      (``bus.attach(buffer)``);
    * metrics -- a full snapshot of ``metrics`` per drain (snapshots
      replace each other downstream; counters are monotonic so the
      latest snapshot *is* the cumulative delta).

    ``drain()`` returns one batch dict, or None when there is nothing
    to ship -- callers piggyback batches on protocol replies and skip
    the field entirely on None.
    """

    def __init__(
        self,
        process: str,
        *,
        tracer: Tracer | None = None,
        metrics=None,
        max_spans: int = MAX_BATCH_SPANS,
        max_events: int = MAX_BATCH_EVENTS,
    ) -> None:
        self.process = process
        self._tracer = tracer
        self._metrics = metrics
        self._span_cursor = 0
        self._events: deque[dict] = deque(maxlen=max_events)
        self._max_spans = max_spans
        self._lock = lockwatch.create_lock("obs.telemetry_buffer")

    def write(self, event) -> None:
        """EventBus sink protocol: buffer the event for the next drain."""
        self._events.append(event.to_dict())

    def drain(self) -> dict | None:
        """Collect everything new since the last drain into one batch."""
        with self._lock:
            spans: list[dict] = []
            if self._tracer is not None:
                all_spans = self._tracer.spans()
                fresh = all_spans[self._span_cursor:]
                self._span_cursor = len(all_spans)
                epoch = self._tracer.epoch_unix_time
                spans = [
                    span_record(s, process=self.process, epoch_unix=epoch)
                    for s in fresh[-self._max_spans:]
                ]
            events: list[dict] = []
            while self._events:
                events.append(self._events.popleft())
            metrics = None
            if self._metrics is not None and len(self._metrics):
                metrics = self._metrics.to_json()
        if not spans and not events and metrics is None:
            return None
        batch: dict = {"process": self.process}
        if spans:
            batch["spans"] = spans
        if events:
            batch["events"] = events
        if metrics is not None:
            batch["metrics"] = metrics
        return batch


# -- clock-offset estimation -------------------------------------------------


class ClockOffsetEstimator:
    """Per-process clock offset from request/reply round trips.

    One sample is the NTP four-timestamp tuple: ``t0`` request sent
    (local clock), ``t1`` request received (remote clock), ``t2`` reply
    sent (remote clock), ``t3`` reply received (local clock).  The
    estimated offset of the remote clock *ahead of* the local one is
    ``((t1 - t0) + (t2 - t3)) / 2``; its error is bounded by half the
    network round trip ``(t3 - t0) - (t2 - t1)``, so the sample with
    the smallest round trip is kept as the estimate.
    """

    def __init__(self) -> None:
        self._best: dict[str, tuple[float, float, int]] = {}  # process -> (offset, rtt, n)
        self._lock = lockwatch.create_lock("obs.clock_offset")

    def add_sample(
        self, process: str, *, t0: float, t1: float, t2: float, t3: float
    ) -> None:
        rtt = (t3 - t0) - (t2 - t1)
        if rtt < 0 or math.isnan(rtt):
            return  # non-causal sample: clocks jumped mid-exchange
        offset = ((t1 - t0) + (t2 - t3)) / 2.0
        with self._lock:
            current = self._best.get(process)
            count = (current[2] if current else 0) + 1
            if current is None or rtt < current[1]:
                self._best[process] = (offset, rtt, count)
            else:
                self._best[process] = (current[0], current[1], count)

    def offset(self, process: str) -> float:
        """Seconds the process's clock reads ahead of ours (0.0 if unknown)."""
        entry = self._best.get(process)
        return entry[0] if entry is not None else 0.0

    def quality(self, process: str) -> float | None:
        """Round-trip bound of the winning sample (None if no samples)."""
        entry = self._best.get(process)
        return entry[1] if entry is not None else None

    def to_dict(self) -> dict:
        return {
            process: {"offset_s": offset, "rtt_s": rtt, "samples": n}
            for process, (offset, rtt, n) in sorted(self._best.items())
        }


# -- gateway-side aggregation ------------------------------------------------


class TelemetryAggregator:
    """Merges telemetry batches from every process into one trace store.

    Local processes (gateway, daemon -- which share the master host and
    clock) contribute via :meth:`sync_tracer` / :meth:`record_span`;
    remote ones arrive as batches through :meth:`ingest`.  Queries
    return span records with ``start`` corrected onto the master clock
    using the per-process offset estimate (the raw reading is preserved
    in ``raw_start``).
    """

    def __init__(self, estimator: ClockOffsetEstimator | None = None) -> None:
        self.offsets = estimator or ClockOffsetEstimator()
        self._spans: list[dict] = []
        self._events: list[dict] = []
        self._metrics: dict[str, str] = {}  # process -> latest to_json() snapshot
        self._tracer_cursors: dict[int, int] = {}
        #: processes whose timestamps are already on the master clock
        self._local_processes: set[str] = set()
        self._lock = lockwatch.create_lock("obs.aggregator")

    # -- ingestion -----------------------------------------------------------
    def ingest(self, batch: dict, *, process: str | None = None) -> None:
        """Merge one telemetry batch (tolerant of partial/odd batches).

        ``process`` overrides the batch's self-reported name -- the
        master knows workers by their registered endpoint names, and the
        override keeps span records and clock-offset samples keyed
        consistently.
        """
        if not isinstance(batch, dict):
            return
        name = process or str(batch.get("process", "unknown"))
        spans = batch.get("spans") or []
        events = batch.get("events") or []
        metrics = batch.get("metrics")
        with self._lock:
            for record in spans:
                if isinstance(record, dict) and "name" in record:
                    self._spans.append({**record, "process": name})
            for record in events:
                if isinstance(record, dict):
                    self._events.append({**record, "process": name})
            if isinstance(metrics, str):
                self._metrics[name] = metrics

    def record_span(self, record: dict) -> None:
        """Store one locally built span record (master-clock timestamps)."""
        with self._lock:
            self._spans.append(record)
            self._local_processes.add(str(record.get("process", "")))

    def sync_tracer(self, tracer: Tracer, *, process: str) -> int:
        """Pull spans a local tracer recorded since the last sync.

        Cursor-based and idempotent per tracer; returns how many new
        spans were stored.  Local tracers share the master clock, so no
        offset correction applies to them.
        """
        key = id(tracer)
        all_spans = tracer.spans()
        with self._lock:
            cursor = self._tracer_cursors.get(key, 0)
            fresh = all_spans[cursor:]
            # never move the cursor backwards: a concurrent sync may have
            # snapshotted a longer span list and advanced it already
            self._tracer_cursors[key] = max(cursor, len(all_spans))
            epoch = tracer.epoch_unix_time
            for span in fresh:
                self._spans.append(
                    span_record(span, process=process, epoch_unix=epoch)
                )
            self._local_processes.add(process)
        return len(fresh)

    def add_offset_sample(
        self, process: str, *, t0: float, t1: float, t2: float, t3: float
    ) -> None:
        self.offsets.add_sample(process, t0=t0, t1=t1, t2=t2, t3=t3)

    # -- queries -------------------------------------------------------------
    def _corrected(self, record: dict) -> dict:
        process = str(record.get("process", ""))
        raw = float(record.get("start", 0.0))
        if process in self._local_processes:
            offset = 0.0
        else:
            offset = self.offsets.offset(process)
        return {**record, "start": raw - offset, "raw_start": raw, "clock_offset": offset}

    def spans(
        self, *, trace_id: str | None = None, process: str | None = None
    ) -> list[dict]:
        """Clock-corrected span records, sorted by corrected start."""
        with self._lock:
            records = [self._corrected(r) for r in self._spans]
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        if process is not None:
            records = [r for r in records if r.get("process") == process]
        records.sort(key=lambda r: r["start"])
        return records

    def events(self, *, name: str | None = None) -> list[dict]:
        with self._lock:
            records = list(self._events)
        if name is not None:
            records = [r for r in records if r.get("name") == name]
        return records

    def processes(self) -> list[str]:
        with self._lock:
            seen = {str(r.get("process", "")) for r in self._spans}
            seen.update(str(r.get("process", "")) for r in self._events)
            seen.update(self._metrics)
        return sorted(p for p in seen if p)

    def trace_ids(self) -> list[str]:
        with self._lock:
            seen = {r.get("trace_id") for r in self._spans}
        return sorted(t for t in seen if t)

    def metrics_snapshots(self) -> dict[str, str]:
        """Latest raw ``MetricsRegistry.to_json()`` text per process."""
        with self._lock:
            return dict(self._metrics)

    def render_remote_prometheus(self) -> str:
        """Remote metric snapshots as exposition text, process-labelled.

        Appended to the gateway's own ``GET /metrics`` output so one
        scrape covers every process.  Rebuilt from the JSON snapshots
        (histograms re-expand to ``_bucket``/``_sum``/``_count``).
        """
        import json as _json

        lines: list[str] = []
        for process, snapshot in sorted(self.metrics_snapshots().items()):
            try:
                families = _json.loads(snapshot)
            except ValueError:
                continue
            for name in sorted(families):
                for entry in families[name]:
                    labels = {**entry.get("labels", {}), "process": process}
                    kind = entry.get("type")
                    if kind in ("counter", "gauge"):
                        lines.append(
                            f"{name}{_labels_text(labels)} "
                            f"{_value_text(entry.get('value', 0.0))}"
                        )
                    elif kind == "histogram":
                        for bound, count in entry.get("buckets", {}).items():
                            lines.append(
                                f"{name}_bucket"
                                f"{_labels_text({**labels, 'le': bound})} {count}"
                            )
                        lines.append(
                            f"{name}_sum{_labels_text(labels)} "
                            f"{_value_text(entry.get('sum', 0.0))}"
                        )
                        lines.append(
                            f"{name}_count{_labels_text(labels)} "
                            f"{entry.get('count', 0)}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        """The full merged store, as served by ``GET /trace``."""
        return {
            "spans": self.spans(),
            "events": self.events(),
            "clock_offsets": self.offsets.to_dict(),
            "processes": self.processes(),
            "trace_ids": self.trace_ids(),
        }


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _value_text(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
