"""Lightweight profiling of the discrete-event engine itself.

The ROADMAP's north star is a service that runs "as fast as the hardware
allows"; before optimising the simulator we need numbers on the
simulator.  :class:`EngineProfiler` aggregates, across every
:class:`~repro.simulation.engine.SimulationEngine` run it observes:

* events processed and wall seconds spent inside ``run()`` (hence
  events/second, the engine's core throughput figure);
* the event-heap depth high-water mark (memory pressure / heap cost);
* per-phase wall time (probe, scheduler planning, engine loop, ...)
  accumulated via :meth:`phase`.

The profiler is passed to the engine as an optional collaborator; the
engine pays a single ``is not None`` check per hot-path operation when
profiling is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PhaseStat:
    """Accumulated wall time of one named phase."""

    name: str
    calls: int
    seconds: float


@dataclass(frozen=True)
class EngineProfile:
    """Snapshot of everything the profiler measured."""

    events_processed: int
    engine_wall_seconds: float
    engine_runs: int
    heap_high_water: int
    phases: dict[str, PhaseStat] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.engine_wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.engine_wall_seconds

    def render(self) -> str:
        lines = [
            "=== Engine profile ===",
            f"events processed : {self.events_processed} "
            f"in {self.engine_wall_seconds * 1e3:.1f}ms over {self.engine_runs} run(s)",
            f"throughput       : {self.events_per_second:,.0f} events/s",
            f"heap high-water  : {self.heap_high_water} pending events",
        ]
        if self.phases:
            lines.append("--- per-phase wall time ---")
            for name in sorted(self.phases):
                p = self.phases[name]
                lines.append(
                    f"  {name:24s} {p.seconds * 1e3:9.1f}ms over {p.calls} call(s)"
                )
        return "\n".join(lines)


class EngineProfiler:
    """Accumulates engine throughput, heap depth, and phase wall time."""

    def __init__(self) -> None:
        self._events = 0
        self._wall = 0.0
        self._runs = 0
        self._heap_high_water = 0
        self._phase_calls: dict[str, int] = {}
        self._phase_seconds: dict[str, float] = {}

    # -- engine collaborators (called from SimulationEngine) ----------------
    def note_heap_depth(self, depth: int) -> None:
        if depth > self._heap_high_water:
            self._heap_high_water = depth

    def note_run(self, events: int, wall_seconds: float) -> None:
        self._events += events
        self._wall += wall_seconds
        self._runs += 1

    # -- phase timing --------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Accumulate the enclosed block's wall time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phase_calls[name] = self._phase_calls.get(name, 0) + 1
            self._phase_seconds[name] = self._phase_seconds.get(name, 0.0) + elapsed

    def add_phase_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record phase time measured externally (hot loops batch this)."""
        self._phase_calls[name] = self._phase_calls.get(name, 0) + calls
        self._phase_seconds[name] = self._phase_seconds.get(name, 0.0) + seconds

    # -- reporting -------------------------------------------------------------
    def report(self) -> EngineProfile:
        return EngineProfile(
            events_processed=self._events,
            engine_wall_seconds=self._wall,
            engine_runs=self._runs,
            heap_high_water=self._heap_high_water,
            phases={
                name: PhaseStat(
                    name=name,
                    calls=self._phase_calls[name],
                    seconds=self._phase_seconds[name],
                )
                for name in self._phase_seconds
            },
        )
