"""Structured event bus: typed events, pluggable sinks, zero dependencies.

The paper's diagnostic instrument is APST-DV's *detailed execution
report* -- a post-hoc artifact.  This module is the live counterpart: a
small publish/subscribe bus over a fixed taxonomy of typed events
(chunk dispatched/completed, round started, probe finished, job
admitted/preempted/cancelled/completed, lease granted/revoked), so the
engine, the daemon, and the multi-job service can be observed while they
run without changing what they compute.

Design constraints:

* **Zero dependencies** -- stdlib only, importable everywhere.
* **Closed taxonomy** -- ``emit`` rejects event names outside
  :data:`EVENT_TYPES`; an unknown name is a programming error, not a new
  feature.
* **Pluggable sinks** -- anything with a ``write(event)`` method:
  an in-memory ring buffer (:class:`RingBufferSink`), a JSONL file
  (:class:`JsonlSink`), or the stdlib :mod:`logging` bridge
  (:class:`LoggingSink`).
* **Pay nothing when off** -- a bus with no sinks reports
  ``enabled == False``; instrumented call sites guard on that.
"""

from __future__ import annotations

import json
import logging
import os
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

from ..errors import ReproError

# -- taxonomy ---------------------------------------------------------------

#: Simulation-layer events (simulated-time stamped).
CHUNK_DISPATCHED = "chunk.dispatched"
CHUNK_COMPLETED = "chunk.completed"
CHUNK_RETRANSMITTED = "chunk.retransmitted"
ROUND_STARTED = "round.started"
PROBE_WORKER_MEASURED = "probe.worker_measured"
PROBE_FINISHED = "probe.finished"

#: Daemon/service lifecycle events.
JOB_SUBMITTED = "job.submitted"
JOB_ADMITTED = "job.admitted"
JOB_PREEMPTED = "job.preempted"
JOB_CANCELLED = "job.cancelled"
JOB_COMPLETED = "job.completed"
JOB_FAILED = "job.failed"
LEASE_GRANTED = "lease.granted"
LEASE_REVOKED = "lease.revoked"

#: Network-gateway events (repro.net: requests, batching, workers).
NET_REQUEST = "net.request"
NET_REQUEST_REJECTED = "net.request.rejected"
NET_BATCH_EXECUTED = "net.batch.executed"
NET_WORKER_REGISTERED = "net.worker.registered"
NET_WORKER_LOST = "net.worker.lost"

#: Resilience-tier events (stragglers, speculation, escalation, DLQ).
CHUNK_SPECULATED = "chunk.speculated"
CHUNK_SPECULATION_WON = "chunk.speculation_won"
CHUNK_SPECULATION_LOST = "chunk.speculation_lost"
CHUNK_ESCALATED = "chunk.escalated"
WORKER_QUARANTINED = "worker.quarantined"
JOB_PARKED = "job.parked"
JOB_REPLAYED = "job.replayed"

#: The closed set of event names the bus accepts.
EVENT_TYPES = frozenset(
    {
        CHUNK_DISPATCHED,
        CHUNK_COMPLETED,
        CHUNK_RETRANSMITTED,
        ROUND_STARTED,
        PROBE_WORKER_MEASURED,
        PROBE_FINISHED,
        JOB_SUBMITTED,
        JOB_ADMITTED,
        JOB_PREEMPTED,
        JOB_CANCELLED,
        JOB_COMPLETED,
        JOB_FAILED,
        LEASE_GRANTED,
        LEASE_REVOKED,
        NET_REQUEST,
        NET_REQUEST_REJECTED,
        NET_BATCH_EXECUTED,
        NET_WORKER_REGISTERED,
        NET_WORKER_LOST,
        CHUNK_SPECULATED,
        CHUNK_SPECULATION_WON,
        CHUNK_SPECULATION_LOST,
        CHUNK_ESCALATED,
        WORKER_QUARANTINED,
        JOB_PARKED,
        JOB_REPLAYED,
    }
)

#: Logger name every observability record flows through.
OBS_LOGGER_NAME = "repro.obs"


@dataclass(slots=True)
class Event:
    """One observed occurrence.

    ``sim_time`` is the simulated clock (seconds) where it applies --
    engine/service events carry it, pure lifecycle events may not.
    ``wall_time`` is the host clock (``time.time()``) at emission.
    ``fields`` holds the event-type-specific payload (JSON-serializable
    scalars, lists, and dicts only).

    Treat instances as immutable.  The class is ``slots`` rather than
    ``frozen`` because construction sits on the emit hot path and
    frozen dataclasses build through ``object.__setattr__``.
    """

    name: str
    wall_time: float
    sim_time: float | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {"name": self.name, "wall_time": self.wall_time}
        if self.sim_time is not None:
            data["sim_time"] = self.sim_time
        if self.fields:
            data["fields"] = self.fields
        return data

    @staticmethod
    def from_dict(data: dict) -> "Event":
        try:
            return Event(
                name=str(data["name"]),
                wall_time=float(data["wall_time"]),
                sim_time=(
                    float(data["sim_time"]) if data.get("sim_time") is not None else None
                ),
                fields=dict(data.get("fields", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed event record: {data!r}") from exc


# -- sinks ------------------------------------------------------------------


class RingBufferSink:
    """Keeps the most recent ``capacity`` events, evicting the oldest."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ReproError(f"ring buffer capacity must be >= 1, got {capacity}")
        self._buffer: deque[Event] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    def __len__(self) -> int:
        return len(self._buffer)

    def write(self, event: Event) -> None:
        self._buffer.append(event)

    def events(self, name: str | None = None) -> list[Event]:
        """Buffered events, oldest first (optionally filtered by name)."""
        if name is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.name == name]

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink:
    """Appends one JSON object per event to a file (or open stream)."""

    def __init__(self, target: str | Path | IO[str]) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owns = False
        else:
            self._stream = open(Path(target), "a", encoding="utf-8")
            self._owns = True

    def write(self, event: Event) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        """Flush *and fsync* so a SIGTERM drain cannot truncate mid-line.

        Flushing alone only moves buffered lines into the page cache; a
        process killed right after drain could still lose the tail of
        the event log.  fsync pushes the file to stable storage before
        the handle is released (skipped for targets that are not real
        files, e.g. StringIO in tests).
        """
        self._stream.flush()
        try:
            os.fsync(self._stream.fileno())
        except (AttributeError, OSError, ValueError):
            pass  # not a real file descriptor (StringIO) or already gone
        if self._owns:
            self._stream.close()

    @staticmethod
    def read(path: str | Path) -> list[Event]:
        """Load a JSONL event file back into :class:`Event` objects."""
        events = []
        for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"malformed JSONL at line {line_no}: {exc}") from exc
            events.append(Event.from_dict(data))
        return events


class LoggingSink:
    """Bridges events onto the stdlib :mod:`logging` tree.

    Records go to the ``repro.obs`` logger at DEBUG (or the level given),
    so ordinary ``-v``/``-q`` verbosity handling applies to the event
    stream exactly like to any other diagnostic.
    """

    def __init__(
        self, logger: logging.Logger | None = None, level: int = logging.DEBUG
    ) -> None:
        self._logger = logger or logging.getLogger(OBS_LOGGER_NAME)
        self._level = level

    def write(self, event: Event) -> None:
        if not self._logger.isEnabledFor(self._level):
            return
        at = "" if event.sim_time is None else f" t={event.sim_time:.3f}s"
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.fields.items()))
        self._logger.log(self._level, "%s%s %s", event.name, at, detail)


# -- the bus ----------------------------------------------------------------


class EventBus:
    """Fan-out of typed events to the attached sinks."""

    def __init__(self, sinks: Iterable | None = None) -> None:
        self._sinks: list = list(sinks or [])

    @property
    def enabled(self) -> bool:
        """True when at least one sink is attached (cheap hot-path guard)."""
        return bool(self._sinks)

    @property
    def sinks(self) -> list:
        return list(self._sinks)

    def attach(self, sink) -> None:
        if not hasattr(sink, "write"):
            raise ReproError(f"sink {sink!r} has no write() method")
        self._sinks.append(sink)

    def emit(self, name: str, *, sim_time: float | None = None, **fields) -> None:
        """Publish one event to every sink; no-op when no sink is attached."""
        if not self._sinks:
            return
        if name not in EVENT_TYPES:
            raise ReproError(
                f"unknown event type {name!r}; the taxonomy is closed "
                f"(see repro.obs.events.EVENT_TYPES)"
            )
        event = Event(name=name, wall_time=time.time(), sim_time=sim_time, fields=fields)
        for sink in self._sinks:
            sink.write(event)

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
