"""The simulated APST-DV master: drives a scheduler over a grid.

This is the heart of the simulation backend.  It reproduces the structure
of the APST-DV daemon's scheduler loop:

1. optionally run a probe round (Section 3.5) to estimate resources;
2. hand the estimates and total load to the DLS algorithm;
3. whenever the serialized master link is free, ask the algorithm for the
   next dispatch, snap the requested size to a valid cut-off point via the
   load's division method, and ship the chunk;
4. deliver arrival/completion notifications back to the algorithm (which
   adaptive algorithms use to refine their resource view);
5. optionally ship output data back over the same link (the case study's
   MPEG-4 output files).

The run ends when the load is exhausted and every chunk has computed; the
result is an :class:`~repro.simulation.trace.ExecutionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from ..apst.division import DivisionMethod, LoadTracker, UniformUnitsDivision
from ..apst.probing import default_probe_units, perfect_information, run_probe_phase
from ..core.base import ChunkInfo, Scheduler, SchedulerConfig, WorkerState
from ..errors import SchedulingError, SimulationError
from ..obs import (
    CHUNK_COMPLETED,
    CHUNK_DISPATCHED,
    OBS_DISABLED,
    PROBE_FINISHED,
    ROUND_STARTED,
    Observability,
)
from ..platform.resources import Grid, WorkerSpec
from .compute import DETERMINISTIC, ComputeModel, UncertaintyModel
from .engine import SimulationEngine
from .network import SerializedLink, TransferRecord
from .trace import ChunkTrace, ExecutionReport

#: Safety bound on simulation events; generous for every paper workload.
MAX_EVENTS = 5_000_000


@dataclass
class SimulationOptions:
    """Knobs of a simulated run.

    Parameters
    ----------
    include_probe_time:
        Count the probe round in the reported makespan.  Defaults to
        False: the paper's figures compare application makespans with
        probing as a separate preparatory step (its SIMPLE-n baselines do
        not probe at all, yet UMR still wins by only ~5% over SIMPLE-5 --
        impossible if minutes of probing were billed to UMR).  The probe
        duration is always recorded in the report either way.
    perfect_estimates:
        Skip probing and hand the algorithm the true platform parameters
        (ablation mode).  Shorthand for ``estimate_source="oracle"``.
    estimate_source:
        Where resource estimates come from: ``"probe"`` (application-level
        probing, APST-DV's choice), ``"oracle"`` (the truth, zero cost), or
        ``"monitor"`` (an NWS/Ganglia-like monitoring service: zero cost,
        persistent application-translation error -- the paper's Section
        3.5 alternative).
    monitoring:
        Error model for ``estimate_source="monitor"``.
    probe_units:
        Probe chunk size; None picks :func:`default_probe_units`.
    output_factor:
        Units of output shipped back per unit of input (0 = ignore
        outputs, as in the paper's synthetic experiments; the MPEG-4 case
        study produces compressed output, ~0.1).
    quantum:
        Division granularity when the workload does not carry its own
        division method.
    observability:
        Optional :class:`~repro.obs.Observability` handle; when set, the
        run emits chunk/round/probe events, records metrics, and feeds
        the engine profiler.  ``None`` (the default) is a strict no-op.
    """

    include_probe_time: bool = False
    perfect_estimates: bool = False
    estimate_source: str = "probe"
    monitoring: object | None = None
    probe_units: float | None = None
    output_factor: float = 0.0
    quantum: float = 1.0
    max_events: int = MAX_EVENTS
    observability: Observability | None = None


@dataclass
class _WorkerRuntime:
    """Driver-internal dynamic state of one worker."""

    state: WorkerState
    queue: list[ChunkTrace] = field(default_factory=list)
    computing: ChunkTrace | None = None


class SimulatedMaster:
    """One simulated application run: grid + scheduler + load.

    Use :func:`simulate_run` for the common case.
    """

    def __init__(
        self,
        grid: Grid,
        scheduler: Scheduler,
        total_load: float,
        *,
        division: DivisionMethod | None = None,
        uncertainty: UncertaintyModel = DETERMINISTIC,
        seed: int | None = None,
        options: SimulationOptions | None = None,
        cost_profile=None,
    ) -> None:
        self._grid = grid
        self._scheduler = scheduler
        self._options = options or SimulationOptions()
        self._division = division or UniformUnitsDivision(
            total=total_load, step=self._options.quantum
        )
        if abs(self._division.total_units - total_load) > 1e-9 * max(1.0, total_load):
            raise SimulationError(
                f"division covers {self._division.total_units} units, "
                f"but total_load is {total_load}"
            )
        self._total_load = float(total_load)
        self._uncertainty = uncertainty
        self._seed = seed
        self._obs = self._options.observability or OBS_DISABLED
        # Cached for the per-chunk hot path: one indirection, no kwargs repack.
        self._bus = self._obs.bus
        self._engine = SimulationEngine(profiler=self._obs.profiler)
        self._model = ComputeModel(
            grid.workers, uncertainty, seed=seed, cost_profile=cost_profile
        )
        self._link = SerializedLink(self._engine, self._model)
        self._link.on_idle = self._pump
        self._tracker = LoadTracker(self._division)
        self._workers = [
            _WorkerRuntime(state=WorkerState(index=i, name=w.name))
            for i, w in enumerate(grid.workers)
        ]
        self._estimates: list[WorkerSpec] = []
        self._chunk_counter = 0
        self._chunks: list[ChunkTrace] = []
        self._pending_outputs = 0
        self._probe_time = 0.0
        self._finished = False
        self._max_round = -1
        self._plan_seconds = 0.0
        self._plan_calls = 0
        metrics = self._obs.metrics
        if metrics is not None:
            self._m_dispatched = metrics.counter(
                "repro_chunks_dispatched_total",
                "Chunks pushed onto the serialized master link",
            )
            self._m_completed = metrics.counter(
                "repro_chunks_completed_total", "Chunk computations finished"
            )
            self._m_units = metrics.counter(
                "repro_units_dispatched_total", "Load units dispatched"
            )
            self._m_rounds = metrics.counter(
                "repro_rounds_started_total", "Scheduling rounds entered"
            )
            self._m_queue = metrics.histogram(
                "repro_chunk_queue_seconds",
                "Simulated seconds chunks waited on the worker before computing",
            )
            self._m_compute = metrics.histogram(
                "repro_chunk_compute_seconds",
                "Simulated seconds chunks spent computing",
            )
        else:
            self._m_dispatched = None
            self._m_completed = None
            self._m_units = None
            self._m_rounds = None
            self._m_queue = None
            self._m_compute = None

    # -- public API ---------------------------------------------------------
    def run(self) -> ExecutionReport:
        """Execute the full run and return its execution report."""
        if self._finished:
            raise SimulationError("SimulatedMaster.run() called twice")
        with self._obs.span("probe", algorithm=self._scheduler.name):
            self._probe()
        with self._obs.span("scheduler.plan", algorithm=self._scheduler.name):
            self._configure_scheduler()
        with self._obs.span("engine.run", algorithm=self._scheduler.name):
            self._pump()
            self._engine.run(max_events=self._options.max_events)
        profiler = self._obs.profiler
        if profiler is not None and self._plan_calls:
            profiler.add_phase_time(
                "scheduler.next_dispatch", self._plan_seconds, self._plan_calls
            )
        self._check_termination()
        self._finished = True
        makespan = self._engine.now + (
            self._probe_time if self._options.include_probe_time else 0.0
        )
        report = ExecutionReport(
            algorithm=self._scheduler.name,
            total_load=self._total_load,
            makespan=makespan,
            probe_time=self._probe_time,
            chunks=self._chunks,
            link_busy_time=self._link.busy_time,
            gamma_configured=self._uncertainty.gamma,
            seed=self._seed,
            annotations=self._scheduler.annotations(),
        )
        report.validate()
        return report

    # -- phases ---------------------------------------------------------------
    def _probe(self) -> None:
        source = self._options.estimate_source
        if self._options.perfect_estimates:
            source = "oracle"
        if source not in ("probe", "oracle", "monitor"):
            raise SimulationError(f"unknown estimate_source {source!r}")
        if source == "oracle":
            result = perfect_information(list(self._grid.workers))
        elif source == "monitor":
            from ..apst.monitoring import MonitoringConfig, MonitoringService

            config = self._options.monitoring
            if config is not None and not isinstance(config, MonitoringConfig):
                raise SimulationError(
                    "options.monitoring must be a MonitoringConfig"
                )
            service = MonitoringService(
                list(self._grid.workers), config, seed=self._seed
            )
            result = service.estimates()
        elif self._scheduler.uses_probing:
            probe_units = self._options.probe_units
            if probe_units is None:
                probe_units = default_probe_units(self._total_load)
            result = run_probe_phase(
                list(self._grid.workers), self._model, probe_units, obs=self._obs
            )
        else:
            # SIMPLE-n: no probing; the algorithm only needs worker count,
            # but the config interface wants specs -- hand it unit dummies.
            result = perfect_information(list(self._grid.workers))
            result = type(result)(estimates=result.estimates, duration=0.0, probe_units=0.0)
        self._estimates = result.estimates
        self._probe_time = result.duration
        if self._obs.enabled:
            self._obs.emit(
                PROBE_FINISHED,
                sim_time=0.0,
                source=source,
                duration=result.duration,
                probe_units=result.probe_units,
                workers=len(self._estimates),
            )

    def _configure_scheduler(self) -> None:
        self._scheduler.configure(
            SchedulerConfig(
                estimates=self._estimates,
                total_load=self._total_load,
                quantum=self._options.quantum,
            )
        )

    # -- dispatch pump ---------------------------------------------------------
    def _pump(self) -> None:
        """Feed the link while it is free and the algorithm has work."""
        profiler = self._obs.profiler
        while not self._link.busy and not self._tracker.exhausted:
            if profiler is not None:
                # Accumulate locally; flushed to the profiler once per run()
                # so the hot loop pays two clock reads and a float add.
                plan_start = perf_counter()
                request = self._scheduler.next_dispatch(
                    self._engine.now, [w.state for w in self._workers]
                )
                self._plan_seconds += perf_counter() - plan_start
                self._plan_calls += 1
            else:
                request = self._scheduler.next_dispatch(
                    self._engine.now, [w.state for w in self._workers]
                )
            if request is None:
                return
            if not 0 <= request.worker_index < len(self._workers):
                raise SchedulingError(
                    f"{self._scheduler.name} dispatched to invalid worker "
                    f"{request.worker_index}"
                )
            extent = self._tracker.take(request.units)
            chunk = ChunkTrace(
                chunk_id=self._chunk_counter,
                worker_index=request.worker_index,
                worker_name=self._grid.workers[request.worker_index].name,
                units=extent.units,
                offset=extent.offset,
                round_index=request.round_index,
                phase=request.phase,
                send_start=self._engine.now,
                predicted_compute=self._estimates[request.worker_index].compute_time(
                    extent.units
                ),
            )
            self._chunk_counter += 1
            if self._obs.enabled:
                if request.round_index > self._max_round:
                    self._max_round = request.round_index
                    if self._bus is not None:
                        self._bus.emit(
                            ROUND_STARTED,
                            sim_time=self._engine.now,
                            round=request.round_index,
                            phase=request.phase,
                            algorithm=self._scheduler.name,
                        )
                    if self._m_rounds is not None:
                        self._m_rounds.inc()
                if self._bus is not None:
                    self._bus.emit(
                        CHUNK_DISPATCHED,
                        sim_time=self._engine.now,
                        chunk_id=chunk.chunk_id,
                        worker=chunk.worker_name,
                        worker_index=chunk.worker_index,
                        units=chunk.units,
                        round=chunk.round_index,
                        phase=chunk.phase,
                    )
                if self._m_dispatched is not None:
                    self._m_dispatched.inc()
                    self._m_units.inc(chunk.units)
            runtime = self._workers[request.worker_index]
            runtime.state.outstanding += 1
            runtime.state.outstanding_units += extent.units
            self._scheduler.notify_dispatched(
                ChunkInfo(
                    chunk_id=chunk.chunk_id,
                    worker_index=chunk.worker_index,
                    units=chunk.units,
                    round_index=chunk.round_index,
                    phase=chunk.phase,
                )
            )
            self._link.submit(
                request.worker_index, extent.units, self._on_arrival, tag=chunk
            )

    # -- event handlers ----------------------------------------------------------
    def _on_arrival(self, record: TransferRecord) -> None:
        chunk = record.tag
        assert isinstance(chunk, ChunkTrace)
        chunk.send_end = self._engine.now
        runtime = self._workers[chunk.worker_index]
        runtime.queue.append(chunk)
        self._chunks.append(chunk)
        self._scheduler.notify_arrival(self._info(chunk), self._engine.now)
        if runtime.computing is None:
            self._start_compute(runtime)
        # link.on_idle will pump if nothing else is queued

    def _start_compute(self, runtime: _WorkerRuntime) -> None:
        chunk = runtime.queue.pop(0)
        runtime.computing = chunk
        chunk.compute_start = self._engine.now
        duration = self._model.realized_compute_time(
            chunk.worker_index, chunk.units, offset=chunk.offset
        )
        self._engine.schedule(duration, self._on_completion, runtime, chunk)

    def _on_completion(self, runtime: _WorkerRuntime, chunk: ChunkTrace) -> None:
        chunk.compute_end = self._engine.now
        runtime.computing = None
        state = runtime.state
        state.outstanding -= 1
        state.outstanding_units -= chunk.units
        state.completed_chunks += 1
        state.completed_units += chunk.units
        state.busy_time += chunk.compute_time
        if self._obs.enabled:
            if self._bus is not None:
                self._bus.emit(
                    CHUNK_COMPLETED,
                    sim_time=self._engine.now,
                    chunk_id=chunk.chunk_id,
                    worker=chunk.worker_name,
                    worker_index=chunk.worker_index,
                    units=chunk.units,
                    queue_time=chunk.queue_time,
                    compute_time=chunk.compute_time,
                )
            if self._m_completed is not None:
                self._m_completed.inc()
                self._m_queue.observe(chunk.queue_time)
                self._m_compute.observe(chunk.compute_time)
        self._scheduler.notify_completion(
            self._info(chunk),
            self._engine.now,
            predicted_time=chunk.predicted_compute,
            actual_time=chunk.compute_time,
        )
        if self._options.output_factor > 0:
            self._pending_outputs += 1
            self._link.submit(
                chunk.worker_index,
                chunk.units * self._options.output_factor,
                self._on_output_done,
                tag=("output", chunk.chunk_id),
            )
        if runtime.queue:
            self._start_compute(runtime)
        self._pump()

    def _on_output_done(self, record: TransferRecord) -> None:
        self._pending_outputs -= 1

    # -- bookkeeping --------------------------------------------------------------
    def _info(self, chunk: ChunkTrace) -> ChunkInfo:
        return ChunkInfo(
            chunk_id=chunk.chunk_id,
            worker_index=chunk.worker_index,
            units=chunk.units,
            round_index=chunk.round_index,
            phase=chunk.phase,
        )

    def _check_termination(self) -> None:
        if not self._tracker.exhausted:
            raise SchedulingError(
                f"{self._scheduler.name} stalled with "
                f"{self._tracker.remaining:.3f} units undispatched "
                f"(dispatched {self._tracker.consumed:.3f} of {self._total_load})"
            )
        for runtime in self._workers:
            if runtime.queue or runtime.computing is not None:
                raise SimulationError(
                    f"worker {runtime.state.name} still has work after drain"
                )
        if self._pending_outputs:
            raise SimulationError("output transfers still pending after drain")


def simulate_run(
    grid: Grid,
    scheduler: Scheduler,
    total_load: float,
    *,
    division: DivisionMethod | None = None,
    gamma: float = 0.0,
    comm_gamma: float = 0.0,
    autocorrelation: float = 0.0,
    seed: int | None = None,
    options: SimulationOptions | None = None,
    cost_profile=None,
) -> ExecutionReport:
    """Convenience wrapper: one run of ``scheduler`` on ``grid``.

    Examples
    --------
    >>> from repro.platform.presets import das2_cluster
    >>> from repro.core.simple import SimpleN
    >>> grid = das2_cluster(nodes=4)
    >>> report = simulate_run(grid, SimpleN(1), total_load=1000.0, seed=0)
    >>> report.num_chunks
    4
    """
    master = SimulatedMaster(
        grid,
        scheduler,
        total_load,
        division=division,
        uncertainty=UncertaintyModel(
            gamma=gamma, comm_gamma=comm_gamma, autocorrelation=autocorrelation
        ),
        seed=seed,
        options=options,
        cost_profile=cost_profile,
    )
    return master.run()
