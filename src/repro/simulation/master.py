"""The simulated APST-DV master: the simulation backend's dispatch adapter.

The scheduler-driving loop itself -- probe phase, division snapping,
serialized-link arbitration, retry policy, observability, report
assembly -- lives once in :class:`~repro.dispatch.core.DispatchCore` and
is shared with the real execution backends.  This module contributes the
simulation substrate:

* the clock is the discrete-event engine's simulated ``now``;
* the transport is the modeled :class:`~repro.simulation.network.SerializedLink`;
* the compute host schedules modeled compute durations (drawn from the
  :class:`~repro.simulation.compute.ComputeModel`) as engine events, and
  "waiting" means stepping the engine one event at a time.

The run ends when the load is exhausted and every chunk has computed; the
result is an :class:`~repro.simulation.trace.ExecutionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from ..apst.division import ChunkExtent, DivisionMethod
from ..dispatch.core import MAX_EVENTS, DispatchCore, DispatchOptions
from ..dispatch.protocols import DispatchSubstrate
from ..errors import SimulationError
from ..platform.resources import Grid
from .compute import DETERMINISTIC, ComputeModel, UncertaintyModel
from .engine import SimulationEngine
from .network import SerializedLink, TransferRecord
from .trace import ChunkTrace, ExecutionReport

__all__ = [
    "MAX_EVENTS",
    "SimulatedMaster",
    "SimulationOptions",
    "build_substrate",
    "simulate_run",
]


@dataclass
class SimulationOptions(DispatchOptions):
    """Knobs of a simulated run.

    The simulation backend exposes exactly the backend-agnostic options;
    see :class:`~repro.dispatch.core.DispatchOptions` for the field
    documentation.  The alias is kept as the simulation-facing name (and
    for history files that pickle it).
    """


class _SimClock:
    """The driver's clock is the discrete-event engine's clock."""

    __slots__ = ("_engine",)

    def __init__(self, engine: SimulationEngine) -> None:
        self._engine = engine

    def now(self) -> float:
        return self._engine.now


class _SimTransport:
    """Chunk shipment over the modeled serialized master link."""

    supports_outputs = True

    def __init__(self, link: SerializedLink) -> None:
        self._link = link
        self._core: DispatchCore | None = None

    def bind(self, core: DispatchCore) -> None:
        self._core = core

    @property
    def busy(self) -> bool:
        return self._link.busy

    @property
    def busy_time(self) -> float:
        return self._link.busy_time

    def send(self, chunk: ChunkTrace, extent: ChunkExtent) -> None:
        self._link.submit(chunk.worker_index, extent.units, self._arrived, tag=chunk)

    def send_output(self, chunk: ChunkTrace, units: float) -> None:
        self._link.submit(
            chunk.worker_index, units, self._output_done, tag=("output", chunk.chunk_id)
        )

    def _arrived(self, record: TransferRecord) -> None:
        chunk = record.tag
        assert isinstance(chunk, ChunkTrace)
        chunk.send_end = record.end_time
        self._core.chunk_arrived(chunk, None)

    def _output_done(self, record: TransferRecord) -> None:
        self._core.output_done()


@dataclass
class _WorkerRuntime:
    """Host-internal dynamic state of one simulated worker."""

    queue: list[ChunkTrace] = field(default_factory=list)
    computing: ChunkTrace | None = None


class _SimHost:
    """Simulated per-worker computation: engine events, stepped waiting."""

    time_advances_when_idle = False

    def __init__(
        self,
        engine: SimulationEngine,
        model: ComputeModel,
        num_workers: int,
        *,
        max_events: int = MAX_EVENTS,
        profiler=None,
    ) -> None:
        self._engine = engine
        self._model = model
        self._workers = [_WorkerRuntime() for _ in range(num_workers)]
        self._max_events = max_events
        self._profiler = profiler
        self._executed = 0
        self._run_start: float | None = None
        self._core: DispatchCore | None = None

    def bind(self, core: DispatchCore) -> None:
        self._core = core

    def start(self) -> None:
        pass

    def stop(self) -> None:
        if self._profiler is not None and self._run_start is not None:
            self._profiler.note_run(self._executed, perf_counter() - self._run_start)  # repro: allow[sim-time] -- profiler measures wall events/s, not modeled time

    def enqueue(self, chunk: ChunkTrace, payload: object) -> None:
        runtime = self._workers[chunk.worker_index]
        runtime.queue.append(chunk)
        if runtime.computing is None:
            self._start_compute(runtime)

    def poll(self) -> None:
        pass

    def wait(self) -> bool:
        if self._run_start is None:
            self._run_start = perf_counter()  # repro: allow[sim-time] -- profiler measures wall events/s, not modeled time
        if not self._engine.step():
            return False
        self._executed += 1
        if self._executed > self._max_events:
            raise SimulationError(
                f"simulation exceeded max_events={self._max_events}; likely livelock"
            )
        return True

    def idle_tick(self) -> bool:
        return False  # simulated time only moves through events

    def _start_compute(self, runtime: _WorkerRuntime) -> None:
        chunk = runtime.queue.pop(0)
        runtime.computing = chunk
        chunk.compute_start = self._engine.now
        duration = self._model.realized_compute_time(
            chunk.worker_index, chunk.units, offset=chunk.offset
        )
        self._engine.schedule(duration, self._completed, runtime, chunk)

    def _completed(self, runtime: _WorkerRuntime, chunk: ChunkTrace) -> None:
        chunk.compute_end = self._engine.now
        runtime.computing = None
        self._core.chunk_completed(chunk)
        if runtime.queue:
            self._start_compute(runtime)


def build_substrate(
    grid: Grid,
    *,
    uncertainty: UncertaintyModel = DETERMINISTIC,
    seed: int | None = None,
    options: SimulationOptions | None = None,
    cost_profile=None,
) -> DispatchSubstrate:
    """Fresh single-use simulation substrate for one run on ``grid``.

    The same adapter :class:`SimulatedMaster` uses internally, exposed so
    harnesses (e.g. the failure-injection parity scenarios) can wrap the
    substrate's host or probe costs before handing it to a
    :class:`~repro.dispatch.core.DispatchCore` -- mirroring the
    ``substrate()`` methods of the real execution backends.
    """
    opts = options or SimulationOptions()
    obs = opts.observability
    engine = SimulationEngine(profiler=obs.profiler if obs is not None else None)
    model = ComputeModel(
        grid.workers, uncertainty, seed=seed, cost_profile=cost_profile
    )
    link = SerializedLink(engine, model)
    return DispatchSubstrate(
        clock=_SimClock(engine),
        transport=_SimTransport(link),
        host=_SimHost(
            engine,
            model,
            len(grid.workers),
            max_events=opts.max_events,
            profiler=obs.profiler if obs is not None else None,
        ),
        probe_costs=model,
        gamma_configured=uncertainty.gamma,
        seed=seed,
    )


class SimulatedMaster:
    """One simulated application run: grid + scheduler + load.

    A thin adapter: builds the simulation substrate (engine, compute
    model, serialized link) and delegates the whole loop to
    :class:`~repro.dispatch.core.DispatchCore`.  Use :func:`simulate_run`
    for the common case.
    """

    def __init__(
        self,
        grid: Grid,
        scheduler,
        total_load: float,
        *,
        division: DivisionMethod | None = None,
        uncertainty: UncertaintyModel = DETERMINISTIC,
        seed: int | None = None,
        options: SimulationOptions | None = None,
        cost_profile=None,
    ) -> None:
        opts = options or SimulationOptions()
        substrate = build_substrate(
            grid,
            uncertainty=uncertainty,
            seed=seed,
            options=opts,
            cost_profile=cost_profile,
        )
        self._core = DispatchCore(
            grid,
            scheduler,
            total_load,
            substrate=substrate,
            division=division,
            options=opts,
        )

    def run(self) -> ExecutionReport:
        """Execute the full run and return its execution report."""
        return self._core.run()


def simulate_run(
    grid: Grid,
    scheduler,
    total_load: float,
    *,
    division: DivisionMethod | None = None,
    gamma: float = 0.0,
    comm_gamma: float = 0.0,
    autocorrelation: float = 0.0,
    seed: int | None = None,
    options: SimulationOptions | None = None,
    cost_profile=None,
) -> ExecutionReport:
    """Convenience wrapper: one run of ``scheduler`` on ``grid``.

    Examples
    --------
    >>> from repro.platform.presets import das2_cluster
    >>> from repro.core.simple import SimpleN
    >>> grid = das2_cluster(nodes=4)
    >>> report = simulate_run(grid, SimpleN(1), total_load=1000.0, seed=0)
    >>> report.num_chunks
    4
    """
    master = SimulatedMaster(
        grid,
        scheduler,
        total_load,
        division=division,
        uncertainty=UncertaintyModel(
            gamma=gamma, comm_gamma=comm_gamma, autocorrelation=autocorrelation
        ),
        seed=seed,
        options=options,
        cost_profile=cost_profile,
    )
    return master.run()
