"""Position-dependent computation cost profiles.

Table 1's uncertainty is *data-dependent*: HMMER's expensive units are
specific long sequences at fixed positions in the database, MPEG's are
complex scenes at fixed frames.  A random per-chunk noise factor (the
``gamma`` model) captures the scheduler-visible variance but not the
structure: with a cost *profile*, the same load region costs the same
amount on every run, whoever computes it.

A :class:`CostProfile` maps a load range ``[offset, offset + units)`` to
its mean relative cost (1.0 = nominal).  The compute model multiplies the
chunk's size-proportional term by it.  Profiles must be calibrated so the
whole load's mean relative cost is 1.0 (checked at construction), keeping
platform calibration intact.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


class CostProfile:
    """Base: uniform cost (the paper's synthetic app without hotspots)."""

    def mean_cost(self, offset: float, units: float) -> float:
        """Mean relative cost over ``[offset, offset + units)``."""
        if units <= 0:
            raise SimulationError("cost query over empty range")
        return 1.0


@dataclass(frozen=True)
class _Segment:
    start: float
    end: float
    cost: float


class PiecewiseProfile(CostProfile):
    """Piecewise-constant relative cost over ``[0, total)``.

    Built from (start, end, cost) segments covering the load without gaps
    or overlaps; normalized so the load-wide mean cost is exactly 1.0.
    """

    def __init__(self, segments: list[tuple[float, float, float]]) -> None:
        if not segments:
            raise SimulationError("profile needs at least one segment")
        ordered = sorted(segments)
        cleaned: list[_Segment] = []
        for start, end, cost in ordered:
            if end <= start:
                raise SimulationError(f"empty segment ({start}, {end})")
            if cost <= 0:
                raise SimulationError(f"non-positive cost {cost}")
            if cleaned and abs(start - cleaned[-1].end) > 1e-9:
                raise SimulationError(
                    f"gap or overlap at {start} (previous segment ends at "
                    f"{cleaned[-1].end})"
                )
            cleaned.append(_Segment(start, end, cost))
        if abs(cleaned[0].start) > 1e-9:
            raise SimulationError("profile must start at offset 0")
        total = cleaned[-1].end
        weighted = sum(s.cost * (s.end - s.start) for s in cleaned)
        scale = total / weighted  # normalize mean cost to 1.0
        self._segments = [
            _Segment(s.start, s.end, s.cost * scale) for s in cleaned
        ]
        self._starts = [s.start for s in self._segments]
        self._total = total

    @property
    def total_units(self) -> float:
        return self._total

    def cost_at(self, position: float) -> float:
        """Relative cost of the unit at ``position``."""
        if not 0 <= position < self._total + 1e-9:
            raise SimulationError(f"position {position} outside [0, {self._total})")
        i = max(0, bisect.bisect_right(self._starts, position) - 1)
        return self._segments[i].cost

    def mean_cost(self, offset: float, units: float) -> float:
        if units <= 0:
            raise SimulationError("cost query over empty range")
        end = offset + units
        if offset < -1e-9 or end > self._total + 1e-9:
            raise SimulationError(
                f"range [{offset}, {end}) outside load [0, {self._total})"
            )
        total_cost = 0.0
        for s in self._segments:
            lo = max(offset, s.start)
            hi = min(end, s.end)
            if hi > lo:
                total_cost += s.cost * (hi - lo)
        return total_cost / units


def hotspot_profile(
    total: float,
    *,
    hotspots: list[tuple[float, float]],
    scale: float = 2.0,
) -> PiecewiseProfile:
    """A uniform load with expensive regions.

    ``hotspots`` are (start_fraction, end_fraction) pairs in [0, 1];
    each costs ``scale`` times the baseline before normalization.
    """
    if total <= 0:
        raise SimulationError("total must be positive")
    boundaries = {0.0, 1.0}
    for a, b in hotspots:
        if not 0.0 <= a < b <= 1.0:
            raise SimulationError(f"bad hotspot ({a}, {b})")
        boundaries.update((a, b))
    points = sorted(boundaries)
    segments = []
    for lo, hi in zip(points, points[1:]):
        mid = (lo + hi) / 2
        hot = any(a <= mid < b for a, b in hotspots)
        segments.append((lo * total, hi * total, scale if hot else 1.0))
    return PiecewiseProfile(segments)


def profile_from_record_lengths(
    lengths: list[int] | np.ndarray, *, cost_exponent: float = 2.0
) -> PiecewiseProfile:
    """Cost profile of a record database with super-linear record costs.

    One segment per record over its byte range (record + 1 separator
    byte).  If processing a record of length L costs ~ L**cost_exponent
    (alignment-style algorithms are quadratic; HMMER's profile scan is
    linear in L but quadratic in hit regions), the *per-byte* cost of a
    record scales as L**(cost_exponent - 1) -- so long records are hot
    regions.  ``cost_exponent=1`` gives a flat profile.
    """
    lengths = np.asarray(lengths, dtype=float)
    if lengths.size == 0 or np.any(lengths <= 0):
        raise SimulationError("need positive record lengths")
    if cost_exponent < 1.0:
        raise SimulationError("cost_exponent must be >= 1")
    sizes = lengths + 1.0  # record + separator byte
    per_byte = np.power(lengths, cost_exponent - 1.0)
    segments = []
    position = 0.0
    for size, cost in zip(sizes, per_byte):
        segments.append((position, position + float(size), max(1e-6, float(cost))))
        position += float(size)
    return PiecewiseProfile(segments)
