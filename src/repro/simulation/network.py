"""Serialized master network link.

The defining communication constraint of the paper's platform model (and of
all single-level-tree DLS work) is that the master sends to **one worker at
a time**: outgoing transfers are serialized on the master's uplink.  The
paper leans on this repeatedly -- it is why communication stays on the
critical path even when the communication/computation ratio ``r`` is large
("communications to workers are serialized ... communication represents a
more significant part of the makespan as the number of workers increases").

:class:`SerializedLink` models that uplink as a FIFO resource on top of the
event engine: requests queue, each occupies the link for an affine duration
(latency + size/bandwidth, optionally noisy), and a completion callback
fires when the payload has fully arrived at the worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError
from .compute import ComputeModel
from .engine import SimulationEngine


@dataclass
class TransferRecord:
    """Completed transfer: who, how much, and when it occupied the link."""

    worker_index: int
    units: float
    start_time: float
    end_time: float
    tag: object = None

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class SerializedLink:
    """FIFO master uplink with affine per-transfer cost.

    ``submit()`` enqueues a transfer; the link serves requests in submission
    order.  ``on_idle`` (if set) is invoked whenever the link becomes free
    with nothing queued -- the master driver uses it to pull the next
    dispatch decision from the scheduling algorithm.
    """

    def __init__(self, engine: SimulationEngine, compute_model: ComputeModel) -> None:
        self._engine = engine
        self._model = compute_model
        self._busy = False
        self._queue: list[tuple[int, float, Callable[[TransferRecord], None], object]] = []
        self._records: list[TransferRecord] = []
        self._busy_time = 0.0
        #: Hook called (with no arguments) when the link drains.
        self.on_idle: Callable[[], None] | None = None

    @property
    def busy(self) -> bool:
        """True while a transfer is in flight."""
        return self._busy

    @property
    def queued(self) -> int:
        """Number of transfers waiting behind the in-flight one."""
        return len(self._queue)

    @property
    def records(self) -> list[TransferRecord]:
        """Completed transfers, in completion order."""
        return self._records

    @property
    def busy_time(self) -> float:
        """Total simulated seconds the link spent transferring."""
        return self._busy_time

    def utilization(self, makespan: float) -> float:
        """Fraction of ``makespan`` the link was busy."""
        if makespan <= 0:
            raise SimulationError("makespan must be positive for utilization")
        return self._busy_time / makespan

    def submit(
        self,
        worker_index: int,
        units: float,
        on_complete: Callable[[TransferRecord], None],
        *,
        tag: object = None,
    ) -> None:
        """Enqueue a transfer of ``units`` load units to ``worker_index``.

        ``on_complete(record)`` fires when the chunk has fully arrived.
        Zero-unit transfers are legal (no-op probe jobs still pay latency).
        """
        if units < 0:
            raise SimulationError(f"cannot transfer negative load ({units})")
        self._queue.append((worker_index, units, on_complete, tag))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self._busy:
            raise SimulationError("link already busy")
        if not self._queue:
            return
        worker_index, units, on_complete, tag = self._queue.pop(0)
        duration = self._model.realized_transfer_time(worker_index, units)
        start = self._engine.now
        self._busy = True
        self._busy_time += duration
        record = TransferRecord(
            worker_index=worker_index,
            units=units,
            start_time=start,
            end_time=start + duration,
            tag=tag,
        )
        self._engine.schedule(duration, self._finish, record, on_complete)

    def _finish(
        self, record: TransferRecord, on_complete: Callable[[TransferRecord], None]
    ) -> None:
        self._busy = False
        self._records.append(record)
        on_complete(record)
        # The completion callback may have submitted more work.
        if not self._busy and self._queue:
            self._start_next()
        if not self._busy and not self._queue and self.on_idle is not None:
            self.on_idle()
