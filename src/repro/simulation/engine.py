"""Discrete-event simulation kernel.

A minimal but strict event-driven engine: a binary heap of timestamped
events, a monotonically advancing clock, and deterministic tie-breaking by
insertion order.  Everything in :mod:`repro.simulation` (network transfers,
chunk computations, probe rounds) is expressed as events scheduled on one
:class:`SimulationEngine`.

The engine deliberately has no notion of processes or channels -- the
master/worker logic in :mod:`repro.simulation.master` composes callbacks
directly, which keeps simulations of hundreds of thousands of chunk events
fast and easy to reason about.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..obs.profile import EngineProfiler

EventCallback = Callable[..., None]


@dataclass(order=True)
class _ScheduledEvent:
    """Heap entry: ordered by (time, sequence number)."""

    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`SimulationEngine.schedule`.

    Supports cancellation; a cancelled event is skipped when popped.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True


class SimulationEngine:
    """Deterministic discrete-event simulation core.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(2.5, fired.append, "late")
    >>> _ = engine.schedule(1.0, fired.append, "early")
    >>> engine.run()
    >>> fired
    ['early', 'late']
    >>> engine.now
    2.5
    """

    def __init__(self, *, profiler: "EngineProfiler | None" = None) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = _ScheduledEvent(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        if self._profiler is not None:
            self._profiler.note_heap_depth(len(self._heap))
        return EventHandle(event)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the event queue drains (or a time / event-count bound).

        Parameters
        ----------
        until:
            Optional simulated-time horizon; events beyond it stay queued
            and the clock is advanced to ``until``.
        max_events:
            Optional safety bound on the number of events to execute;
            exceeding it raises :class:`SimulationError` (a stalled or
            livelocked model is a bug, not a result).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        run_start = perf_counter() if self._profiler is not None else 0.0  # repro: allow[sim-time] -- profiler measures wall events/s, not modeled time
        try:
            while self._heap:
                next_time = self._next_pending_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    return
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; likely livelock"
                    )
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
            if self._profiler is not None:
                self._profiler.note_run(executed, perf_counter() - run_start)  # repro: allow[sim-time] -- profiler measures wall events/s, not modeled time

    def _next_pending_time(self) -> float | None:
        """Time of the next non-cancelled event, or None if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
