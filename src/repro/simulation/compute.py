"""Computation cost and uncertainty models.

The paper's synthetic application draws the computational cost of each unit
of load from a Normal distribution with coefficient of variation ``gamma``
(Section 4.1).  At the chunk granularity the scheduler observes, this
manifests as multiplicative noise on the chunk's computation time; the case
study additionally has *platform* noise from non-dedicated hosts, which the
paper characterizes purely through the measured gamma (20%).

We therefore model the realized compute time of a chunk of ``x`` units on
worker *i* as::

    t = comp_latency_i + (x / speed_i) * xi,     xi ~ TruncNormal(1, gamma)

with the Normal truncated at ``MIN_NOISE_FACTOR`` so times stay positive.
``gamma = 0`` yields fully deterministic times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._util import check_nonnegative
from ..errors import SimulationError
from ..platform.resources import WorkerSpec

#: Lower truncation of the multiplicative noise factor.  A chunk can run at
#: most this much faster than predicted; matches a Normal truncated well
#: below 3 sigma for every gamma used in the paper (<= 20%).
MIN_NOISE_FACTOR = 0.05


@dataclass(frozen=True)
class UncertaintyModel:
    """Multiplicative chunk-compute-time noise with a target CoV.

    Parameters
    ----------
    gamma:
        Coefficient of variation of per-unit computation cost, as defined
        in the paper (0.0 = deterministic; the paper uses 0, 0.10, and
        measures 0.20 in the case study).
    comm_gamma:
        Optional CoV applied to chunk *transfer* times (the paper's testbed
        had a stable network, so this defaults to 0; RUMR's design also
        covers transfer-time uncertainty, which the ablation benches use).
    autocorrelation:
        AR(1) coefficient of the per-worker compute noise across successive
        chunks.  0 gives i.i.d. per-chunk noise (the paper's dedicated-
        platform synthetic experiments); values near 1 model the slowly
        varying background load of *non-dedicated* hosts (the Section 5
        case study), where a temporarily loaded host stays slow for many
        consecutive chunks.  The stationary CoV remains ``gamma``.
    """

    gamma: float = 0.0
    comm_gamma: float = 0.0
    autocorrelation: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative("gamma", self.gamma, SimulationError)
        check_nonnegative("comm_gamma", self.comm_gamma, SimulationError)
        if self.gamma >= 1.0 or self.comm_gamma >= 1.0:
            raise SimulationError("gamma >= 100% is outside the model's validity range")
        if not 0.0 <= self.autocorrelation < 1.0:
            raise SimulationError("autocorrelation must be in [0, 1)")

    def transfer_factor(self, rng: np.random.Generator) -> float:
        """Draw a multiplicative noise factor for a chunk transfer."""
        return self._draw(rng, self.comm_gamma)

    @staticmethod
    def _draw(rng: np.random.Generator, cov: float) -> float:
        if cov <= 0.0:
            return 1.0
        factor = rng.normal(loc=1.0, scale=cov)
        return max(MIN_NOISE_FACTOR, float(factor))


class _WorkerNoise:
    """Per-worker AR(1) compute-noise process with stationary CoV gamma."""

    def __init__(self, model: UncertaintyModel) -> None:
        self._gamma = model.gamma
        self._phi = model.autocorrelation
        # innovation scale keeps the stationary standard deviation at gamma
        self._innovation = self._gamma * math.sqrt(1.0 - self._phi**2)
        self._deviation: float | None = None

    def next_factor(self, rng: np.random.Generator) -> float:
        if self._gamma <= 0.0:
            return 1.0
        if self._phi <= 0.0:
            return max(MIN_NOISE_FACTOR, float(rng.normal(1.0, self._gamma)))
        if self._deviation is None:
            self._deviation = float(rng.normal(0.0, self._gamma))
        else:
            self._deviation = self._phi * self._deviation + float(
                rng.normal(0.0, self._innovation)
            )
        return max(MIN_NOISE_FACTOR, 1.0 + self._deviation)


DETERMINISTIC = UncertaintyModel(gamma=0.0)


class ComputeModel:
    """Realized chunk computation times for every worker of a grid.

    One instance per simulated run; owns the run's RNG stream so repeated
    runs with distinct seeds reproduce the paper's 10-run averaging.
    """

    def __init__(
        self,
        workers: tuple[WorkerSpec, ...] | list[WorkerSpec],
        uncertainty: UncertaintyModel = DETERMINISTIC,
        *,
        seed: int | None = None,
        cost_profile=None,
    ) -> None:
        self._workers = tuple(workers)
        if not self._workers:
            raise SimulationError("ComputeModel needs at least one worker")
        self._uncertainty = uncertainty
        self._rng = np.random.default_rng(seed)
        self._noise = [_WorkerNoise(uncertainty) for _ in self._workers]
        #: optional position-dependent cost profile (see costprofile.py);
        #: applied when the caller supplies the chunk's load offset
        self._cost_profile = cost_profile

    @property
    def uncertainty(self) -> UncertaintyModel:
        return self._uncertainty

    def worker(self, index: int) -> WorkerSpec:
        try:
            return self._workers[index]
        except IndexError as exc:
            raise SimulationError(f"no worker with index {index}") from exc

    def predicted_compute_time(self, index: int, units: float) -> float:
        """Noise-free compute time -- what a perfect predictor would say."""
        return self.worker(index).compute_time(units)

    def realized_compute_time(
        self, index: int, units: float, offset: float | None = None
    ) -> float:
        """Draw the actual compute time of a chunk (latency is not noisy).

        ``offset`` locates the chunk in the load for position-dependent
        cost profiles; None (e.g. probe chunks from a separate file)
        means nominal cost.
        """
        w = self.worker(index)
        check_nonnegative("units", units, SimulationError)
        position_cost = 1.0
        if self._cost_profile is not None and offset is not None and units > 0:
            position_cost = self._cost_profile.mean_cost(offset, units)
        return w.comp_latency + (units * position_cost / w.speed) * self._noise[
            index
        ].next_factor(self._rng)

    def predicted_transfer_time(self, index: int, units: float) -> float:
        """Noise-free master-link occupancy to send a chunk."""
        return self.worker(index).transfer_time(units)

    def realized_transfer_time(self, index: int, units: float) -> float:
        """Draw the actual link occupancy for a chunk transfer."""
        w = self.worker(index)
        check_nonnegative("units", units, SimulationError)
        return w.comm_latency + (units / w.bandwidth) * self._uncertainty.transfer_factor(
            self._rng
        )
