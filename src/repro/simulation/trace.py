"""Execution traces and the "detailed execution report".

The paper repeatedly relies on APST-DV's *detailed execution report* (it is
how the authors diagnosed RUMR's late phase switch).  This module is that
report: a chunk-level trace of every dispatch decision -- when the chunk
occupied the master link, when it started and finished computing, which
scheduling round/phase produced it -- plus derived statistics (makespan,
per-worker utilization, observed per-chunk compute-time CoV, link
utilization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable

from .._util import coefficient_of_variation, format_seconds
from ..errors import SimulationError


@dataclass
class ChunkTrace:
    """Lifecycle of a single chunk of load."""

    chunk_id: int
    worker_index: int
    worker_name: str
    units: float
    offset: float
    round_index: int
    phase: str
    send_start: float = -1.0
    send_end: float = -1.0
    compute_start: float = -1.0
    compute_end: float = -1.0
    predicted_compute: float = -1.0

    @property
    def transfer_time(self) -> float:
        """Seconds on the master link; NaN until the transfer has finished."""
        if self.send_start < 0.0 or self.send_end < 0.0:
            return math.nan
        return self.send_end - self.send_start

    @property
    def compute_time(self) -> float:
        """Seconds computing; NaN until the computation has finished."""
        if self.compute_start < 0.0 or self.compute_end < 0.0:
            return math.nan
        return self.compute_end - self.compute_start

    @property
    def queue_time(self) -> float:
        """Seconds the chunk sat on the worker before computation started.

        NaN while the chunk is still in transfer or not yet started -- a
        difference of the ``-1.0`` "unset" sentinels is meaningless, not
        merely zero.
        """
        if self.send_end < 0.0 or self.compute_start < 0.0:
            return math.nan
        return self.compute_start - self.send_end

    @property
    def completed(self) -> bool:
        return self.compute_end >= 0.0

    def shifted(
        self,
        dt: float,
        *,
        worker_index: int | None = None,
        chunk_id: int | None = None,
    ) -> "ChunkTrace":
        """Copy with all timestamps moved by ``dt``.

        The multi-job service layer simulates each lease segment on its own
        clock starting at zero; assembling a per-job report re-bases the
        segment's chunks onto the job timeline (and remaps sub-grid worker
        indices back to platform indices).
        """
        return replace(
            self,
            chunk_id=self.chunk_id if chunk_id is None else chunk_id,
            worker_index=self.worker_index if worker_index is None else worker_index,
            send_start=self.send_start + dt,
            send_end=self.send_end + dt,
            compute_start=self.compute_start + dt,
            compute_end=self.compute_end + dt,
        )

    def validate(self) -> None:
        """Causality checks; a violation is a simulator bug."""
        if not self.completed:
            raise SimulationError(f"chunk {self.chunk_id} never completed")
        if not (self.send_start <= self.send_end <= self.compute_start <= self.compute_end):
            raise SimulationError(
                f"chunk {self.chunk_id} violates causality: "
                f"send [{self.send_start}, {self.send_end}] "
                f"compute [{self.compute_start}, {self.compute_end}]"
            )


@dataclass
class WorkerSummary:
    """Per-worker aggregate over one run."""

    worker_index: int
    worker_name: str
    chunks: int
    units: float
    busy_time: float
    first_start: float
    last_end: float

    @property
    def utilization(self) -> float:
        """Busy fraction of the span during which the worker was active."""
        span = self.last_end
        return self.busy_time / span if span > 0 else 0.0


@dataclass
class ExecutionReport:
    """Full record of one application run under one scheduling algorithm."""

    algorithm: str
    total_load: float
    makespan: float
    probe_time: float
    chunks: list[ChunkTrace]
    link_busy_time: float
    gamma_configured: float
    seed: int | None = None
    events: list[str] = field(default_factory=list)
    #: Scheduler-specific annotations (e.g. RUMR phase-switch outcome).
    annotations: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Check causality, load conservation, and link exclusivity."""
        if self.makespan <= 0:
            raise SimulationError("non-positive makespan")
        total = 0.0
        for c in self.chunks:
            c.validate()
            total += c.units
        if abs(total - self.total_load) > 1e-6 * max(1.0, self.total_load):
            raise SimulationError(
                f"load not conserved: dispatched {total}, expected {self.total_load}"
            )
        # Transfers must not overlap (serialized master link).
        intervals = sorted((c.send_start, c.send_end) for c in self.chunks)
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            if s2 < e1 - 1e-9:
                raise SimulationError(
                    f"overlapping transfers on serialized link: "
                    f"[{s1}, {e1}] and starting {s2}"
                )

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def num_rounds(self) -> int:
        return 1 + max((c.round_index for c in self.chunks), default=0)

    @property
    def link_utilization(self) -> float:
        return self.link_busy_time / self.makespan if self.makespan > 0 else 0.0

    def observed_gamma(self) -> float:
        """CoV of (actual / predicted) chunk compute times.

        This is the quantity online-RUMR estimates during execution; here it
        is computed post hoc over all completed chunks with a usable
        prediction.
        """
        ratios = [
            c.compute_time / c.predicted_compute
            for c in self.chunks
            if c.predicted_compute > 0 and c.completed
        ]
        return coefficient_of_variation(ratios)

    def completed_by(self, at: float, *, tolerance: float = 1e-9) -> list[ChunkTrace]:
        """Chunks whose computation finished by (relative) time ``at``.

        This is the preemption boundary the service layer uses when a lease
        change interrupts a run mid-flight: finished chunks are retained,
        everything in transfer or still computing is re-dispatched on the
        new lease.
        """
        return [c for c in self.chunks if c.completed and c.compute_end <= at + tolerance]

    def completed_units_by(self, at: float) -> float:
        """Load units whose computation finished by (relative) time ``at``."""
        return sum(c.units for c in self.completed_by(at))

    def worker_summaries(self) -> list[WorkerSummary]:
        """Aggregate chunk traces per worker."""
        by_worker: dict[int, list[ChunkTrace]] = {}
        for c in self.chunks:
            by_worker.setdefault(c.worker_index, []).append(c)
        out = []
        for idx in sorted(by_worker):
            cs = by_worker[idx]
            out.append(
                WorkerSummary(
                    worker_index=idx,
                    worker_name=cs[0].worker_name,
                    chunks=len(cs),
                    units=sum(c.units for c in cs),
                    busy_time=sum(c.compute_time for c in cs),
                    first_start=min(c.compute_start for c in cs),
                    last_end=max(c.compute_end for c in cs),
                )
            )
        return out

    def phase_load(self) -> dict[str, float]:
        """Load units dispatched per scheduling phase."""
        out: dict[str, float] = {}
        for c in self.chunks:
            out[c.phase] = out.get(c.phase, 0.0) + c.units
        return out

    def gantt_rows(self) -> list[tuple[str, float, float, str]]:
        """(worker, start, end, phase) rows for plotting / text Gantt."""
        return [
            (c.worker_name, c.compute_start, c.compute_end, c.phase)
            for c in sorted(self.chunks, key=lambda c: (c.worker_index, c.compute_start))
        ]

    def render(self, *, max_chunks: int = 0) -> str:
        """Human-readable report (the APST-DV 'detailed execution report')."""
        lines = [
            f"=== Execution report: {self.algorithm} ===",
            f"makespan        : {format_seconds(self.makespan)} ({self.makespan:.1f}s)",
            f"probe time      : {format_seconds(self.probe_time)}",
            f"total load      : {self.total_load:.1f} units in {self.num_chunks} chunks, "
            f"{self.num_rounds} round(s)",
            f"link utilization: {self.link_utilization:.1%}",
            f"observed gamma  : {self.observed_gamma():.1%} "
            f"(configured {self.gamma_configured:.1%})",
        ]
        for key, value in sorted(self.annotations.items()):
            lines.append(f"{key:16s}: {value}")
        lines.append("--- per-worker ---")
        for w in self.worker_summaries():
            lines.append(
                f"  {w.worker_name:14s} chunks={w.chunks:3d} units={w.units:10.1f} "
                f"busy={w.busy_time:9.1f}s util={w.utilization:6.1%}"
            )
        if max_chunks:
            lines.append("--- chunks ---")
            for c in self.chunks[:max_chunks]:
                lines.append(
                    f"  #{c.chunk_id:4d} {c.worker_name:14s} {c.units:9.1f}u "
                    f"round={c.round_index:2d} phase={c.phase:10s} "
                    f"send=[{c.send_start:9.1f},{c.send_end:9.1f}] "
                    f"comp=[{c.compute_start:9.1f},{c.compute_end:9.1f}]"
                )
        return "\n".join(lines)


def merge_makespans(reports: Iterable[ExecutionReport]) -> list[float]:
    """Makespans of a batch of runs (helper for the analysis layer)."""
    return [r.makespan for r in reports]
