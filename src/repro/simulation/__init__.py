"""Discrete-event simulation substrate (the substitute for the paper's testbed)."""

from .compute import DETERMINISTIC, ComputeModel, UncertaintyModel
from .costprofile import (
    CostProfile,
    PiecewiseProfile,
    hotspot_profile,
    profile_from_record_lengths,
)
from .engine import EventHandle, SimulationEngine
from .master import SimulatedMaster, SimulationOptions, simulate_run
from .network import SerializedLink, TransferRecord
from .trace import ChunkTrace, ExecutionReport, WorkerSummary

__all__ = [
    "CostProfile",
    "PiecewiseProfile",
    "hotspot_profile",
    "profile_from_record_lengths",
    "ComputeModel",
    "DETERMINISTIC",
    "UncertaintyModel",
    "EventHandle",
    "SimulationEngine",
    "SimulatedMaster",
    "SimulationOptions",
    "simulate_run",
    "SerializedLink",
    "TransferRecord",
    "ChunkTrace",
    "ExecutionReport",
    "WorkerSummary",
]
