"""Wire protocol of the ``repro.net`` subsystem.

One framing rule everywhere: a *frame* is a single JSON object encoded
as UTF-8 on one line, terminated by ``\\n`` (newline-delimited JSON).
The gateway, the client SDK, and the socket workers all speak it; the
gateway additionally answers plain HTTP/1.1 ``POST`` requests carrying
the same JSON body, so ``curl`` works against a running service.

Requests carry a ``verb`` (see :data:`VERBS`) plus verb-specific
fields; responses carry a ``status`` of ``"ok"``, ``"error"``, or
``"retry"``.  ``"retry"`` is the backpressure signal: the gateway's
bounded admission queue is full and the client should back off and
resend (HTTP maps it to 429).  Errors carry a machine-readable
``error_code`` from :data:`ERROR_CODES` and a human ``message``.

Chunk payloads and results ride inside frames as base64 (the
serialize -> submit -> delimited-result flow): a frame is therefore
bounded by :data:`MAX_FRAME_BYTES`, and readers must enforce the bound
so a corrupt peer cannot balloon memory.
"""

from __future__ import annotations

import base64
import json
from typing import BinaryIO

from ..errors import ReproError

#: Version tag sent in every ``ping`` response; bump on breaking change.
PROTOCOL_VERSION = 1

#: Hard cap on one frame (newline-delimited JSON line), bytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: The gateway's request verbs.
VERBS = frozenset(
    {
        "ping",
        "submit",
        "batch",
        "status",
        "stats",
        "cancel",
        "outputs",
        "drain",
        "shutdown",
        "register_worker",
        "telemetry",
        "trace",
        "dlq",
    }
)

#: Machine-readable error codes and the HTTP status each maps to.
ERROR_HTTP_STATUS = {
    "queue_full": 429,     # admission queue full -> back off and retry
    "bad_request": 400,    # malformed frame / missing field / unknown verb
    "not_found": 404,      # unknown job id
    "draining": 503,       # gateway is draining; no new submissions
    "degraded": 503,       # sustained admission-queue saturation (healthz)
    "conflict": 409,       # verb not valid in the job's current state
    "internal": 500,       # unexpected server-side failure
}

ERROR_CODES = frozenset(ERROR_HTTP_STATUS)


class FrameError(ReproError):
    """A wire frame could not be read, parsed, or validated."""


# -- frame I/O over blocking file-like streams ------------------------------

def write_frame(stream: BinaryIO, obj: dict) -> None:
    """Encode ``obj`` as one newline-delimited JSON frame and flush it."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    stream.write(data)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict | None:
    """Read one frame; returns None on clean EOF.

    Raises :class:`FrameError` on oversized or malformed input -- the
    connection is then unusable (framing is lost) and must be closed.
    """
    line = stream.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise FrameError("frame exceeds MAX_FRAME_BYTES; closing connection")
    return parse_frame(line)


def parse_frame(line: bytes | str) -> dict:
    """Parse one frame line into a dict (the only accepted top level)."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


# -- payload encoding -------------------------------------------------------

def encode_payload(data: bytes) -> str:
    """Chunk bytes -> base64 text, safe to embed in a frame."""
    return base64.b64encode(data).decode("ascii")


def decode_payload(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise FrameError(f"bad base64 payload: {exc}") from exc


# -- response constructors --------------------------------------------------

def ok_response(request_id: object = None, **fields) -> dict:
    response = {"status": "ok", **fields}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_response(code: str, message: str, request_id: object = None) -> dict:
    if code not in ERROR_CODES:
        raise FrameError(f"unknown error code {code!r}")
    response = {"status": "error", "error_code": code, "message": message}
    if request_id is not None:
        response["id"] = request_id
    return response


def retry_response(message: str, request_id: object = None, *, after_s: float = 0.05) -> dict:
    """The backpressure reply: queue full, come back in ``after_s``."""
    response = {
        "status": "retry",
        "error_code": "queue_full",
        "message": message,
        "retry_after_s": after_s,
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def http_status_for(response: dict) -> int:
    """HTTP status code for a protocol response dict."""
    if response.get("status") == "ok":
        return 200
    return ERROR_HTTP_STATUS.get(response.get("error_code", "internal"), 500)
