"""Asyncio job-submission gateway: the daemon's network face.

:class:`JobGateway` exposes the APST daemon / multi-job service verbs
(``submit``, ``status``, ``cancel``, ``drain``, ``stats``, ``outputs``,
``dlq``) over TCP.  Two dialects share one port: newline-delimited JSON frames
(the native protocol, one request per line, responses in order), and
plain HTTP/1.1 (``POST`` a request body, or ``GET /stats`` /
``/healthz`` / ``/metrics``) so ``curl`` and load balancers work
unmodified.  The first bytes of a connection select the dialect.

Traffic shaping is explicit:

* **bounded admission queue** -- submissions enter a queue of
  ``config.max_queue`` slots; when it is full the gateway answers
  ``{"status": "retry", "error_code": "queue_full"}`` (HTTP 429) and
  the client SDK backs off and resends.  Accepted work is never lost;
  rejected work was never accepted;
* **request batching** -- a single runner thread drains the queue in
  batches of up to ``config.batch_max`` (lingering
  ``config.batch_window_s`` to let a batch fill) and executes each
  batch in one multi-job service run (simulation backend) or one
  ``run_pending`` sweep (remote socket workers registered via
  ``register_worker``);
* **graceful shutdown** -- idempotent and SIGTERM-safe: new
  submissions are rejected with a clear ``draining`` error, admitted
  jobs are drained, the runner is joined, and any gateway-owned worker
  pool is reaped.  Calling :meth:`shutdown` twice (or racing it with a
  signal) is safe.

Only the runner thread mutates daemon state (submissions, batch
execution); the event loop answers reads (``status``/``stats``) from
GIL-atomic snapshots and routes everything else through the queue, so
the protocol stays responsive while a batch runs.

Observability: ``net.request`` / ``net.request.rejected`` /
``net.batch.executed`` / ``net.worker.registered`` events and the
``repro_net_*`` metric family (request counters per verb/outcome,
admission-queue depth and peak, submit-latency and batch-size
histograms) flow through the daemon's :class:`~repro.obs.Observability`
handle -- the usual no-op when observability is off.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import queue
import signal
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

from ..analysis import lockwatch
from ..apst.daemon import APSTDaemon
from ..errors import ReproError, ServiceError, SpecificationError
from ..obs import (
    NET_BATCH_EXECUTED,
    NET_REQUEST,
    NET_REQUEST_REJECTED,
    NET_WORKER_REGISTERED,
    TelemetryAggregator,
    TraceContext,
    get_logger,
    new_trace_id,
    parse_traceparent,
)
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    VERBS,
    FrameError,
    error_response,
    http_status_for,
    ok_response,
    parse_frame,
    retry_response,
)
from .remote import RemoteExecutionBackend, RemoteWorkerPool, WorkerEndpoint

_log = get_logger("net.gateway")

#: Submit-latency buckets (wall seconds): network admission is fast.
_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

_HTTP_METHODS = (b"GET ", b"POST ", b"PUT ", b"HEAD ", b"DELETE ", b"OPTIONS ")

_HTTP_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class GatewayConfig:
    """Tunables of one gateway instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 picks an ephemeral port (reported via .port)
    #: admission-queue bound; a full queue triggers the retry/429 reply
    max_queue: int = 256
    #: max submissions executed per batch
    batch_max: int = 32
    #: seconds the runner lingers to let a batch fill
    batch_window_s: float = 0.01
    #: suggested client back-off carried in retry replies
    retry_after_s: float = 0.05
    #: worker-lease policy for simulation batches
    service_policy: str = "fair-share"
    #: wall-clock bound on joining the runner at shutdown
    shutdown_timeout_s: float = 60.0
    #: seconds of uninterrupted admission-queue saturation (429ing with
    #: no successful admission) before /healthz reports degraded (503)
    degraded_window_s: float = 5.0
    #: min seconds between store sweeps (lease takeover + cross-daemon
    #: job pickup) on a shared durable store; only runs when the daemon's
    #: store is not the in-process memory backend
    store_sweep_s: float = 0.25


@dataclass
class _Submission:
    spec: str
    algorithm: str | None
    tenant: str
    priority: int
    weight: float
    arrival: float
    #: trace context the daemon-side job runs under (the gateway's
    #: submit span is its parent); None when tracing is off
    traceparent: str | None = None
    future: concurrent.futures.Future = field(
        default_factory=concurrent.futures.Future
    )
    enqueued_at: float = field(default_factory=perf_counter)

    def service_metadata(self) -> dict:
        """Non-default service scheduling fields (empty when plain)."""
        supplied = {}
        if self.tenant != "default":
            supplied["tenant"] = self.tenant
        if self.priority != 0:
            supplied["priority"] = self.priority
        if self.weight != 1.0:
            supplied["weight"] = self.weight
        if self.arrival != 0.0:
            supplied["arrival"] = self.arrival
        return supplied


class JobGateway:
    """Network gateway over one :class:`~repro.apst.daemon.APSTDaemon`.

    Parameters
    ----------
    daemon:
        The daemon whose verbs are exposed.  Its observability handle
        instruments the gateway too.
    config:
        Traffic-shaping knobs; see :class:`GatewayConfig`.
    worker_pool:
        Optional gateway-owned :class:`RemoteWorkerPool`; its endpoints
        are pre-registered and its processes are reaped at shutdown.
    """

    def __init__(
        self,
        daemon: APSTDaemon,
        *,
        config: GatewayConfig | None = None,
        worker_pool: RemoteWorkerPool | None = None,
    ) -> None:
        self._daemon = daemon
        self._config = config or GatewayConfig()
        self._obs = daemon.observability
        from ..service import MultiJobService

        self._service = MultiJobService(
            daemon, policy=self._config.service_policy
        )
        self._pending: "queue.Queue[_Submission]" = queue.Queue(
            maxsize=self._config.max_queue
        )
        self._daemon_lock = lockwatch.create_lock("gateway.daemon")
        self._endpoints: list[WorkerEndpoint] = []
        self._remote_backend: RemoteExecutionBackend | None = None
        self._worker_pool = worker_pool
        self._draining = False
        self._shutdown_lock = lockwatch.create_lock("gateway.shutdown")
        self._shutdown_initiated = False
        self._rejected = 0
        self._batches = 0
        # Telemetry aggregation: arm automatically whenever observability
        # is on (OBS_DISABLED keeps the whole path a no-op).  The handle
        # is shared with the daemon, so the remote backend's host finds
        # the same aggregator through it.
        if self._obs.enabled and self._obs.aggregator is None:
            self._obs.aggregator = TelemetryAggregator()
        # Sustained-saturation tracking for the /healthz degraded signal:
        # set at the first 429, cleared by the next successful admission.
        self._saturated_since: float | None = None
        #: (unix time, depth) samples -- the queue-depth time series
        self._queue_depth_series: deque = deque(maxlen=4096)
        #: monotonic time of the last durable-store sweep
        self._last_sweep_at = 0.0
        self._stop_runner = threading.Event()
        self._runner = threading.Thread(
            target=self._runner_loop, daemon=True, name="apstdv-gateway-runner"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None
        self.host: str | None = None
        self.port: int | None = None
        metrics = self._obs.metrics
        if metrics is not None:
            self._m_requests = lambda verb, outcome: metrics.counter(
                "repro_net_requests_total", "Gateway requests handled",
                labels={"verb": verb, "outcome": outcome},
            ).inc()
            self._m_queue_depth = metrics.gauge(
                "repro_net_queue_depth", "Admission queue occupancy"
            )
            self._m_queue_peak = metrics.gauge(
                "repro_net_queue_depth_peak", "Admission queue high-water mark"
            )
            self._m_latency = metrics.histogram(
                "repro_net_submit_latency_seconds",
                "Wall seconds from admission-queue entry to job id assignment",
                buckets=_LATENCY_BUCKETS,
            )
            self._m_batch = metrics.histogram(
                "repro_net_batch_size", "Submissions executed per batch",
                buckets=_BATCH_BUCKETS,
            )
            self._m_e2e = metrics.histogram(
                "repro_net_job_e2e_seconds",
                "Wall seconds from submit arrival to job outcome",
                buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0),
            )
        else:
            self._m_requests = None
            self._m_queue_depth = None
            self._m_queue_peak = None
            self._m_latency = None
            self._m_batch = None
            self._m_e2e = None
        if worker_pool is not None:
            for endpoint in worker_pool.endpoints:
                self._register_endpoint(endpoint)

    # -- lifecycle -----------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def rejected_submissions(self) -> int:
        """Submissions bounced with the backpressure reply so far."""
        return self._rejected

    @property
    def batches_executed(self) -> int:
        return self._batches

    @property
    def worker_endpoints(self) -> list[WorkerEndpoint]:
        return list(self._endpoints)

    def serve_forever(self, *, install_signal_handlers: bool = True) -> None:
        """Run the gateway on the calling thread until shutdown.

        With ``install_signal_handlers`` (the default), SIGTERM and
        SIGINT trigger the same graceful shutdown as the ``shutdown``
        verb -- reject new work, drain admitted jobs, reap workers.
        """
        asyncio.run(self._amain(install_signal_handlers))

    def start_in_background(self) -> "JobGateway":
        """Start the gateway on a daemon thread; returns once listening."""
        if self._thread is not None:
            raise ServiceError("gateway already started")
        self._thread = threading.Thread(
            target=self._background_main, daemon=True, name="apstdv-gateway"
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise ServiceError("gateway failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(f"gateway failed to start: {self._startup_error}")
        return self

    def _background_main(self) -> None:
        try:
            asyncio.run(self._amain(False))
        except BaseException as exc:  # surfaced by start_in_background
            self._startup_error = exc
            self._started.set()

    def request_shutdown(self) -> None:
        """Initiate graceful shutdown; idempotent, safe from any thread."""
        with self._shutdown_lock:
            if self._shutdown_initiated:
                return
            self._shutdown_initiated = True
        self._draining = True
        self._daemon.stop_accepting()
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:
                pass  # loop closed between the check and the call

    def _signal_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    def shutdown(self) -> None:
        """Graceful blocking shutdown; idempotent (see module docstring)."""
        self.request_shutdown()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=self._config.shutdown_timeout_s + 30.0)

    def join(self, timeout: float | None = None) -> None:
        """Block until a background-started gateway exits."""
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "JobGateway":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    async def _amain(self, install_signal_handlers: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._shutdown_initiated:
            self._stop_event.set()  # shutdown requested before startup
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # platforms/threads without signal support
        server = await asyncio.start_server(
            self._handle_connection,
            host=self._config.host,
            port=self._config.port,
            limit=MAX_FRAME_BYTES,
        )
        self.host, self.port = server.sockets[0].getsockname()[:2]
        self._runner.start()
        self._started.set()
        _log.info("gateway listening on %s:%s", self.host, self.port)
        try:
            await self._stop_event.wait()
        finally:
            # reject-new is already in force (request_shutdown set draining);
            # drain admitted jobs, then stop serving
            self._draining = True
            self._daemon.stop_accepting()
            self._stop_runner.set()
            await self._loop.run_in_executor(None, self._join_runner)
            server.close()
            await server.wait_closed()
            if self._worker_pool is not None:
                await self._loop.run_in_executor(None, self._worker_pool.stop)
            _log.info("gateway shut down cleanly")

    def _join_runner(self) -> None:
        if self._runner.is_alive():
            self._runner.join(timeout=self._config.shutdown_timeout_s)

    # -- the batch runner ----------------------------------------------------
    def _runner_loop(self) -> None:
        while True:
            try:
                first = self._pending.get(timeout=0.05)
            except queue.Empty:
                if self._stop_runner.is_set():
                    return
                self._store_sweep()
                continue
            batch = [first]
            deadline = time.monotonic() + self._config.batch_window_s
            while len(batch) < self._config.batch_max:
                remaining = deadline - time.monotonic()
                try:
                    batch.append(self._pending.get(timeout=max(0.0, remaining)))
                except queue.Empty:
                    break
            try:
                self._execute_batch(batch)
            finally:
                for _ in batch:
                    self._pending.task_done()
                if self._m_queue_depth is not None:
                    self._m_queue_depth.set(self._pending.qsize())
                self._sample_queue_depth()

    def _execute_batch(self, batch: list[_Submission]) -> None:
        start = perf_counter()
        remote = self._remote_active()
        admitted = 0
        for sub in batch:
            try:
                with self._daemon_lock:
                    if remote:
                        # remote batches run straight on the daemon, which
                        # has no tenant/priority/weight/arrival semantics;
                        # refuse rather than silently schedule differently
                        # (also catches remote turning active between
                        # admission and batch execution)
                        supplied = sub.service_metadata()
                        if supplied:
                            raise ServiceError(
                                "remote execution does not support service "
                                f"scheduling metadata {sorted(supplied)}; "
                                "submit with defaults or use the simulation "
                                "backend"
                            )
                        job_id = self._daemon.submit(
                            sub.spec, algorithm=sub.algorithm,
                            traceparent=sub.traceparent,
                        )
                    else:
                        job_id = self._service.submit(
                            sub.spec,
                            algorithm=sub.algorithm,
                            tenant=sub.tenant,
                            priority=sub.priority,
                            weight=sub.weight,
                            arrival=sub.arrival,
                        )
                admitted += 1
                if self._m_latency is not None:
                    self._m_latency.observe(perf_counter() - sub.enqueued_at)
                sub.future.set_result(job_id)
            except Exception as exc:
                sub.future.set_exception(exc)
        if admitted == 0:
            return
        try:
            if remote:
                self._daemon.run_pending(raise_on_error=False)
            else:
                self._service.run()
        except Exception as exc:
            # per-job failures are recorded on the jobs themselves; a
            # batch-level failure must not kill the gateway
            _log.error("batch execution failed: %s", exc)
        self._sync_daemon_telemetry()
        self._batches += 1
        if self._obs.enabled:
            self._obs.emit(
                NET_BATCH_EXECUTED,
                size=len(batch),
                admitted=admitted,
                remote=remote,
                duration_s=perf_counter() - start,
            )
            if self._m_batch is not None:
                self._m_batch.observe(float(admitted))

    def _remote_active(self) -> bool:
        return (
            self._remote_backend is not None
            and len(self._endpoints) >= len(self._daemon.platform.workers)
        )

    def _store_sweep(self) -> None:
        """Durable-store takeover pass (runner thread, between batches).

        On a shared store (anything but the in-process memory backend),
        jobs can appear out-of-band: a peer daemon crashed holding
        leases, or submitted work into this daemon's shard and died
        before running it.  The sweep steals expired leases and runs
        whatever this daemon holds or can claim.  Throttled to one pass
        per ``config.store_sweep_s``.
        """
        if self._daemon.store.backend == "memory":
            return
        now = time.monotonic()
        if now - self._last_sweep_at < self._config.store_sweep_s:
            return
        self._last_sweep_at = now
        try:
            with self._daemon_lock:
                stolen = self._daemon.takeover()
                if not stolen and not self._daemon.has_pending():
                    return
                _log.info(
                    "store sweep: %d leases stolen, running pending work",
                    stolen,
                )
                if self._remote_active():
                    self._daemon.run_pending(raise_on_error=False)
                else:
                    self._service.run()
            self._sync_daemon_telemetry()
        except Exception as exc:
            # the sweep is opportunistic; failures surface on the jobs
            _log.error("store sweep failed: %s", exc)

    # -- telemetry aggregation -----------------------------------------------
    def _sample_queue_depth(self) -> None:
        self._queue_depth_series.append((time.time(), self._pending.qsize()))

    def _sync_daemon_telemetry(self) -> None:
        """Pull the daemon tracer's fresh spans into the trace store."""
        aggregator = self._obs.aggregator
        if aggregator is not None and self._obs.tracer is not None:
            aggregator.sync_tracer(self._obs.tracer, process="daemon")

    def _begin_trace(self, request: dict) -> dict | None:
        """Open the gateway.submit span of a distributed trace.

        Continues the client's trace when the request carries a valid
        ``traceparent``; starts a fresh trace otherwise.  Returns the
        identity the matching :meth:`_end_trace` call records, or None
        when tracing is not armed.
        """
        tracer = self._obs.tracer
        if tracer is None or self._obs.aggregator is None:
            return None
        incoming = parse_traceparent(request.get("traceparent"))
        return {
            "trace_id": incoming.trace_id if incoming else new_trace_id(),
            "span_id": tracer.new_span_id(),
            "parent_span_id": incoming.span_id if incoming else None,
            "start": time.time(),
        }

    def _end_trace(self, trace: dict | None, **args) -> None:
        """Close a submit span: record it and observe end-to-end latency."""
        if trace is None:
            return
        duration = time.time() - trace["start"]
        self._obs.aggregator.record_span(
            {
                "name": "gateway.submit",
                "process": "gateway",
                "category": "gateway",
                "start": trace["start"],
                "duration": duration,
                "trace_id": trace["trace_id"],
                "span_id": trace["span_id"],
                "parent_span_id": trace["parent_span_id"],
                "args": args,
            }
        )
        if self._m_e2e is not None and "error" not in args:
            self._m_e2e.observe(duration)

    def distributed_trace(self) -> dict:
        """The merged cross-process trace store (``GET /trace`` payload)."""
        self._sync_daemon_telemetry()
        aggregator = self._obs.aggregator
        if aggregator is None:
            return {"spans": [], "events": [], "clock_offsets": {},
                    "processes": [], "trace_ids": [],
                    "gateway": {"queue_depth": []}}
        trace = aggregator.to_dict()
        trace["gateway"] = {
            "queue_depth": [[t, depth] for t, depth in self._queue_depth_series]
        }
        return trace

    def export_trace(self, path) -> None:
        """Write the merged distributed trace as a Chrome/Perfetto file."""
        from ..obs import build_chrome_trace, write_chrome_trace

        trace = self.distributed_trace()
        chrome = build_chrome_trace(
            distributed_spans=trace["spans"],
            metadata={
                "clock_offsets": trace["clock_offsets"],
                "processes": trace["processes"],
                "trace_ids": trace["trace_ids"],
            },
        )
        write_chrome_trace(path, chrome)

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if any(first.startswith(m) for m in _HTTP_METHODS):
                await self._handle_http(first, reader, writer)
                return
            line: bytes | None = first
            while True:
                if line is None:
                    line = await reader.readline()
                if not line:
                    return
                response = await self._dispatch_line(line)
                writer.write(
                    json.dumps(response, separators=(",", ":")).encode() + b"\n"
                )
                await writer.drain()
                line = None
        except (ConnectionResetError, BrokenPipeError, ValueError, asyncio.LimitOverrunError):
            return  # peer went away or overran the frame bound
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            request = parse_frame(line)
        except FrameError as exc:
            return error_response("bad_request", str(exc))
        return await self.handle_request(request)

    async def _handle_http(
        self, first: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, _version = first.decode("latin-1").split(None, 2)
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            await writer.drain()
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if method == "GET":
            response = await self._http_get(path.rstrip("/") or "/", writer)
            if response is None:
                return  # already written (e.g. /metrics plain text)
        elif method == "POST":
            if content_length > MAX_FRAME_BYTES:
                response = error_response("bad_request", "body too large")
            else:
                body = await reader.readexactly(content_length)
                response = await self._dispatch_line(body or b"{}")
        else:
            response = error_response("bad_request", f"unsupported method {method}")
        payload = json.dumps(response).encode()
        status = http_status_for(response)
        reason = _HTTP_REASONS.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload
        )
        await writer.drain()

    async def _http_get(self, path: str, writer: asyncio.StreamWriter) -> dict | None:
        if path == "/":
            return await self.handle_request({"verb": "ping"})
        if path == "/healthz":
            return self._healthz_response()
        if path == "/stats":
            return await self.handle_request({"verb": "stats"})
        if path == "/status":
            return await self.handle_request({"verb": "status"})
        if path == "/dlq":
            return await self.handle_request({"verb": "dlq", "action": "list"})
        if path == "/trace":
            return await self.handle_request({"verb": "trace"})
        if path == "/metrics" and self._obs.metrics is not None:
            text = self._obs.metrics.render_prometheus()
            aggregator = self._obs.aggregator
            if aggregator is not None:
                # one scrape covers every process: append the workers'
                # snapshots, each sample labelled with its process name
                text += aggregator.render_remote_prometheus()
            payload = text.encode()
            writer.write(
                f"HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n".encode(
                    "latin-1"
                )
                + payload
            )
            await writer.drain()
            return None
        return error_response("not_found", f"no route for GET {path}")

    # -- verb dispatch -------------------------------------------------------
    async def handle_request(self, request: dict) -> dict:
        """Answer one protocol request dict (shared by both dialects)."""
        request_id = request.get("id")
        verb = request.get("verb")
        if verb not in VERBS:
            self._count(str(verb), "bad_request")
            return error_response(
                "bad_request",
                f"unknown verb {verb!r}; expected one of {sorted(VERBS)}",
                request_id,
            )
        try:
            handler = getattr(self, f"_verb_{verb}")
            response = await handler(request, request_id)
            self._count(verb, response.get("status", "ok"))
            return response
        except (SpecificationError, ServiceError) as exc:
            self._count(verb, "error")
            missing = "no job with id" in str(exc) or "no DLQ entry with id" in str(exc)
            code = "not_found" if missing else "conflict"
            return error_response(code, str(exc), request_id)
        except ReproError as exc:
            self._count(verb, "error")
            return error_response("bad_request", str(exc), request_id)
        except Exception as exc:  # pragma: no cover - defensive
            _log.exception("gateway internal error on %s", verb)
            self._count(verb, "internal")
            return error_response("internal", f"{type(exc).__name__}: {exc}", request_id)

    def _count(self, verb: str, outcome: str) -> None:
        if self._obs.enabled:
            self._obs.emit(NET_REQUEST, verb=verb, outcome=outcome)
            if self._m_requests is not None:
                self._m_requests(verb, outcome)

    async def _verb_ping(self, request: dict, request_id) -> dict:
        return ok_response(
            request_id,
            version=PROTOCOL_VERSION,
            draining=self._draining,
            workers=len(self._endpoints),
        )

    # -- health (sustained-saturation detection) ------------------------------
    def _note_queue_full(self) -> None:
        self._rejected += 1
        if self._saturated_since is None:
            self._saturated_since = time.monotonic()

    def _note_admitted(self) -> None:
        self._saturated_since = None

    def _saturation_seconds(self) -> float:
        """How long the queue has been continuously bouncing submissions."""
        if self._saturated_since is None:
            return 0.0
        return time.monotonic() - self._saturated_since

    def _healthz_response(self) -> dict:
        """Ping payload, or the degraded (503) reply under sustained 429s.

        A momentarily full queue is healthy backpressure; a queue that
        has rejected every submission for longer than
        ``config.degraded_window_s`` means this gateway is choking and
        load balancers should route elsewhere.
        """
        saturated_for = self._saturation_seconds()
        if saturated_for > self._config.degraded_window_s:
            return error_response(
                "degraded",
                f"admission queue saturated for {saturated_for:.1f}s "
                f"(window: {self._config.degraded_window_s:.1f}s, "
                f"{self._rejected} rejections)",
            )
        counts = self._daemon.store.counts()
        return ok_response(
            None,
            version=PROTOCOL_VERSION,
            draining=self._draining,
            workers=len(self._endpoints),
            store=self._daemon.store.backend,
            shard_index=self._daemon.shard_index,
            shard_count=self._daemon.shard_count,
            pending=counts["queued"],
            running=counts["running"],
            parked=len(self._daemon.dlq),
        )

    async def _verb_submit(self, request: dict, request_id) -> dict:
        if self._draining:
            return error_response(
                "draining", "gateway is draining; new submissions are not accepted",
                request_id,
            )
        spec = request.get("spec")
        if not spec or not isinstance(spec, str):
            return error_response(
                "bad_request", "submit requires a non-empty 'spec' (task XML)",
                request_id,
            )
        try:
            submission = _Submission(
                spec=spec,
                algorithm=request.get("algorithm"),
                tenant=str(request.get("tenant", "default")),
                priority=int(request.get("priority", 0)),
                weight=float(request.get("weight", 1.0)),
                arrival=float(request.get("arrival", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            return error_response(
                "bad_request", f"invalid submit field: {exc}", request_id
            )
        supplied = submission.service_metadata()
        if supplied and self._remote_active():
            return error_response(
                "conflict",
                "remote execution is active and does not support service "
                f"scheduling metadata {sorted(supplied)}; submit with "
                "defaults or deregister the workers",
                request_id,
            )
        trace = self._begin_trace(request)
        if trace is not None:
            submission.traceparent = TraceContext(
                trace["trace_id"], trace["span_id"]
            ).to_traceparent()
        try:
            self._pending.put_nowait(submission)
        except queue.Full:
            self._note_queue_full()
            if self._obs.enabled:
                self._obs.emit(
                    NET_REQUEST_REJECTED,
                    verb="submit",
                    queue_depth=self._pending.qsize(),
                )
            return retry_response(
                f"admission queue full ({self._config.max_queue} slots)",
                request_id,
                after_s=self._config.retry_after_s,
            )
        self._note_admitted()
        if self._m_queue_depth is not None:
            depth = self._pending.qsize()
            self._m_queue_depth.set(depth)
            self._m_queue_peak.max(depth)
        self._sample_queue_depth()
        try:
            job_id = await asyncio.wrap_future(submission.future)
        except (SpecificationError, ServiceError) as exc:
            self._end_trace(trace, error=str(exc))
            return error_response("bad_request", str(exc), request_id)
        self._end_trace(trace, job_id=job_id)
        return ok_response(request_id, job_id=job_id)

    async def _verb_batch(self, request: dict, request_id) -> dict:
        requests = request.get("requests")
        if not isinstance(requests, list) or not requests:
            return error_response(
                "bad_request", "batch requires a non-empty 'requests' list", request_id
            )
        results = []
        for i, sub_request in enumerate(requests):
            if not isinstance(sub_request, dict):
                results.append(error_response("bad_request", "request must be an object"))
                continue
            sub_request.setdefault("verb", "submit")
            results.append(await self.handle_request(sub_request))
        ok = sum(1 for r in results if r.get("status") == "ok")
        return ok_response(request_id, results=results, accepted=ok)

    @staticmethod
    def _parse_job_id(value) -> int:
        """Coerce a wire job_id; non-numeric input is the client's error.

        Raises the base :class:`ReproError`, which ``handle_request``
        maps to ``bad_request`` (400) -- not ``internal`` (500).
        """
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ReproError(f"invalid job_id {value!r}") from None

    async def _verb_status(self, request: dict, request_id) -> dict:
        job_id = request.get("job_id")
        if job_id is not None:
            job_id = self._parse_job_id(job_id)
            jobs = [self._daemon.job(job_id)]
        else:
            jobs = self._daemon.jobs()
        return ok_response(request_id, jobs=[self._job_dict(j) for j in jobs])

    @staticmethod
    def _job_dict(job) -> dict:
        info = {
            "job_id": job.job_id,
            "state": job.state.value,
            "algorithm": job.algorithm,
            "executable": job.task.executable,
        }
        if job.report is not None:
            info["makespan"] = job.report.makespan
            info["chunks"] = job.report.num_chunks
        elif job.makespan is not None:
            # terminal summary hydrated from the durable store: the full
            # ExecutionReport lives in whichever daemon ran the job
            info["makespan"] = job.makespan
            if job.chunks is not None:
                info["chunks"] = job.chunks
        if job.error:
            info["error"] = job.error
        if job.warnings:
            info["warnings"] = list(job.warnings)
        return info

    async def _verb_stats(self, request: dict, request_id) -> dict:
        stats = self._daemon.stats()
        stats.update(
            queue_depth=self._pending.qsize(),
            queue_capacity=self._config.max_queue,
            rejected=self._rejected,
            batches=self._batches,
            workers=len(self._endpoints),
            remote_active=self._remote_active(),
            store=self._daemon.store.backend,
            shard_index=self._daemon.shard_index,
            shard_count=self._daemon.shard_count,
            parked=len(self._daemon.dlq),
        )
        return ok_response(request_id, stats=stats)

    async def _verb_cancel(self, request: dict, request_id) -> dict:
        job_id = request.get("job_id")
        if job_id is None:
            return error_response("bad_request", "cancel requires 'job_id'", request_id)
        job_id = self._parse_job_id(job_id)
        with self._daemon_lock:
            job = self._daemon.cancel(job_id)
        return ok_response(request_id, job_id=job.job_id, state=job.state.value)

    async def _verb_outputs(self, request: dict, request_id) -> dict:
        job_id = request.get("job_id")
        if job_id is None:
            return error_response("bad_request", "outputs requires 'job_id'", request_id)
        job = self._daemon.job(self._parse_job_id(job_id))
        if job.state.value != "done":
            return error_response(
                "conflict", f"job {job_id} is {job.state.value}, not done", request_id
            )
        return ok_response(request_id, outputs=[str(p) for p in job.outputs])

    async def _verb_drain(self, request: dict, request_id) -> dict:
        """Stop accepting, run everything admitted, report final stats."""
        self._draining = True
        self._daemon.stop_accepting()
        while self._pending.unfinished_tasks > 0:
            await asyncio.sleep(0.01)
        response = await self._verb_stats(request, request_id)
        response["drained"] = True
        return response

    async def _verb_shutdown(self, request: dict, request_id) -> dict:
        # respond first; the loop tears down after the reply is written
        assert self._loop is not None
        self._loop.call_soon(self.request_shutdown)
        return ok_response(request_id, shutting_down=True)

    async def _verb_telemetry(self, request: dict, request_id) -> dict:
        """Accept a pushed telemetry batch from a worker or sidecar process."""
        batch = request.get("batch")
        if not isinstance(batch, dict):
            return error_response(
                "bad_request", "telemetry requires a 'batch' object", request_id
            )
        aggregator = self._obs.aggregator
        if aggregator is None:
            # telemetry is best-effort: accept and drop when obs is dark
            return ok_response(request_id, ingested=False)
        aggregator.ingest(batch, process=request.get("process"))
        return ok_response(request_id, ingested=True)

    async def _verb_trace(self, request: dict, request_id) -> dict:
        return ok_response(request_id, trace=self.distributed_trace())

    async def _verb_dlq(self, request: dict, request_id) -> dict:
        """Dead-letter queue verbs: ``list`` / ``replay`` / ``purge``.

        The gateway fronts the daemon's DLQ (shared with the service
        layer): ``list`` snapshots the parked entries, ``purge`` drops
        them, and ``replay`` resubmits one entry's task and runs it to
        an outcome before answering, so the reply carries the replayed
        job's final state.
        """
        action = request.get("action", "list")
        if action == "list":
            return ok_response(request_id, entries=self._daemon.dlq.to_dicts())
        if action == "purge":
            with self._daemon_lock:
                purged = self._daemon.dlq_purge()
            return ok_response(request_id, purged=purged)
        if action == "replay":
            entry_id = request.get("entry_id")
            if entry_id is None:
                return error_response(
                    "bad_request", "dlq replay requires 'entry_id'", request_id
                )
            try:
                entry_id = int(entry_id)
            except (TypeError, ValueError):
                return error_response(
                    "bad_request", f"invalid entry_id {entry_id!r}", request_id
                )
            assert self._loop is not None
            job_id = await self._loop.run_in_executor(
                None, self._replay_entry, entry_id
            )
            job = self._daemon.job(job_id)
            response = ok_response(
                request_id, job_id=job_id, state=job.state.value
            )
            if job.error:
                response["error"] = job.error
            return response
        return error_response(
            "bad_request",
            f"unknown dlq action {action!r}; expected list, replay, or purge",
            request_id,
        )

    def _replay_entry(self, entry_id: int) -> int:
        """Resubmit a parked entry and run it (runner-thread semantics)."""
        with self._daemon_lock:
            job_id = self._daemon.dlq_replay(entry_id)
            self._daemon.run_pending(raise_on_error=False)
        return job_id

    async def _verb_register_worker(self, request: dict, request_id) -> dict:
        host = request.get("host")
        port = request.get("port")
        if not host or port is None:
            return error_response(
                "bad_request", "register_worker requires 'host' and 'port'", request_id
            )
        endpoint = WorkerEndpoint(
            name=str(request.get("name") or f"worker-{host}-{port}"),
            host=str(host),
            port=int(port),
        )
        assert self._loop is not None
        reachable = await self._loop.run_in_executor(
            None, self._probe_endpoint, endpoint
        )
        if not reachable:
            return error_response(
                "bad_request",
                f"cannot reach worker at {endpoint.host}:{endpoint.port}",
                request_id,
            )
        self._register_endpoint(endpoint)
        return ok_response(
            request_id,
            registered=len(self._endpoints),
            remote_active=self._remote_active(),
        )

    @staticmethod
    def _probe_endpoint(endpoint: WorkerEndpoint) -> bool:
        try:
            with socket.create_connection(endpoint.address, timeout=5.0) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"cmd": "ping"}\n')
                stream.flush()
                reply = stream.readline()
                return bool(reply) and json.loads(reply).get("status") == "ok"
        except (OSError, ValueError):
            return False

    def _register_endpoint(self, endpoint: WorkerEndpoint) -> None:
        self._endpoints.append(endpoint)
        if self._obs.enabled:
            self._obs.emit(
                NET_WORKER_REGISTERED,
                worker=endpoint.name,
                host=endpoint.host,
                port=endpoint.port,
                total=len(self._endpoints),
            )
        slots = len(self._daemon.platform.workers)
        if len(self._endpoints) >= slots:
            # newest registrations win: when a worker crashes and its
            # replacement registers, the backend must map grid slots
            # onto the most recent endpoints, not resurrect dead ones
            # (this is what makes a DLQ replay after re-registration
            # land on healthy workers)
            active = self._endpoints[-slots:]
            workdir = self._daemon.config.base_dir / "gateway_remote"
            self._remote_backend = RemoteExecutionBackend(
                active,
                workdir,
                observability=self._obs if self._obs.enabled else None,
            )
            self._daemon.set_backend(self._remote_backend)
            _log.info(
                "remote execution active: %d workers for %d grid slots",
                len(active), slots,
            )
