"""``repro.net``: the network surface of the APST-DV reproduction.

The paper's whole premise is scheduling divisible loads on *grid*
platforms -- many administrative domains, real wires, real failures.
Until this package existed the reproduction was a library: the daemon,
the multi-job service, and every execution backend lived in one
process.  ``repro.net`` is the step from library to service:

* :mod:`repro.net.protocol` -- one wire format (newline-delimited JSON
  frames, with an HTTP/1.1 adapter) shared by every component;
* :mod:`repro.net.gateway` -- an asyncio job-submission gateway
  exposing the daemon/service verbs (submit, status, cancel, drain,
  stats, outputs) over TCP and HTTP, with a bounded admission queue,
  request batching, and backpressure;
* :mod:`repro.net.client` -- a synchronous client SDK with connection
  reuse, timeouts, and retry-with-backoff (the ``apst-dv submit`` CLI
  verb is a thin wrapper over it);
* :mod:`repro.net.worker` -- a socket worker process serving the
  serialize -> ship -> delimited-result chunk protocol;
* :mod:`repro.net.remote` -- :class:`RemoteExecutionBackend`, a
  :class:`~repro.dispatch.protocols.ComputeHost` substrate that ships
  chunks to those workers over sockets, with reconnect-and-retransmit
  failure handling.
"""

from __future__ import annotations

from .client import ClientStats, GatewayClient, GatewayError
from .gateway import GatewayConfig, JobGateway
from .protocol import (
    ERROR_HTTP_STATUS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    VERBS,
    FrameError,
    error_response,
    ok_response,
    read_frame,
    retry_response,
    write_frame,
)
from .remote import RemoteExecutionBackend, RemoteWorkerPool, WorkerEndpoint

__all__ = [
    "ClientStats",
    "ERROR_HTTP_STATUS",
    "FrameError",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "JobGateway",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RemoteExecutionBackend",
    "RemoteWorkerPool",
    "VERBS",
    "WorkerEndpoint",
    "error_response",
    "ok_response",
    "read_frame",
    "retry_response",
    "write_frame",
]
