"""Socket worker: the remote end of :class:`repro.net.remote`.

Launched as::

    python -m repro.net.worker APP_SPEC WORKDIR [--host H] [--port P]
                               [--register GATEWAY_HOST:PORT] [--name N]
                               [--drop-after N] [--drop-forever]

The worker listens on a TCP port and serves newline-delimited JSON
frames (see :mod:`repro.net.protocol`) -- the Groundhog-style
serialize -> ship -> delimited-result flow, one request per frame:

request  ``{"cmd": "process", "chunk_id": 7, "data_b64": "...",
            "units": 12.0, "min_wall_time": 0.05}``
reply    ``{"chunk_id": 7, "status": "ok", "result_b64": "...",
            "wall_time": 0.0512}``

``min_wall_time`` (wall seconds) pads real processing up to the modeled
compute cost, exactly like the pipe-driven process backend, so reply
arrival times are meaningful to the scheduler.  ``{"cmd": "ping"}``
answers liveness probes; ``{"cmd": "shutdown"}`` exits cleanly.  A bad
chunk is reported as ``{"status": "error", ...}`` and the worker keeps
serving -- one poisoned chunk must not take the node down.

On startup the worker prints one JSON line to stdout --
``{"status": "ready", "host": ..., "port": ...}`` -- so launchers can
discover the ephemeral port; with ``--register`` it also announces
itself to a gateway's ``register_worker`` verb.  The master owns the
single active connection; when it drops, the worker loops back to
``accept`` so a reconnecting master (retransmitting a failed chunk)
finds it again.

``--drop-after N`` is the failure-injection hook: after serving N
``process`` requests the worker severs the connection *without
replying*, simulating a socket killed mid-chunk.  It keeps listening,
so the master's reconnect + retransmit path is exercised end to end.
``--drop-forever`` is the permanent-crash variant: *every* ``process``
request severs the connection and the hook never disarms, so retries
can never succeed against this worker -- the master's escalation /
quarantine / dead-letter path is what gets exercised.  Pings still
answer, so the worker looks alive to liveness probes (the nastiest
kind of failure).

Telemetry: every reply carries ``recv_unix`` / ``send_unix`` (the
NTP-style timestamps the master's clock-offset estimator needs), and
``process`` replies piggyback a bounded telemetry batch -- the worker's
``chunk.process`` spans (causally linked via the request's
``traceparent``), buffered events, and a metrics snapshot -- flushed on
every chunk completion so a crash loses at most one chunk's telemetry.
``--no-telemetry`` turns all of it off.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import sys
import threading
import time

from ..execution.appspec import load_app
from ..obs import MetricsRegistry, TelemetryBuffer, Tracer, parse_traceparent
from .protocol import decode_payload, encode_payload, parse_frame


class SocketWorker:
    """One worker node: an app processor behind a TCP accept loop."""

    def __init__(
        self,
        app_spec: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drop_after: int | None = None,
        drop_forever: bool = False,
        name: str | None = None,
        telemetry: bool = True,
    ) -> None:
        self._app = load_app(app_spec)
        self._drop_after = drop_after
        self._drop_forever = drop_forever
        self._processed = 0
        self._shutdown = False
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.5)
        self.host, self.port = self._listener.getsockname()[:2]
        self.name = name or f"worker-{self.port}"
        if telemetry:
            self._tracer = Tracer()
            self._metrics = MetricsRegistry()
            self._m_chunks = self._metrics.counter(
                "repro_worker_chunks_total", "Chunks processed by this worker"
            )
            self._m_compute = self._metrics.histogram(
                "repro_worker_compute_seconds",
                "Wall seconds per chunk on this worker (incl. model padding)",
                buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0),
            )
            self._buffer = TelemetryBuffer(
                self.name, tracer=self._tracer, metrics=self._metrics
            )
        else:
            self._tracer = None
            self._metrics = None
            self._m_chunks = None
            self._m_compute = None
            self._buffer = None

    def close(self) -> None:
        self._shutdown = True
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self) -> int:
        """Accept one master connection at a time until shutdown."""
        try:
            while not self._shutdown:
                try:
                    conn, _addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with conn:
                    self._serve_connection(conn)
        finally:
            self.close()
        return 0

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            for line in stream:
                recv_unix = time.time()
                try:
                    request = parse_frame(line)
                except Exception as exc:
                    self._reply(stream, {"status": "error",
                                         "message": f"bad request: {exc}"},
                                recv_unix)
                    continue
                cmd = request.get("cmd")
                if cmd == "ping":
                    self._reply(stream, {"status": "ok", "cmd": "ping",
                                         "processed": self._processed},
                                recv_unix)
                    continue
                if cmd == "telemetry":
                    # explicit drain: whatever is buffered, shipped now
                    self._reply(stream, {"status": "ok", "cmd": "telemetry"},
                                recv_unix, flush_telemetry=True)
                    continue
                if cmd == "shutdown":
                    self._reply(stream, {"status": "bye"}, recv_unix,
                                flush_telemetry=True)
                    self._shutdown = True
                    return
                if cmd != "process":
                    self._reply(stream, {"status": "error",
                                         "message": f"unknown cmd {cmd!r}"},
                                recv_unix)
                    continue
                self._processed += 1
                if self._drop_forever:
                    # permanent crash injection: sever on every process
                    # request, never disarm -- retries cannot succeed here
                    return
                if self._drop_after is not None and self._processed > self._drop_after:
                    # failure injection: sever the link mid-chunk, no reply;
                    # disarm so the retransmitted chunk succeeds
                    self._drop_after = None
                    return
                self._reply(stream, self._process(request), recv_unix,
                            flush_telemetry=True)
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # master went away; back to accept()

    def _process(self, request: dict) -> dict:
        chunk_id = request.get("chunk_id", -1)
        tracer = self._tracer
        context = (
            parse_traceparent(request.get("traceparent"))
            if tracer is not None
            else None
        )
        if tracer is not None:
            tracer.set_context(context)
        try:
            data = decode_payload(request.get("data_b64", ""))
            start = time.perf_counter()
            if tracer is not None:
                span = tracer.start_span(
                    "chunk.process", category="compute",
                    chunk_id=chunk_id, units=request.get("units"),
                )
            result = self._app.process(data, units=request.get("units"))
            pad = float(request.get("min_wall_time", 0.0)) - (
                time.perf_counter() - start
            )
            if pad > 0:
                time.sleep(pad)
            wall = time.perf_counter() - start
            if tracer is not None:
                tracer.finish(span, wall_time=wall)
            if self._m_chunks is not None:
                self._m_chunks.inc()
                self._m_compute.observe(wall)
            return {
                "chunk_id": chunk_id,
                "status": "ok",
                "result_b64": encode_payload(result),
                "wall_time": wall,
            }
        except Exception as exc:
            return {
                "chunk_id": chunk_id,
                "status": "error",
                "message": f"{type(exc).__name__}: {exc}",
            }
        finally:
            if tracer is not None:
                tracer.set_context(None)

    def _reply(
        self, stream, obj: dict, recv_unix: float, *, flush_telemetry: bool = False
    ) -> None:
        if flush_telemetry and self._buffer is not None:
            batch = self._buffer.drain()
            if batch is not None:
                obj["telemetry"] = batch
        # NTP-style timestamps for the master's clock-offset estimator:
        # when we received the request and when this reply leaves
        obj["recv_unix"] = recv_unix
        obj["send_unix"] = time.time()
        stream.write(json.dumps(obj).encode("utf-8") + b"\n")
        stream.flush()


def _register_with_gateway(gateway: str, name: str, host: str, port: int) -> None:
    from .client import GatewayClient

    gw_host, _, gw_port = gateway.rpartition(":")
    with GatewayClient(gw_host or "127.0.0.1", int(gw_port)) as client:
        client.register_worker(name=name, host=host, port=port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.net.worker", description="APST-DV socket worker"
    )
    parser.add_argument("app_spec", help="application spec (module:Class|{json kwargs})")
    parser.add_argument("workdir", help="scratch directory (reserved for file payloads)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    parser.add_argument("--name", default=None, help="worker name for registration")
    parser.add_argument("--register", default=None, metavar="HOST:PORT",
                        help="announce this worker to a gateway")
    parser.add_argument("--drop-after", type=int, default=None,
                        help="failure injection: sever the connection without "
                             "replying after N processed chunks")
    parser.add_argument("--drop-forever", action="store_true",
                        help="failure injection: sever on every process "
                             "request and never disarm (permanent crash)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="disable span/metric collection and reply piggybacking")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    try:
        worker = SocketWorker(
            args.app_spec, host=args.host, port=args.port,
            drop_after=args.drop_after, drop_forever=args.drop_forever,
            name=args.name,
            telemetry=not args.no_telemetry,
        )
    except Exception as exc:
        print(json.dumps({"status": "fatal", "message": str(exc)}), flush=True)  # repro: allow[bare-print] -- stdout announce line IS the wire protocol
        return 1
    signal.signal(signal.SIGTERM, lambda *_: worker.close())
    print(  # repro: allow[bare-print] -- stdout announce line IS the wire protocol
        json.dumps({"status": "ready", "host": worker.host, "port": worker.port}),
        flush=True,
    )
    if args.register:
        # register from a side thread: the gateway's liveness probe pings
        # this worker before acknowledging, so the accept loop must already
        # be serving when the register_worker reply comes back
        name = worker.name

        def _register() -> None:
            try:
                _register_with_gateway(args.register, name, worker.host, worker.port)
            except Exception as exc:
                print(json.dumps({"status": "fatal",  # repro: allow[bare-print] -- stdout announce line IS the wire protocol
                                  "message": f"registration failed: {exc}"}),
                      flush=True)
                worker.close()

        threading.Thread(target=_register, daemon=True,
                         name="apstdv-worker-register").start()
    return worker.serve_forever()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
