"""Remote execution backend: chunks shipped to socket workers.

This is the fourth execution substrate of the unified dispatch core --
and the first where the worker really is a separate endpoint reached
over a network socket, which is what the paper means by scheduling on
*grid* platforms.  The scheduling loop is still the shared
:class:`~repro.dispatch.core.DispatchCore`; this module contributes:

* :class:`_RemoteTransport` -- the master thread extracts the chunk
  payload, holds the serialized link for the modeled transfer duration,
  and hands the bytes to the compute host;
* :class:`_RemoteHost` -- a :class:`~repro.dispatch.protocols.ComputeHost`
  holding one TCP connection per grid worker to a
  :mod:`repro.net.worker` process: chunk bytes go out base64-framed,
  delimited results come back over the same socket (the Groundhog
  serialize -> submit -> delimited-result flow), and reader threads
  stream completions to the master.  A dropped connection fails the
  in-flight chunks (so the core's :class:`RetryPolicy` can retransmit)
  and the next send reconnects;
* :class:`RemoteWorkerPool` -- spawns ``python -m repro.net.worker``
  processes on loopback, tracks every handle from the moment ``Popen``
  returns, and reaps them all on ``stop()`` -- idempotent, safe on
  every error path, no leaked children.

Worker endpoints map 1:1 onto grid workers: each worker process owns
one master connection at a time, so the backend refuses a grid larger
than its endpoint list rather than silently multiplexing.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..apst.division import ChunkExtent, DivisionMethod
from ..apst.xmlspec import TaskSpec
from ..dispatch.core import DispatchCore, DispatchOptions
from ..dispatch.protocols import DispatchSubstrate
from ..errors import ExecutionError
from ..obs import NET_WORKER_LOST, OBS_DISABLED, Observability
from ..platform.resources import Grid
from ..simulation.trace import ChunkTrace, ExecutionReport
from ..execution.local import ScaledWallClock, payload_for
from .protocol import decode_payload, encode_payload, parse_frame


@dataclass(frozen=True)
class WorkerEndpoint:
    """Where one socket worker listens."""

    name: str
    host: str
    port: int

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


class RemoteWorkerPool:
    """Launch and reap local :mod:`repro.net.worker` processes.

    The pool is how tests, benchmarks, and ``apst-dv serve --workers N``
    get real socket workers without a cluster: each worker is a separate
    OS process listening on an ephemeral loopback port.  ``stop()`` is
    idempotent and reaps every spawned process (terminate, then kill),
    including partially spawned fleets when startup fails midway.
    """

    STARTUP_TIMEOUT_S = 30.0

    def __init__(self) -> None:
        self._processes: list[subprocess.Popen] = []
        self.endpoints: list[WorkerEndpoint] = []
        self._stopped = False

    @property
    def processes(self) -> list[subprocess.Popen]:
        """Every child spawned by this pool (for leak checks)."""
        return list(self._processes)

    def spawn(
        self,
        count: int,
        app_spec: str,
        workdir: str | Path,
        *,
        drop_after: int | None = None,
        drop_forever: bool = False,
        name_prefix: str = "netw",
    ) -> list[WorkerEndpoint]:
        """Start ``count`` workers; returns their endpoints in order."""
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        self._stopped = False
        # the child must import repro however the parent did (installed,
        # PYTHONPATH, or sys.path manipulation): prepend our package root
        env = os.environ.copy()
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
        try:
            for i in range(count):
                args = [
                    sys.executable, "-m", "repro.net.worker",
                    app_spec, str(workdir / f"{name_prefix}{i}"),
                    "--host", "127.0.0.1", "--port", "0",
                    "--name", f"{name_prefix}{i}",
                ]
                if drop_after is not None:
                    args += ["--drop-after", str(drop_after)]
                if drop_forever:
                    args += ["--drop-forever"]
                process = subprocess.Popen(
                    args,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    bufsize=1,
                    env=env,
                )
                # track before anything can fail, so stop() reaps it
                self._processes.append(process)
                endpoint = self._await_ready(process, f"{name_prefix}{i}")
                self.endpoints.append(endpoint)
        except Exception:
            self.stop()
            raise
        return list(self.endpoints)

    def _await_ready(self, process: subprocess.Popen, name: str) -> WorkerEndpoint:
        assert process.stdout is not None
        # readline() has no timeout of its own: do it on a daemon thread
        # and join with the startup budget, so a child that hangs before
        # printing its ready line cannot hang spawn() forever
        ready: list[str] = []
        reader = threading.Thread(
            target=lambda: ready.append(process.stdout.readline()),
            daemon=True,
            name=f"apstdv-net-await-{name}",
        )
        reader.start()
        reader.join(timeout=self.STARTUP_TIMEOUT_S)
        if reader.is_alive() or not ready or not ready[0]:
            if process.poll() is None:  # hung: kill so stderr.read() returns
                process.kill()
                process.wait()
            stderr = process.stderr.read() if process.stderr else ""
            raise ExecutionError(
                f"net worker {name} failed to start within "
                f"{self.STARTUP_TIMEOUT_S:.0f}s: {stderr}"
            )
        line = ready[0]
        announce = json.loads(line)
        if announce.get("status") != "ready":
            raise ExecutionError(
                f"net worker {name} reported {announce.get('status')!r} at startup: "
                f"{announce.get('message', '')}"
            )
        return WorkerEndpoint(name=name, host=announce["host"], port=int(announce["port"]))

    def stop(self) -> None:
        """Terminate and reap every worker; safe to call repeatedly."""
        if self._stopped:
            return
        self._stopped = True
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        self.endpoints.clear()

    def __enter__(self) -> "RemoteWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class _Conn:
    endpoint: WorkerEndpoint
    sock: socket.socket | None = None
    stream: object = None
    reader: threading.Thread | None = None
    generation: int = 0


class _RemoteHost:
    """One TCP connection per grid worker; completions stream back."""

    time_advances_when_idle = True

    #: seconds of wall clock to wait on worker replies before giving up
    DRAIN_TIMEOUT_S = 120.0
    CONNECT_TIMEOUT_S = 10.0

    def __init__(
        self,
        grid: Grid,
        endpoints: list[WorkerEndpoint],
        workdir: Path,
        clock: ScaledWallClock,
        scale: float,
        obs: Observability,
    ) -> None:
        if len(endpoints) < len(grid.workers):
            raise ExecutionError(
                f"remote backend needs one endpoint per grid worker: "
                f"{len(grid.workers)} workers, {len(endpoints)} endpoints"
            )
        self._grid = grid
        self._workdir = workdir
        self._clock = clock
        self._scale = scale
        self._obs = obs
        self._conns = [_Conn(endpoint=endpoints[i]) for i in range(len(grid.workers))]
        self._completions: "queue.Queue[dict]" = queue.Queue()
        self._inflight: dict[int, ChunkTrace] = {}
        self._core: DispatchCore | None = None
        self._disconnects = 0
        # telemetry return path: t0 per (worker, chunk) for offset samples
        self._aggregator = obs.aggregator
        self._tracer = obs.tracer
        self._send_times: dict[tuple[int, object], float] = {}
        metrics = obs.metrics
        self._m_lost = (
            metrics.counter(
                "repro_net_workers_lost_total",
                "Worker connections lost (mid-run or during probing)",
            )
            if metrics is not None
            else None
        )

    @property
    def disconnects(self) -> int:
        """Connections lost over the run (failure-injection assertions)."""
        return self._disconnects

    def bind(self, core: DispatchCore) -> None:
        self._core = core

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        for index in range(len(self._conns)):
            self._connect(index)
        self._workdir.mkdir(parents=True, exist_ok=True)

    def stop(self) -> None:
        """Close connections and join readers; workers stay up (pool owns them)."""
        for conn in self._conns:
            self._close_conn(conn)
        for conn in self._conns:
            if conn.reader is not None:
                conn.reader.join(timeout=5.0)
                conn.reader = None

    def _connect(self, index: int) -> None:
        conn = self._conns[index]
        try:
            sock = socket.create_connection(
                conn.endpoint.address, timeout=self.CONNECT_TIMEOUT_S
            )
        except OSError as exc:
            raise ExecutionError(
                f"cannot reach worker {conn.endpoint.name} at "
                f"{conn.endpoint.host}:{conn.endpoint.port}: {exc}"
            ) from exc
        sock.settimeout(None)
        conn.sock = sock
        conn.stream = sock.makefile("rwb")
        conn.generation += 1
        conn.reader = threading.Thread(
            target=self._reader_loop, args=(index, conn.generation, conn.stream),
            daemon=True, name=f"apstdv-net-reader-{conn.endpoint.name}",
        )
        conn.reader.start()

    @staticmethod
    def _close_conn(conn: _Conn) -> None:
        # sock.close() alone leaves the fd open while the makefile stream
        # still references it -- the worker would keep serving a dead master
        # and never accept the next run's connection.  Shut down first (wakes
        # a reader blocked in recv), then close both handles.
        if conn.sock is not None:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        if conn.stream is not None:
            try:
                conn.stream.close()
            except (OSError, ValueError):
                pass
            conn.stream = None
        if conn.sock is not None:
            try:
                conn.sock.close()
            except OSError:
                pass
            conn.sock = None

    def _reader_loop(self, index: int, generation: int, stream) -> None:
        try:
            for line in stream:
                try:
                    reply = parse_frame(line)
                except Exception as exc:
                    reply = {"status": "error", "message": f"garbled reply: {exc}"}
                reply["worker_index"] = index
                self._completions.put(reply)
        except (OSError, ValueError):
            pass
        # EOF or socket error: report the loss tagged with our generation,
        # so a reconnect's fresh reader is not mistaken for another loss
        self._completions.put(
            {"status": "conn_lost", "worker_index": index, "generation": generation}
        )

    # -- ComputeHost interface -----------------------------------------------
    def enqueue(self, chunk: ChunkTrace, payload: object) -> None:
        assert isinstance(payload, bytes)
        self._inflight[chunk.chunk_id] = chunk
        request = {
            "cmd": "process",
            "chunk_id": chunk.chunk_id,
            "data_b64": encode_payload(payload),
            "units": chunk.units,
            "min_wall_time": self._grid.workers[chunk.worker_index].compute_time(
                chunk.units
            ) * self._scale,
        }
        if self._core is not None:
            traceparent = self._core.trace_parent_for(chunk.chunk_id)
            if traceparent is not None:
                request["traceparent"] = traceparent
        self._send(chunk.worker_index, request)

    def poll(self) -> None:
        while True:
            try:
                reply = self._completions.get(block=False)
            except queue.Empty:
                return
            self._handle_reply(reply)

    def wait(self) -> bool:
        try:
            reply = self._completions.get(block=True, timeout=self.DRAIN_TIMEOUT_S)
        except queue.Empty:
            raise ExecutionError(
                "timed out waiting for remote worker completions"
            ) from None
        self._handle_reply(reply)
        self.poll()
        return True

    def idle_tick(self) -> bool:
        time.sleep(0.001)
        return True

    # -- plumbing -------------------------------------------------------------
    def _send(self, worker_index: int, request: dict) -> None:
        conn = self._conns[worker_index]
        data = json.dumps(request).encode("utf-8") + b"\n"
        if self._aggregator is not None and request.get("cmd") == "process":
            self._send_times[(worker_index, request.get("chunk_id"))] = time.time()
        if conn.sock is None:
            self._connect(worker_index)
        try:
            conn.stream.write(data)
            conn.stream.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            # stale connection (worker dropped us between chunks).  Fail
            # what was in flight on it NOW -- reconnecting bumps the
            # generation, so the old reader's queued conn_lost will be
            # discarded as stale and would otherwise strand those chunks
            # until DRAIN_TIMEOUT_S.  The chunk being sent is excluded:
            # it is about to go out again on the fresh connection.
            self._drop_conn(worker_index, exclude_chunk_id=request.get("chunk_id"))
            self._connect(worker_index)
            try:
                conn.stream.write(data)
                conn.stream.flush()
            except OSError as exc:
                raise ExecutionError(
                    f"worker {conn.endpoint.name} unreachable: {exc}"
                ) from exc

    def _ingest_reply_telemetry(self, index: int, reply: dict) -> None:
        """Clock-offset sample + telemetry batch off one worker reply.

        Every reply carrying ``recv_unix``/``send_unix`` is a valid NTP
        sample (the worker's compute time between them does not bias the
        offset); chunk replies additionally piggyback the worker's
        telemetry batch.  The batch is re-keyed to the *endpoint* name
        the master registered, so offset estimates and span records
        agree on what the process is called.
        """
        if self._aggregator is None or index is None:
            return
        t3 = time.time()
        name = self._conns[index].endpoint.name
        t0 = self._send_times.pop((index, reply.get("chunk_id")), None)
        t1 = reply.get("recv_unix")
        t2 = reply.get("send_unix")
        if t0 is not None and t1 is not None and t2 is not None:
            try:
                self._aggregator.add_offset_sample(
                    name, t0=t0, t1=float(t1), t2=float(t2), t3=t3
                )
            except (TypeError, ValueError):
                pass
        batch = reply.get("telemetry")
        if batch:
            self._aggregator.ingest(batch, process=name)

    def _handle_reply(self, reply: dict) -> None:
        index = reply.get("worker_index")
        if reply.get("status") == "conn_lost":
            self._conn_lost(index, reply.get("generation", -1))
            return
        self._ingest_reply_telemetry(index, reply)
        if reply.get("status") == "error":
            chunk = self._inflight.pop(reply.get("chunk_id", -1), None)
            message = f"worker {index} failed: {reply.get('message')}"
            if chunk is None:
                raise ExecutionError(message)
            self._core.chunk_failed(chunk, message)
            return
        chunk = self._inflight.pop(reply.get("chunk_id", -1), None)
        if chunk is None:
            raise ExecutionError(f"reply for unknown chunk: {reply!r}")
        result_path = self._workdir / f"result_{chunk.chunk_id}.out"
        result_path.write_bytes(decode_payload(reply.get("result_b64", "")))
        # the worker padded its real processing up to the modeled cost, so
        # the reply time is the modeled completion; its wall_time is the
        # actual (padded) duration
        now = self._clock.now()
        compute_model = reply["wall_time"] / self._scale
        chunk.compute_end = now
        chunk.compute_start = max(chunk.send_end, now - compute_model)
        self._core.chunk_completed(chunk, result_path=result_path)

    def _conn_lost(self, index: int, generation: int) -> None:
        """A worker connection dropped: fail its in-flight chunks."""
        if generation != self._conns[index].generation:
            return  # a reader from a connection we already replaced
        self._drop_conn(index)

    def _drop_conn(self, index: int, *, exclude_chunk_id: int | None = None) -> None:
        """Close a dead connection and fail the chunks in flight on it.

        Shared by the reader's ``conn_lost`` path and ``_send``'s
        reconnect path; ``exclude_chunk_id`` names a chunk the caller is
        about to resend itself (it must not also be queued for retry).
        """
        conn = self._conns[index]
        self._disconnects += 1
        self._close_conn(conn)
        if self._m_lost is not None:
            self._m_lost.inc()
        if self._obs.enabled:
            self._obs.emit(
                NET_WORKER_LOST,
                sim_time=self._clock.now(),
                worker=conn.endpoint.name,
                worker_index=index,
                inflight=sum(
                    1 for c in self._inflight.values() if c.worker_index == index
                ),
            )
        # chunks mid-compute on that worker will never reply: fail each so
        # the core's RetryPolicy can retransmit (the next send reconnects)
        lost = [
            c
            for c in self._inflight.values()
            if c.worker_index == index and c.chunk_id != exclude_chunk_id
        ]
        for chunk in lost:
            self._inflight.pop(chunk.chunk_id, None)
            self._core.chunk_failed(
                chunk,
                f"connection to worker {conn.endpoint.name} lost mid-chunk",
            )

    def wait_for_chunk(self, chunk_id: int, worker_index: int) -> dict:
        """Synchronous reply wait, used by the probe round (nothing in flight)."""
        deadline = time.monotonic() + self.DRAIN_TIMEOUT_S
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise ExecutionError("timed out waiting for remote worker reply")
            try:
                reply = self._completions.get(timeout=timeout)
            except queue.Empty:
                raise ExecutionError(
                    "timed out waiting for remote worker reply"
                ) from None
            if reply.get("status") == "conn_lost":
                # a probe-time loss takes the same terminal accounting
                # path as a mid-run loss (net.worker.lost event, lost
                # counter, disconnect tally, socket teardown) -- only
                # then does the failure surface to the probe loop
                self._conn_lost(
                    reply["worker_index"], reply.get("generation", -1)
                )
                raise ExecutionError(
                    f"worker {worker_index} connection lost during probe"
                )
            if reply.get("status") == "error":
                raise ExecutionError(
                    f"worker {worker_index} failed: {reply.get('message')}"
                )
            if reply.get("chunk_id") == chunk_id and reply["worker_index"] == worker_index:
                self._ingest_reply_telemetry(worker_index, reply)
                return reply
            self._completions.put(reply)  # not ours; recycle


class _RemoteTransport:
    """Payload extraction + scaled sleep: the master thread IS the link."""

    supports_outputs = False

    def __init__(
        self,
        grid: Grid,
        division: DivisionMethod,
        clock: ScaledWallClock,
        payload_cap: int,
    ) -> None:
        self._grid = grid
        self._division = division
        self._clock = clock
        self._payload_cap = payload_cap
        self._busy_time = 0.0
        self._core: DispatchCore | None = None

    def bind(self, core: DispatchCore) -> None:
        self._core = core

    @property
    def busy(self) -> bool:
        return False  # send() blocks, so the link is free between calls

    @property
    def busy_time(self) -> float:
        return self._busy_time

    def send(self, chunk: ChunkTrace, extent: ChunkExtent) -> None:
        payload = payload_for(self._division, extent, self._payload_cap)
        duration = self._grid.workers[chunk.worker_index].transfer_time(extent.units)
        self._clock.sleep_model(duration)
        self._busy_time += duration
        chunk.send_end = self._clock.now()
        self._core.chunk_arrived(chunk, payload)

    def send_output(self, chunk: ChunkTrace, units: float) -> None:
        raise ExecutionError("remote transport does not ship outputs over the link")


class _RemoteProbeCosts:
    """Measured probe costs: scaled transfer sleeps, real remote computes."""

    def __init__(
        self,
        grid: Grid,
        division: DivisionMethod,
        host: _RemoteHost,
        clock: ScaledWallClock,
        scale: float,
        payload_cap: int,
    ) -> None:
        self._grid = grid
        self._division = division
        self._host = host
        self._clock = clock
        self._scale = scale
        self._payload_cap = payload_cap

    def realized_transfer_time(self, index: int, units: float) -> float:
        spec = self._grid.workers[index]
        start = self._clock.now()
        self._clock.sleep_model(spec.transfer_time(units))
        return max(1e-9, self._clock.now() - start)

    def realized_compute_time(self, index: int, units: float) -> float:
        spec = self._grid.workers[index]
        if units <= 0:
            return spec.comp_latency  # no-op jobs: modeled directly
        payload = payload_for(self._division, ChunkExtent(0.0, units), self._payload_cap)
        start = self._clock.now()
        request = {
            "cmd": "process", "chunk_id": -1,
            "data_b64": encode_payload(payload), "units": units,
            "min_wall_time": spec.compute_time(units) * self._scale,
        }
        tracer = self._host._tracer
        if tracer is not None:
            # parent the worker's probe-chunk span to the daemon's open
            # probe span (no per-request span of our own)
            traceparent = tracer.current_traceparent()
            if traceparent is not None:
                request["traceparent"] = traceparent
        self._host._send(index, request)
        self._host.wait_for_chunk(-1, index)
        return max(1e-9, self._clock.now() - start)


class RemoteExecutionBackend:
    """Backend running chunks on socket workers (see module docstring).

    Parameters
    ----------
    endpoints:
        Worker endpoints, one per grid worker (index-aligned; extras
        are ignored).  Get them from :class:`RemoteWorkerPool` or a
        gateway's worker registry.
    workdir:
        Directory for master-side result files.
    time_scale:
        Wall seconds per modeled second.
    observability:
        Optional handle; when set, lost worker connections emit
        ``net.worker.lost`` events on top of the core's usual
        chunk/probe instrumentation.
    """

    def __init__(
        self,
        endpoints: list[WorkerEndpoint],
        workdir: str | Path,
        *,
        time_scale: float = 0.002,
        payload_cap_bytes: int = 1 << 20,
        observability: Observability | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ExecutionError("time_scale must be positive")
        if not endpoints:
            raise ExecutionError("remote backend needs at least one worker endpoint")
        self._endpoints = list(endpoints)
        self._workdir = Path(workdir)
        self._workdir.mkdir(parents=True, exist_ok=True)
        self._scale = time_scale
        self._payload_cap = payload_cap_bytes
        self._obs = observability or OBS_DISABLED
        self.last_outputs: list[Path] = []
        #: substrate of the most recent execute(); its host exposes the
        #: disconnect count (used by failure-injection tests)
        self.last_substrate: DispatchSubstrate | None = None

    # -- ExecutionBackend interface --------------------------------------------
    def substrate(
        self,
        grid: Grid,
        division: DivisionMethod,
        task: TaskSpec | None = None,
    ) -> DispatchSubstrate:
        """Fresh single-use dispatch substrate for one run on ``grid``."""
        clock = ScaledWallClock(self._scale)
        host = _RemoteHost(
            grid, self._endpoints, self._workdir / "results", clock, self._scale,
            self._obs,
        )
        return DispatchSubstrate(
            clock=clock,
            transport=_RemoteTransport(grid, division, clock, self._payload_cap),
            host=host,
            probe_costs=_RemoteProbeCosts(
                grid, division, host, clock, self._scale, self._payload_cap
            ),
            annotations={
                "backend": "remote-execution",
                "workers": len(grid.workers),
                "endpoints": [f"{e.host}:{e.port}" for e in self._endpoints],
            },
        )

    def execute(
        self,
        grid: Grid,
        scheduler,
        division: DivisionMethod,
        task: TaskSpec | None = None,
        *,
        probe_units: float | None = None,
        options: DispatchOptions | None = None,
    ) -> ExecutionReport:
        opts = options or DispatchOptions()
        if probe_units is not None:
            opts.probe_units = probe_units
        if opts.observability is None and self._obs.enabled:
            opts.observability = self._obs
        substrate = self.substrate(grid, division, task)
        self.last_substrate = substrate
        core = DispatchCore(
            grid,
            scheduler,
            division.total_units,
            substrate=substrate,
            division=division,
            options=opts,
        )
        report = core.run()
        self.last_outputs = core.outputs_in_offset_order()
        return report
