"""Client SDK for the job-submission gateway.

:class:`GatewayClient` speaks the newline-delimited JSON dialect of
:mod:`repro.net.protocol` over one persistent TCP connection
(connection reuse: one socket serves any number of requests, reconnect
is automatic).  It converts protocol-level outcomes into Python ones:

* ``"ok"`` responses return their payload;
* ``"retry"`` (the gateway's backpressure signal for a full admission
  queue) is retried transparently with exponential backoff, honouring
  the server-suggested ``retry_after_s``, up to ``max_retries``
  attempts -- callers never see backpressure unless it persists;
* ``"error"`` responses raise :class:`GatewayError` carrying the
  machine-readable ``error_code``.

Connection failures are retried with backoff for read-only verbs
(ping/status/stats/outputs).  A connection lost *mid-submit* is NOT
silently resent -- the gateway may or may not have admitted the job --
so submit raises and the caller decides (at-least-once on explicit
resubmit, at-most-once by default).

Every socket operation is bounded by ``timeout_s``; a client is cheap
and single-threaded -- use one per thread.
"""

from __future__ import annotations

import itertools
import socket
import time
from dataclasses import dataclass, field

from ..errors import ReproError
from .protocol import FrameError, read_frame, write_frame


class GatewayError(ReproError):
    """An ``"error"`` response from the gateway (or a dead connection).

    ``code`` is the wire ``error_code`` (see
    :data:`repro.net.protocol.ERROR_HTTP_STATUS`), or ``"unreachable"``
    when the failure was at the transport layer.  ``request_sent`` is
    False only when the request provably never reached the wire (the
    connect itself failed) -- the condition under which even a
    non-idempotent verb is safe to resend.
    """

    def __init__(
        self, message: str, *, code: str = "internal", request_sent: bool = True
    ) -> None:
        super().__init__(message)
        self.code = code
        self.request_sent = request_sent


#: Verbs safe to resend after a mid-flight connection loss.
_RETRY_SAFE_VERBS = frozenset({"ping", "status", "stats", "outputs", "trace"})

#: Job states that end the wait() poll loop.
_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class ClientStats:
    """What this client has seen (useful in benchmarks and tests)."""

    requests: int = 0
    backpressure_retries: int = 0
    reconnects: int = 0
    #: wall seconds per successful submit, in completion order
    submit_latencies: list = field(default_factory=list)


class GatewayClient:
    """One persistent connection to a :class:`~repro.net.gateway.JobGateway`.

    Parameters
    ----------
    host, port:
        Where the gateway listens.
    timeout_s:
        Bound on every socket operation (connect, send, receive).
    max_retries:
        Attempts per request across backpressure and reconnects.
    backoff_base_s, backoff_cap_s:
        Exponential backoff between attempts (doubling from base, capped);
        a server-suggested ``retry_after_s`` takes precedence when larger.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 30.0,
        max_retries: int = 8,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ) -> None:
        self._address = (host, port)
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s
        self._backoff_cap_s = backoff_cap_s
        self._sock: socket.socket | None = None
        self._stream = None
        self._ids = itertools.count(1)
        self.stats = ClientStats()

    # -- connection management ----------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                self._address, timeout=self._timeout_s
            )
        except OSError as exc:
            raise GatewayError(
                f"cannot reach gateway at {self._address[0]}:{self._address[1]}: {exc}",
                code="unreachable",
                request_sent=False,
            ) from exc
        self._stream = self._sock.makefile("rwb")

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._stream = None

    def __enter__(self) -> "GatewayClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request core --------------------------------------------------------
    def request(self, verb: str, **fields) -> dict:
        """One request/response round trip with retry-with-backoff."""
        attempt = 0
        while True:
            attempt += 1
            self.stats.requests += 1
            try:
                response = self._round_trip(verb, fields)
            except GatewayError as exc:
                if exc.code != "unreachable":
                    raise
                # a verb with side effects (submit/cancel/...) may only be
                # resent when the request bytes provably never went out;
                # once sent, the gateway may have acted on it
                retry_safe = verb in _RETRY_SAFE_VERBS or not exc.request_sent
                if not retry_safe or attempt >= self._max_retries:
                    self.close()
                    raise
                self.close()
                self.stats.reconnects += 1
                time.sleep(self._backoff(attempt))
                continue
            status = response.get("status")
            if status == "ok":
                return response
            if status == "retry":
                if attempt >= self._max_retries:
                    raise GatewayError(
                        f"gateway still applying backpressure after "
                        f"{attempt} attempts: {response.get('message')}",
                        code="queue_full",
                    )
                self.stats.backpressure_retries += 1
                time.sleep(
                    max(
                        float(response.get("retry_after_s", 0.0)),
                        self._backoff(attempt),
                    )
                )
                continue
            raise GatewayError(
                str(response.get("message", response)),
                code=str(response.get("error_code", "internal")),
            )

    def _round_trip(self, verb: str, fields: dict) -> dict:
        connected_here = self._sock is None
        self.connect()
        request = {"verb": verb, "id": next(self._ids), **fields}
        try:
            write_frame(self._stream, request)
            response = read_frame(self._stream)
        except FrameError:
            self.close()
            raise
        except (OSError, ValueError) as exc:
            self.close()
            raise GatewayError(
                f"connection to gateway lost during {verb}: {exc}",
                code="unreachable",
            ) from exc
        if response is None:
            self.close()
            hint = " (fresh connection refused mid-request)" if connected_here else ""
            raise GatewayError(
                f"gateway closed the connection during {verb}{hint}",
                code="unreachable",
            )
        return response

    def _backoff(self, attempt: int) -> float:
        return min(self._backoff_cap_s, self._backoff_base_s * (2 ** (attempt - 1)))

    # -- verbs ---------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(
        self,
        spec: str,
        *,
        algorithm: str | None = None,
        tenant: str = "default",
        priority: int = 0,
        weight: float = 1.0,
        arrival: float = 0.0,
        traceparent: str | None = None,
    ) -> int:
        """Submit one task spec (XML text); returns the assigned job id.

        ``traceparent`` (W3C ``00-<trace>-<span>-01``) joins the job to
        an existing distributed trace; without it the gateway starts a
        fresh trace per submission.
        """
        start = time.perf_counter()
        fields: dict = {
            "spec": spec, "tenant": tenant, "priority": priority,
            "weight": weight, "arrival": arrival,
        }
        if algorithm is not None:
            fields["algorithm"] = algorithm
        if traceparent is not None:
            fields["traceparent"] = traceparent
        response = self.request("submit", **fields)
        self.stats.submit_latencies.append(time.perf_counter() - start)
        return int(response["job_id"])

    def submit_batch(self, requests: list[dict]) -> dict:
        """Submit many tasks in one frame; returns per-request results."""
        return self.request("batch", requests=requests)

    def status(self, job_id: int | None = None) -> list[dict]:
        fields = {} if job_id is None else {"job_id": job_id}
        return self.request("status", **fields)["jobs"]

    def server_stats(self) -> dict:
        return self.request("stats")["stats"]

    def cancel(self, job_id: int) -> dict:
        return self.request("cancel", job_id=job_id)

    def outputs(self, job_id: int) -> list[str]:
        return self.request("outputs", job_id=job_id)["outputs"]

    def drain(self) -> dict:
        """Stop the gateway accepting, run everything admitted, get stats."""
        return self.request("drain")

    def shutdown_server(self) -> dict:
        return self.request("shutdown")

    def push_telemetry(self, batch: dict, *, process: str | None = None) -> dict:
        """Push one telemetry batch (spans/events/metrics) to the gateway."""
        fields: dict = {"batch": batch}
        if process is not None:
            fields["process"] = process
        return self.request("telemetry", **fields)

    def trace(self) -> dict:
        """The gateway's merged cross-process trace store (clock-corrected)."""
        return self.request("trace")["trace"]

    def dlq_list(self) -> list[dict]:
        """Entries parked in the gateway's job-level dead-letter queue."""
        return self.request("dlq", action="list")["entries"]

    def dlq_replay(self, entry_id: int) -> dict:
        """Resubmit one parked entry; returns the replayed job's outcome.

        Not retry-safe: a connection lost mid-replay may or may not have
        resubmitted the job, so the error surfaces to the caller.
        """
        return self.request("dlq", action="replay", entry_id=entry_id)

    def dlq_purge(self) -> int:
        """Drop every parked entry; returns how many were purged."""
        return int(self.request("dlq", action="purge")["purged"])

    def register_worker(self, host: str, port: int, *, name: str | None = None) -> dict:
        fields: dict = {"host": host, "port": port}
        if name is not None:
            fields["name"] = name
        return self.request("register_worker", **fields)

    def wait(self, job_id: int, *, timeout_s: float = 60.0, poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout_s
        while True:
            (job,) = self.status(job_id)
            if job["state"] in _TERMINAL_STATES:
                return job
            if time.monotonic() > deadline:
                raise GatewayError(
                    f"job {job_id} still {job['state']} after {timeout_s}s",
                    code="conflict",
                )
            time.sleep(poll_s)
