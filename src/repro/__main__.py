"""``python -m repro`` entry point (same as the ``apst-dv`` script)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
