"""SIMPLE-n: static chunking (paper Section 3.6).

"Uniformly divides the input among the workers, and divides the data for
each worker into n chunks. No probing is used. This is the simplistic
'static chunking' approach that is currently used by divisible load
application users who use APST."

The paper evaluates SIMPLE-1 (each worker gets its whole share at once --
no pipelining at all) and SIMPLE-5.  Chunks are dispatched round-major
(every worker's first chunk, then every worker's second chunk, ...), so
SIMPLE-n with n > 1 does get some communication/computation overlap, just
without any cost-model awareness.
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState


class SimpleN(Scheduler):
    """Static chunking with ``n`` equal chunks per worker."""

    uses_probing = False

    def __init__(self, n: int = 1) -> None:
        super().__init__()
        if n < 1:
            raise SchedulingError(f"SIMPLE-n requires n >= 1, got {n}")
        self._n = n
        self.name = f"simple-{n}"
        self._queue: list[DispatchRequest] = []

    @property
    def chunks_per_worker(self) -> int:
        return self._n

    def _plan(self, config: SchedulerConfig) -> None:
        num_workers = config.num_workers
        per_worker = config.total_load / num_workers
        chunk = per_worker / self._n
        self._queue = [
            DispatchRequest(
                worker_index=worker,
                units=chunk,
                round_index=round_idx,
                phase="simple",
            )
            for round_idx in range(self._n)
            for worker in range(num_workers)
        ]

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        while self._queue:
            request = self._queue[0]
            remaining = self.remaining_units
            if remaining <= 0:
                self._queue.clear()
                return None
            self._queue.pop(0)
            units = min(request.units, remaining)
            if units <= 0:
                continue
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=request.round_index,
                phase=request.phase,
            )
        # division quantization can leave a sliver; hand it to worker 0
        remaining = self.remaining_units
        if remaining > 0 and not self.done_dispatching():
            return DispatchRequest(
                worker_index=0, units=remaining, round_index=self._n, phase="simple"
            )
        return None

    def annotations(self) -> dict:
        return {"chunks_per_worker": self._n}
