"""Scheduler protocol shared by every DLS algorithm in APST-DV.

The APST-DV daemon is event-driven: whenever the serialized master link is
free, it asks the active scheduling algorithm for the *next dispatch* (a
worker and a chunk size); whenever a chunk arrives at a worker or finishes
computing, it notifies the algorithm.  All five algorithm families of the
paper (SIMPLE-n, UMR, Weighted Factoring, RUMR, Fixed-RUMR) -- plus our
extension algorithms -- implement this one interface, so the simulation
backend and the real local-execution backend drive them identically.

Conventions
-----------
* Load is measured in abstract units; ``total_load`` is the full load ``W``.
* ``configure()`` receives per-worker *resource estimates* (from probing, or
  the true platform in perfect-information mode).  SIMPLE-n ignores them,
  matching the paper ("No probing is used").
* The driver quantizes every requested chunk to the application's valid
  cut-off points (Section 3.4 of the paper) and tells the algorithm the
  size actually dispatched via ``notify_dispatched``; algorithms must
  tolerate small deviations from what they asked for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from .._util import check_positive
from ..errors import SchedulingError
from ..platform.resources import WorkerSpec


@dataclass(frozen=True)
class DispatchRequest:
    """A scheduling decision: send ``units`` of load to worker ``worker_index``.

    ``round_index`` and ``phase`` are labels carried into the execution
    report (the paper's report distinguishes UMR rounds from Factoring
    rounds, which is how the late-phase-switch bug was found).
    """

    worker_index: int
    units: float
    round_index: int = 0
    phase: str = "default"

    def __post_init__(self) -> None:
        if self.worker_index < 0:
            raise SchedulingError(f"invalid worker index {self.worker_index}")
        if self.units <= 0:
            raise SchedulingError(f"dispatch must carry positive load, got {self.units}")


@dataclass
class ChunkInfo:
    """Driver-side record of a dispatched chunk, as seen by schedulers."""

    chunk_id: int
    worker_index: int
    units: float
    round_index: int
    phase: str


@dataclass
class WorkerState:
    """Dynamic view of one worker, maintained by the driver.

    Schedulers read this to make greedy decisions (e.g. Weighted Factoring
    dispatches to workers whose outstanding backlog is low).
    """

    index: int
    name: str
    #: chunks transferred (or in transfer) but not yet finished computing
    outstanding: int = 0
    #: units in the outstanding backlog
    outstanding_units: float = 0.0
    completed_chunks: int = 0
    completed_units: float = 0.0
    #: sum of observed compute times (excludes queue/transfer time)
    busy_time: float = 0.0

    @property
    def observed_rate(self) -> float | None:
        """Units/second actually delivered so far (None before first chunk).

        Includes the per-chunk computation start-up cost, which is exactly
        what an application-level observer (APST-DV) can measure.
        """
        if self.busy_time <= 0 or self.completed_units <= 0:
            return None
        return self.completed_units / self.busy_time


@dataclass
class SchedulerConfig:
    """Everything an algorithm may need at configuration time."""

    estimates: list[WorkerSpec]
    total_load: float
    #: smallest dispatchable chunk / division granularity, in units
    quantum: float = 1.0

    def __post_init__(self) -> None:
        if not self.estimates:
            raise SchedulingError("scheduler configured with zero workers")
        check_positive("total_load", self.total_load, SchedulingError)
        check_positive("quantum", self.quantum, SchedulingError)
        if self.total_load < self.quantum:
            raise SchedulingError(
                f"total load {self.total_load} below division quantum {self.quantum}"
            )

    @property
    def num_workers(self) -> int:
        return len(self.estimates)

    @property
    def total_speed(self) -> float:
        return sum(w.speed for w in self.estimates)


class Scheduler(ABC):
    """Base class of every DLS algorithm.

    Lifecycle::

        s = SomeScheduler(...)
        s.configure(config)              # once, after probing
        while not driver done:
            req = s.next_dispatch(now, workers)   # when link is free
            ...driver quantizes, transfers...
            s.notify_dispatched(chunk)
            ...on arrival...     s.notify_arrival(chunk, now)
            ...on completion...  s.notify_completion(chunk, now, predicted, actual)
    """

    #: registry name; subclasses override (e.g. "umr", "wf", "simple-5")
    name: str = "abstract"
    #: whether the daemon should run a probe round first (paper Section 3.5)
    uses_probing: bool = True

    def __init__(self) -> None:
        self._config: SchedulerConfig | None = None
        self._dispatched_units = 0.0

    # -- configuration -----------------------------------------------------
    def configure(self, config: SchedulerConfig) -> None:
        """Receive resource estimates and the total load; builds the plan."""
        self._config = config
        self._dispatched_units = 0.0
        self._plan(config)

    @property
    def config(self) -> SchedulerConfig:
        if self._config is None:
            raise SchedulingError(f"{type(self).__name__} used before configure()")
        return self._config

    @property
    def configured(self) -> bool:
        return self._config is not None

    @property
    def dispatched_units(self) -> float:
        """Units handed to the driver so far (maintained by notify_dispatched)."""
        return self._dispatched_units

    @property
    def remaining_units(self) -> float:
        return max(0.0, self.config.total_load - self._dispatched_units)

    # -- hooks for subclasses ----------------------------------------------
    @abstractmethod
    def _plan(self, config: SchedulerConfig) -> None:
        """Build internal dispatch state from the configuration."""

    @abstractmethod
    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        """Next chunk to send, or None if nothing should be sent right now.

        Called whenever the master link is free.  Returning None does not
        end the run; the driver will ask again after the next event.
        """

    def notify_dispatched(self, chunk: ChunkInfo) -> None:
        """The driver committed ``chunk`` (possibly re-quantized) to the link."""
        self._dispatched_units += chunk.units

    def notify_arrival(self, chunk: ChunkInfo, now: float) -> None:
        """Chunk fully received by its worker (default: ignore)."""

    def notify_completion(
        self, chunk: ChunkInfo, now: float, predicted_time: float, actual_time: float
    ) -> None:
        """Chunk finished computing (default: ignore).

        ``predicted_time`` is the estimate-based compute time, ``actual_time``
        the observed one; adaptive algorithms (Weighted Factoring, online
        RUMR) refine their models from the ratio.
        """

    # -- shared helpers ------------------------------------------------------
    def annotations(self) -> dict:
        """Algorithm-specific facts to embed in the execution report."""
        return {}

    def speed_weights(self, estimates: list[WorkerSpec]) -> list[float]:
        """Normalized speed weights w_i = S_i / sum(S) (weighted factoring)."""
        total = sum(w.speed for w in estimates)
        if total <= 0:
            raise SchedulingError("total estimated speed must be positive")
        return [w.speed / total for w in estimates]

    def done_dispatching(self) -> bool:
        """True when the whole load has been handed to the driver."""
        return self.remaining_units <= 1e-9 * max(1.0, self.config.total_load)
