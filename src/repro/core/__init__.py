"""Divisible Load Scheduling algorithms (the paper's Section 3.6 set plus lineage)."""

from .adaptive import AdaptiveUMR
from .base import ChunkInfo, DispatchRequest, Scheduler, SchedulerConfig, WorkerState
from .factoring import GuidedSelfScheduling, PlainFactoring, WeightedFactoring
from .multiinstallment import MultiInstallment
from .oneround import OneRound, solve_one_round
from .registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    make_scheduler,
    register_algorithm,
)
from .rumr import RUMR, GammaEstimator, fixed_rumr
from .selfscheduling import ChunkSelfScheduling, TrapezoidSelfScheduling
from .simple import SimpleN
from .umr import UMR, UMRPlan, compute_umr_plan
from .umr_output import OutputAwareUMR, output_transformed_estimates

__all__ = [
    "ChunkSelfScheduling",
    "TrapezoidSelfScheduling",
    "OutputAwareUMR",
    "output_transformed_estimates",
    "Scheduler",
    "SchedulerConfig",
    "DispatchRequest",
    "ChunkInfo",
    "WorkerState",
    "SimpleN",
    "UMR",
    "UMRPlan",
    "compute_umr_plan",
    "WeightedFactoring",
    "PlainFactoring",
    "GuidedSelfScheduling",
    "RUMR",
    "fixed_rumr",
    "GammaEstimator",
    "AdaptiveUMR",
    "OneRound",
    "solve_one_round",
    "MultiInstallment",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "make_scheduler",
    "register_algorithm",
]
