"""Algorithm registry: the XML ``algorithm=`` attribute resolved to code.

The APST-DV XML specification names the DLS algorithm to use (e.g.
``algorithm="rumr"`` in Figures 1 and 6 of the paper).  This registry maps
those names to scheduler factories.  Parameterized families accept a
suffix: ``simple-5`` is SIMPLE-n with n=5, ``multiinstallment-3`` runs
three installments.

>>> make_scheduler("simple-5").name
'simple-5'
>>> sorted(available_algorithms())[:3]
['adaptive-umr', 'css', 'factoring']
"""

from __future__ import annotations

from typing import Callable

from ..errors import SchedulingError
from .adaptive import AdaptiveUMR
from .base import Scheduler
from .factoring import GuidedSelfScheduling, PlainFactoring, WeightedFactoring
from .multiinstallment import MultiInstallment
from .oneround import OneRound
from .rumr import RUMR, fixed_rumr
from .selfscheduling import ChunkSelfScheduling, TrapezoidSelfScheduling
from .simple import SimpleN
from .umr import UMR
from .umr_output import OutputAwareUMR

_FACTORIES: dict[str, Callable[[], Scheduler]] = {
    "simple": lambda: SimpleN(1),
    "umr": UMR,
    "wf": WeightedFactoring,
    "weighted-factoring": WeightedFactoring,
    "factoring": PlainFactoring,
    "gss": GuidedSelfScheduling,
    "rumr": RUMR,
    "fixed-rumr": fixed_rumr,
    "adaptive-umr": AdaptiveUMR,
    "oneround-affine": lambda: OneRound(affine=True),
    "oneround-linear": lambda: OneRound(affine=False),
    "multiinstallment": MultiInstallment,
    "tss": TrapezoidSelfScheduling,
    "css": ChunkSelfScheduling,
    "umr-out": lambda: OutputAwareUMR(output_factor=0.1),
}

#: The algorithm set evaluated in the paper's Section 4, in figure order.
PAPER_ALGORITHMS = ("simple-1", "simple-5", "umr", "wf", "rumr", "fixed-rumr")


def available_algorithms() -> list[str]:
    """All registered base algorithm names (parameterized forms excluded)."""
    return sorted(_FACTORIES)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler from its registry name.

    Parameterized names: ``simple-N`` (N chunks per worker) and
    ``multiinstallment-N`` (N installments).
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        return _FACTORIES[key]()
    if key.startswith("simple-"):
        return SimpleN(_parse_suffix(name, "simple-"))
    if key.startswith("multiinstallment-"):
        return MultiInstallment(_parse_suffix(name, "multiinstallment-"))
    raise SchedulingError(
        f"unknown scheduling algorithm {name!r}; "
        f"available: {', '.join(available_algorithms())} "
        f"(plus simple-N, multiinstallment-N)"
    )


def _parse_suffix(name: str, prefix: str) -> int:
    suffix = name.strip().lower()[len(prefix):]
    try:
        value = int(suffix)
    except ValueError as exc:
        raise SchedulingError(f"bad parameter in algorithm name {name!r}") from exc
    if value < 1:
        raise SchedulingError(f"algorithm parameter must be >= 1 in {name!r}")
    return value


def register_algorithm(name: str, factory: Callable[[], Scheduler]) -> None:
    """Register a custom scheduler factory under ``name``.

    Raises if the name is already taken -- shadowing a paper algorithm in
    a benchmark would silently corrupt results.
    """
    key = name.strip().lower()
    if key in _FACTORIES:
        raise SchedulingError(f"algorithm {name!r} already registered")
    _FACTORIES[key] = factory
