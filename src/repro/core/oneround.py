"""Classic One-Round divisible load scheduling (paper Section 2.2 lineage).

The first DLS algorithms assign exactly one chunk per worker.  On a star
(single-level tree) network with a serialized master link, the optimal
one-round schedule makes every worker finish computing at the same instant.
We implement the two canonical cost models the paper's survey section
describes:

* **linear** -- transfer and computation proportional to chunk size (no
  start-up costs).  With workers served in order 1..N, worker i starts
  computing after all transfers 1..i, so equal finish times give a linear
  system solved in closed form by back-substitution.
* **affine** -- adds the communication/computation start-up costs
  (``nLat_i``, ``cLat_i``), "known to be more realistic as real networks
  do experience start-up costs".

These serve as ablation baselines: the paper's motivation for multi-round
algorithms is precisely that one-round schedules overlap communication and
computation poorly.

Participation note: with affine costs it can be optimal to *exclude* slow
workers; we keep all workers whose resulting chunk is positive and drop
the rest, re-solving until stable (a standard greedy used in the DLS
literature).
"""

from __future__ import annotations

from ..errors import InfeasibleScheduleError, SchedulingError
from ..platform.resources import WorkerSpec
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState


def solve_one_round(
    estimates: list[WorkerSpec],
    total_load: float,
    *,
    affine: bool = True,
) -> list[float]:
    """Chunk sizes for the equal-finish-time one-round schedule.

    Workers are served in the given order.  Let ``t_i`` be the time worker
    *i* finishes.  Worker *i* starts computing when its transfer completes::

        finish_i = sum_{k<=i} (nLat_k + a_k/B_k) + cLat_i + a_i/S_i

    Imposing ``finish_i = finish_{i+1}`` for all i gives::

        cLat_i + a_i/S_i = nLat_{i+1} + a_{i+1}/B_{i+1} + cLat_{i+1} + a_{i+1}/S_{i+1}

    so each ``a_{i+1}`` is an affine function of ``a_i``; load conservation
    pins down ``a_1``.  With ``affine=False`` all latencies are treated as
    zero (the pure linear model).

    Returns chunk sizes aligned with ``estimates`` (0.0 for excluded
    workers).
    """
    if total_load <= 0:
        raise SchedulingError("one-round solve needs positive load")
    if not estimates:
        raise SchedulingError("one-round solve needs workers")

    active = list(range(len(estimates)))
    while active:
        chunks = _solve_active(estimates, active, total_load, affine)
        negative = [i for i, a in zip(active, chunks) if a <= 0]
        if not negative:
            out = [0.0] * len(estimates)
            for i, a in zip(active, chunks):
                out[i] = a
            return out
        # drop the most infeasible worker and re-solve
        worst = min(zip(active, chunks), key=lambda pair: pair[1])[0]
        active.remove(worst)
    raise InfeasibleScheduleError(
        "one-round schedule infeasible: start-up costs exceed the load on every subset"
    )


def _solve_active(
    estimates: list[WorkerSpec],
    active: list[int],
    total_load: float,
    affine: bool,
) -> list[float]:
    """Solve the equal-finish system for the active worker subset.

    Writes every chunk as ``a_k = p_k + q_k * a_0`` and applies load
    conservation to find ``a_0``.
    """
    specs = [estimates[i] for i in active]
    p = [0.0]
    q = [1.0]
    for i in range(len(specs) - 1):
        w, nxt = specs[i], specs[i + 1]
        n_lat = nxt.comm_latency if affine else 0.0
        c_lat_i = w.comp_latency if affine else 0.0
        c_lat_n = nxt.comp_latency if affine else 0.0
        # cLat_i + a_i/S_i = nLat_{i+1} + a_{i+1}/B_{i+1} + cLat_{i+1} + a_{i+1}/S_{i+1}
        denom = 1.0 / nxt.bandwidth + 1.0 / nxt.speed
        const = (c_lat_i - n_lat - c_lat_n) / denom
        slope = (1.0 / w.speed) / denom
        p.append(const + slope * p[i])
        q.append(slope * q[i])
    sum_p = sum(p)
    sum_q = sum(q)
    if sum_q <= 0:
        raise InfeasibleScheduleError("degenerate one-round system")
    a0 = (total_load - sum_p) / sum_q
    return [pi + qi * a0 for pi, qi in zip(p, q)]


class OneRound(Scheduler):
    """One-round equal-finish-time DLS on a star network."""

    uses_probing = True

    def __init__(self, *, affine: bool = True, order_by_bandwidth: bool = True) -> None:
        super().__init__()
        self._affine = affine
        self._order_by_bandwidth = order_by_bandwidth
        self.name = "oneround-affine" if affine else "oneround-linear"
        self._queue: list[DispatchRequest] = []
        self._excluded: list[str] = []

    def _plan(self, config: SchedulerConfig) -> None:
        order = list(range(config.num_workers))
        if self._order_by_bandwidth:
            # serving faster links first is the classic ordering heuristic
            order.sort(key=lambda i: -config.estimates[i].bandwidth)
        reordered = [config.estimates[i] for i in order]
        chunks = solve_one_round(reordered, config.total_load, affine=self._affine)
        self._excluded = [
            reordered[k].name for k, a in enumerate(chunks) if a <= 0
        ]
        self._queue = [
            DispatchRequest(
                worker_index=order[k], units=a, round_index=0, phase="oneround"
            )
            for k, a in enumerate(chunks)
            if a > 0
        ]

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        while self._queue:
            request = self._queue.pop(0)
            units = min(request.units, self.remaining_units)
            if units <= 0:
                continue
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=0,
                phase="oneround",
            )
        remaining = self.remaining_units
        if remaining > 0 and not self.done_dispatching():
            fastest = max(
                range(len(self.config.estimates)),
                key=lambda i: self.config.estimates[i].speed,
            )
            return DispatchRequest(
                worker_index=fastest, units=remaining, round_index=1, phase="oneround"
            )
        return None

    def annotations(self) -> dict:
        return {
            "oneround_affine": self._affine,
            "oneround_excluded_workers": list(self._excluded),
        }
