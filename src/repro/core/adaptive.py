"""Adaptive UMR: the paper's stated future work, implemented.

Section 6: "We will also implement an adaptive version of RUMR that
updates its view of the platform after each sub-task completes."  This
module provides that algorithm for the UMR phase: after every completed
chunk it refines the per-worker speed estimate (EWMA on observed rates)
and, at each *round boundary of the dispatch queue*, re-plans the
remaining rounds with the refreshed estimates.

Re-planning is restricted to load that has not started transmitting --
the same physical constraint that bites online RUMR -- so adaptation helps
most in the early and middle rounds.  The ablation bench compares it
against stock UMR under probe error and uncertainty.
"""

from __future__ import annotations

from ..errors import InfeasibleScheduleError
from ..platform.resources import WorkerSpec
from .base import ChunkInfo, DispatchRequest, Scheduler, SchedulerConfig, WorkerState
from .factoring import ADAPTATION_GAIN
from .umr import UMR, compute_umr_plan, proportional_one_round


#: Re-planning is only worthwhile when the platform view actually moved:
#: a fresh UMR plan restarts the chunk-size ramp, which costs overlap, so
#: below this relative speed deviation the current plan is kept.
REPLAN_SPEED_THRESHOLD = 0.05


class AdaptiveUMR(Scheduler):
    """UMR with per-completion speed refinement and round-boundary re-planning."""

    name = "adaptive-umr"
    uses_probing = True

    def __init__(
        self,
        *,
        adaptation_gain: float = ADAPTATION_GAIN,
        max_rounds: int = 128,
        replan_threshold: float = REPLAN_SPEED_THRESHOLD,
    ) -> None:
        super().__init__()
        self._gain = adaptation_gain
        self._max_rounds = max_rounds
        self._replan_threshold = replan_threshold
        self._queue: list[DispatchRequest] = []
        self._speeds: list[float] = []
        self._rounds_started: set[int] = set()
        self._round_offset = 0
        self._replans = 0
        self._completions_since_replan = 0

    def _plan(self, config: SchedulerConfig) -> None:
        self._speeds = [w.speed for w in config.estimates]
        self._planned_speeds = list(self._speeds)
        self._rounds_started = set()
        self._round_offset = 0
        self._replans = 0
        self._completions_since_replan = 0
        self._queue = self._build_plan(config.total_load, config)

    def _current_estimates(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                name=w.name,
                speed=self._speeds[i],
                bandwidth=w.bandwidth,
                comm_latency=w.comm_latency,
                comp_latency=w.comp_latency,
                cluster=w.cluster,
            )
            for i, w in enumerate(self.config.estimates)
        ]

    def _build_plan(self, load: float, config: SchedulerConfig) -> list[DispatchRequest]:
        estimates = (
            self._current_estimates() if self._speeds else list(config.estimates)
        )
        try:
            plan = compute_umr_plan(
                estimates, load, quantum=config.quantum, max_rounds=self._max_rounds
            )
        except InfeasibleScheduleError:
            plan = proportional_one_round(estimates, load)
        queue = UMR._build_queue(plan, phase="adaptive-umr")
        if self._round_offset:
            queue = [
                DispatchRequest(
                    worker_index=r.worker_index,
                    units=r.units,
                    round_index=r.round_index + self._round_offset,
                    phase=r.phase,
                )
                for r in queue
            ]
        return queue

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        while self._queue:
            request = self._queue[0]
            remaining = self.remaining_units
            if remaining <= 0:
                self._queue.clear()
                return None
            self._queue.pop(0)
            units = min(request.units, remaining)
            if units <= 0:
                continue
            self._rounds_started.add(request.round_index)
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=request.round_index,
                phase=request.phase,
            )
        remaining = self.remaining_units
        if remaining > 0 and not self.done_dispatching():
            fastest = max(range(len(self._speeds)), key=lambda i: self._speeds[i])
            return DispatchRequest(
                worker_index=fastest,
                units=remaining,
                round_index=self._round_offset + 1,
                phase="adaptive-umr",
            )
        return None

    def notify_completion(
        self, chunk: ChunkInfo, now: float, predicted_time: float, actual_time: float
    ) -> None:
        latency = self.config.estimates[chunk.worker_index].comp_latency
        effective = actual_time - latency
        if effective > 0 and chunk.units > 0:
            observed = chunk.units / effective
            self._speeds[chunk.worker_index] = (
                (1.0 - self._gain) * self._speeds[chunk.worker_index]
                + self._gain * observed
            )
        self._completions_since_replan += 1
        if self._completions_since_replan >= len(self._speeds):
            self._completions_since_replan = 0
            self._maybe_replan()

    def _maybe_replan(self) -> None:
        """Re-plan the rounds that have not started transmitting."""
        deviation = max(
            abs(s - p) / p for s, p in zip(self._speeds, self._planned_speeds)
        )
        if deviation < self._replan_threshold:
            return
        future = [r for r in self._queue if r.round_index not in self._rounds_started]
        if not future:
            return
        load = sum(r.units for r in future)
        if load < self.config.quantum * len(self._speeds):
            return
        keep = [r for r in self._queue if r.round_index in self._rounds_started]
        self._round_offset = 1 + max(
            (r.round_index for r in keep),
            default=max(self._rounds_started, default=-1),
        )
        self._queue = keep + self._build_plan(load, self.config)
        self._planned_speeds = list(self._speeds)
        self._replans += 1

    def annotations(self) -> dict:
        return {"adaptive_umr_replans": self._replans}
