"""UMR: Uniform Multi-Round scheduling [Yang & Casanova, IPDPS 2003].

UMR dispatches the load in rounds whose sizes grow geometrically so that
the master finishes sending round *j+1* exactly when the workers finish
computing round *j* -- maximal communication/computation overlap under
affine costs on a serialized master link.  Its advances over earlier
multi-round algorithms (paper Section 3.6): affine communication *and*
computation costs, a near-optimal number of rounds, and heterogeneous
platforms.

Model and derivation
--------------------
Worker *i* computes a chunk of ``a`` units in ``cLat_i + a / S_i`` and the
master link is occupied for ``nLat_i + a / B_i`` to send it.  In round *j*
every worker computes for the same duration ``T_j`` (the "uniform" in UMR),
so worker *i*'s chunk is ``a_{j,i} = S_i (T_j - cLat_i)``.  Requiring the
dispatch of round *j+1* to fill exactly the computation of round *j*::

    sum_i (nLat_i + a_{j+1,i} / B_i) = T_j

yields the linear recurrence ``T_{j+1} = (T_j - A) / rho`` with::

    rho = sum_i S_i / B_i
    A   = sum_i (nLat_i - S_i cLat_i / B_i)

i.e. geometric growth with ratio ``q = 1/rho`` around the fixed point
``mu = A / (1 - rho)``.  Load conservation fixes ``T_0`` for any round
count ``M`` (closed-form geometric sum), and the predicted makespan is::

    makespan(M) ~= D_0(M) + sum_j T_j = D_0(M) + (W + M * C) / sum_i S_i

with ``D_0`` the serialized dispatch time of round 0 and
``C = sum_i S_i cLat_i``; more rounds shrink the un-overlapped first
dispatch but pay more start-up cost.  We select ``M`` by direct search
over the integers, which matches the original paper's "near-optimal
number of rounds" without its continuous relaxation machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InfeasibleScheduleError, SchedulingError
from ..platform.resources import WorkerSpec
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState

#: Largest round count the optimizer will consider.
MAX_ROUNDS = 128

#: Relative makespan tolerance for preferring fewer rounds among near ties.
ROUND_TIE_TOLERANCE = 1e-3


@dataclass(frozen=True)
class UMRPlanStats:
    """Diagnostics of a computed UMR plan."""

    num_rounds: int
    t0: float
    predicted_makespan: float
    first_dispatch: float
    fixed_point: float
    growth_ratio: float


@dataclass
class UMRPlan:
    """A concrete multi-round plan: ``rounds[j][i]`` = units for worker i."""

    rounds: list[list[float]]
    stats: UMRPlanStats

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_units(self) -> float:
        return sum(sum(r) for r in self.rounds)

    def round_totals(self) -> list[float]:
        return [sum(r) for r in self.rounds]


def _series(t0: float, m: int, q: float, mu: float, a: float, rho: float) -> list[float]:
    """Round compute times T_0..T_{M-1} from the recurrence."""
    out = [t0]
    for _ in range(m - 1):
        t = out[-1]
        if rho == 1.0:
            out.append(t - a)
        else:
            out.append((t - a) / rho)
    return out
    # (closed form T_j = mu + (T_0 - mu) q^j is used for the solve; the
    # explicit iteration here avoids catastrophic q**j blowup checks)


def compute_umr_plan(
    estimates: list[WorkerSpec],
    total_load: float,
    *,
    quantum: float = 1.0,
    max_rounds: int = MAX_ROUNDS,
) -> UMRPlan:
    """Build the UMR round plan for a heterogeneous platform.

    Raises
    ------
    InfeasibleScheduleError
        If no round count admits non-negative chunks (the caller falls
        back to a one-round proportional split).
    """
    if not estimates:
        raise SchedulingError("UMR needs at least one worker")
    if total_load <= 0:
        raise SchedulingError("UMR needs positive load")

    speeds = [w.speed for w in estimates]
    stot = sum(speeds)
    rho = sum(w.speed / w.bandwidth for w in estimates)
    big_c = sum(w.speed * w.comp_latency for w in estimates)
    big_a = sum(w.comm_latency - w.speed * w.comp_latency / w.bandwidth for w in estimates)
    mu = big_a / (1.0 - rho) if rho != 1.0 else math.inf
    q = 1.0 / rho

    # Smallest feasible per-round compute time: every worker's chunk must be
    # at least one quantum.
    t_min = max(w.comp_latency + quantum / w.speed for w in estimates)

    best: tuple[float, int, float] | None = None  # (makespan, M, T_0)
    for m in range(1, max_rounds + 1):
        sum_t = (total_load + m * big_c) / stot
        t0 = _solve_t0(sum_t, m, q, mu, big_a, rho)
        if t0 is None:
            continue
        series = _series(t0, m, q, mu, big_a, rho)
        if min(series) < t_min - 1e-9:
            continue
        # Numeric degeneracy guard: for large M the closed-form T_0 can sit
        # within float epsilon of the fixed point, in which case the
        # iterated series no longer satisfies load conservation at all.
        realized = stot * sum(series) - m * big_c
        if abs(realized - total_load) > 1e-3 * total_load:
            continue
        d0 = sum(
            w.comm_latency + w.speed * (t0 - w.comp_latency) / w.bandwidth
            for w in estimates
        )
        makespan = d0 + sum_t
        if best is None or makespan < best[0] * (1.0 - ROUND_TIE_TOLERANCE):
            best = (makespan, m, t0)

    if best is None:
        raise InfeasibleScheduleError(
            f"no feasible UMR round count for load {total_load} "
            f"(t_min={t_min:.3f}s)"
        )

    makespan, m, t0 = best
    series = _series(t0, m, q, mu, big_a, rho)
    rounds = [
        [w.speed * (t - w.comp_latency) for w in estimates]
        for t in series
    ]
    _normalize_total(rounds, total_load)
    d0 = sum(
        w.comm_latency + w.speed * (t0 - w.comp_latency) / w.bandwidth
        for w in estimates
    )
    return UMRPlan(
        rounds=rounds,
        stats=UMRPlanStats(
            num_rounds=m,
            t0=t0,
            predicted_makespan=makespan,
            first_dispatch=d0,
            fixed_point=mu,
            growth_ratio=q,
        ),
    )


def _solve_t0(
    sum_t: float, m: int, q: float, mu: float, a: float, rho: float
) -> float | None:
    """T_0 from load conservation: sum of the T_j series equals ``sum_t``."""
    if rho == 1.0:
        # arithmetic series: T_j = T_0 - j*A
        t0 = (sum_t + a * m * (m - 1) / 2.0) / m
        return t0 if math.isfinite(t0) and t0 > 0 else None
    if abs(q - 1.0) < 1e-12:
        t0 = sum_t / m
        return t0 if t0 > 0 else None
    try:
        geom = (q**m - 1.0) / (q - 1.0)
    except OverflowError:
        return None
    if not math.isfinite(geom) or geom <= 0:
        return None
    t0 = mu + (sum_t - m * mu) / geom
    return t0 if math.isfinite(t0) and t0 > 0 else None


def _normalize_total(rounds: list[list[float]], total_load: float) -> None:
    """Clamp negatives and rescale so the plan carries exactly the load."""
    for r in rounds:
        for i, a in enumerate(r):
            if a < 0:
                r[i] = 0.0
    planned = sum(sum(r) for r in rounds)
    if planned <= 0:
        raise InfeasibleScheduleError("UMR plan degenerated to zero load")
    scale = total_load / planned
    for r in rounds:
        for i in range(len(r)):
            r[i] *= scale


def proportional_one_round(
    estimates: list[WorkerSpec], total_load: float
) -> UMRPlan:
    """Fallback: a single round with chunks proportional to worker speed."""
    stot = sum(w.speed for w in estimates)
    chunks = [total_load * w.speed / stot for w in estimates]
    d0 = sum(w.comm_latency + c / w.bandwidth for w, c in zip(estimates, chunks))
    t = max(w.comp_latency + c / w.speed for w, c in zip(estimates, chunks))
    return UMRPlan(
        rounds=[chunks],
        stats=UMRPlanStats(
            num_rounds=1,
            t0=t,
            predicted_makespan=d0 + t,
            first_dispatch=d0,
            fixed_point=math.nan,
            growth_ratio=math.nan,
        ),
    )


class UMR(Scheduler):
    """UMR scheduler: precomputed round plan, greedily streamed to the link.

    The plan is dispatched round-major in worker order whenever the master
    link is free -- which lets transfers run *ahead* of computation exactly
    as a greedy real master does.  UMR performs no online adaptation
    (paper Section 3.6: "SIMPLE-n and UMR do not perform such adaptation").
    """

    name = "umr"
    uses_probing = True

    def __init__(self, *, max_rounds: int = MAX_ROUNDS) -> None:
        super().__init__()
        self._max_rounds = max_rounds
        self._plan_obj: UMRPlan | None = None
        self._queue: list[DispatchRequest] = []
        self._fallback = False

    @property
    def plan(self) -> UMRPlan:
        if self._plan_obj is None:
            raise SchedulingError("UMR not configured")
        return self._plan_obj

    def _plan(self, config: SchedulerConfig) -> None:
        try:
            plan = compute_umr_plan(
                config.estimates,
                config.total_load,
                quantum=config.quantum,
                max_rounds=self._max_rounds,
            )
            self._fallback = False
        except InfeasibleScheduleError:
            plan = proportional_one_round(config.estimates, config.total_load)
            self._fallback = True
        self._plan_obj = plan
        self._queue = self._build_queue(plan, phase="umr")

    @staticmethod
    def _build_queue(
        plan: UMRPlan, *, phase: str, quantum_floor: float = 0.0
    ) -> list[DispatchRequest]:
        queue: list[DispatchRequest] = []
        for j, round_chunks in enumerate(plan.rounds):
            for i, units in enumerate(round_chunks):
                if units <= quantum_floor:
                    continue
                queue.append(
                    DispatchRequest(
                        worker_index=i, units=units, round_index=j, phase=phase
                    )
                )
        return queue

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        while self._queue:
            request = self._queue[0]
            remaining = self.remaining_units
            if remaining <= 0:
                self._queue.clear()
                return None
            self._queue.pop(0)
            units = min(request.units, remaining)
            if units <= 0:
                continue
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=request.round_index,
                phase=request.phase,
            )
        remaining = self.remaining_units
        if remaining > 0 and not self.done_dispatching():
            # quantization slack: append to the fastest worker's tail
            fastest = max(
                range(len(self.config.estimates)),
                key=lambda i: self.config.estimates[i].speed,
            )
            return DispatchRequest(
                worker_index=fastest,
                units=remaining,
                round_index=self.plan.num_rounds,
                phase="umr",
            )
        return None

    def annotations(self) -> dict:
        plan = self._plan_obj
        if plan is None:
            return {}
        return {
            "umr_rounds": plan.num_rounds,
            "umr_t0": round(plan.stats.t0, 3),
            "umr_growth_ratio": round(plan.stats.growth_ratio, 3),
            "umr_predicted_makespan": round(plan.stats.predicted_makespan, 1),
            "umr_fallback_one_round": self._fallback,
        }
