"""RUMR and Fixed-RUMR: robust two-phase scheduling [Yang & Casanova, HPDC'03].

RUMR splits execution into two phases: a **UMR phase** that grows chunk
sizes for maximal communication/computation overlap, then a **Weighted
Factoring phase** that shrinks chunks to absorb uncertainty at the end of
the run.  The original algorithm assumes the uncertainty level ``gamma``
is known in advance and pre-computes the switch point.

APST-DV has no advance knowledge of gamma, so this implementation --
mirroring the paper's prototype -- *discovers* gamma online: after each
chunk completion it pools the within-worker coefficient of variation of
(observed / predicted) compute times and commits to the Factoring phase
once the estimate is statistically significant.  Two structural facts make
this reproduce the paper's central negative result:

1. the master link dispatches the UMR plan greedily, running *ahead* of
   computation, and chunk sizes grow geometrically -- so the final (very
   large) round starts transmitting long before the run ends;
2. the switch can only claim **whole rounds that have not started
   transmitting** (a chunk on the wire cannot be recalled).

At moderate uncertainty (gamma = 10%) the significance test resolves only
after the final round is on the wire, so "Factoring is in fact never used"
and RUMR degenerates to UMR.  At high uncertainty (20%, the case study)
the estimate resolves within the first rounds and the switch succeeds in
every run.  At gamma = 0 nothing triggers and RUMR *is* UMR, as the paper
notes.  The execution report records the outcome (``rumr_switched`` /
``rumr_switch_too_late``), just as the authors used APST-DV's detailed
report to diagnose the problem.

**Fixed-RUMR** sidesteps detection entirely: it always schedules a fixed
fraction (80% in the paper) of the load in the UMR phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import InfeasibleScheduleError, SchedulingError
from ..platform.resources import WorkerSpec
from .base import ChunkInfo, DispatchRequest, Scheduler, SchedulerConfig, WorkerState
from .factoring import ADAPTATION_GAIN, WeightedFactoring
from .umr import UMR, UMRPlan, compute_umr_plan, proportional_one_round

#: Minimum gamma worth switching for: below this, UMR alone wins (the RUMR
#: paper shows Factoring's overlap loss outweighs its robustness gain for
#: low uncertainty).  Note this sits just below the paper's "moderate"
#: uncertainty level (10%): detection at gamma ~= 10% therefore converges
#: slowly -- which is precisely the regime where the paper observed the
#: switch resolving only after the final round was on the wire.
GAMMA_SWITCH_THRESHOLD = 0.095

#: One-sided confidence multiplier for the gamma lower confidence bound.
GAMMA_CONFIDENCE_Z = 1.645

#: Desired Factoring-phase fraction as a function of the estimated gamma.
PHASE2_SCALE = 2.5
PHASE2_MAX_FRACTION = 0.5

#: The switch only proceeds if the reclaimable (undispatched whole-round)
#: load covers at least this share of the desired Factoring-phase load.
MIN_USEFUL_SWITCH = 0.5


@dataclass
class GammaEstimator:
    """Online estimate of compute-time uncertainty from chunk residuals.

    Residuals are (actual / predicted) chunk compute times.  Pooling the
    coefficient of variation *within each worker* removes the constant
    per-worker bias that single-sample probing leaves in the predictions,
    isolating the run-to-run uncertainty RUMR actually cares about.
    """

    samples: dict[int, list[float]] = field(default_factory=dict)

    def add(self, worker_index: int, residual: float) -> None:
        if residual <= 0 or not math.isfinite(residual):
            return
        self.samples.setdefault(worker_index, []).append(residual)

    @property
    def total_samples(self) -> int:
        return sum(len(v) for v in self.samples.values())

    @property
    def effective_samples(self) -> int:
        """Degrees of freedom of the pooled within-worker variance."""
        return sum(max(0, len(v) - 1) for v in self.samples.values()) + 1

    def pooled_cov(self) -> float:
        """Pooled within-worker coefficient of variation of residuals."""
        sq_sum = 0.0
        dof = 0
        total = 0.0
        count = 0
        for residuals in self.samples.values():
            n = len(residuals)
            total += sum(residuals)
            count += n
            if n < 2:
                continue
            mean = sum(residuals) / n
            sq_sum += sum((r - mean) ** 2 for r in residuals)
            dof += n - 1
        if dof < 1 or count == 0:
            return 0.0
        grand_mean = total / count
        if grand_mean <= 0:
            return 0.0
        return math.sqrt(sq_sum / dof) / grand_mean

    def lower_confidence_bound(self, z: float = GAMMA_CONFIDENCE_Z) -> float:
        """One-sided lower confidence bound on the CoV estimate."""
        cov = self.pooled_cov()
        dof = self.effective_samples - 1
        if dof < 1:
            return 0.0
        return cov * max(0.0, 1.0 - z / math.sqrt(2.0 * dof))


class RUMR(Scheduler):
    """RUMR with online gamma discovery (``fixed_phase2_fraction=None``)
    or the Fixed-RUMR variant (e.g. ``fixed_phase2_fraction=0.2``).

    Parameters
    ----------
    fixed_phase2_fraction:
        If set, skip gamma detection and always schedule this fraction of
        the load in the Factoring phase (the paper's Fixed-RUMR uses 0.2,
        i.e. "always schedules 80% of the load in the first phase").
    gamma_threshold / confidence_z:
        Online detection: switch once the lower confidence bound of the
        estimated gamma exceeds ``gamma_threshold``.
    """

    uses_probing = True

    def __init__(
        self,
        *,
        fixed_phase2_fraction: float | None = None,
        gamma_threshold: float = GAMMA_SWITCH_THRESHOLD,
        confidence_z: float = GAMMA_CONFIDENCE_Z,
        phase2_scale: float = PHASE2_SCALE,
        phase2_max_fraction: float = PHASE2_MAX_FRACTION,
        min_useful_switch: float = MIN_USEFUL_SWITCH,
        adaptation_gain: float = ADAPTATION_GAIN,
        max_rounds: int = 128,
    ) -> None:
        super().__init__()
        if fixed_phase2_fraction is not None and not 0.0 < fixed_phase2_fraction < 1.0:
            raise SchedulingError(
                f"fixed phase-2 fraction must be in (0,1), got {fixed_phase2_fraction}"
            )
        self._fixed_fraction = fixed_phase2_fraction
        self.name = "fixed-rumr" if fixed_phase2_fraction is not None else "rumr"
        self._gamma_threshold = gamma_threshold
        self._z = confidence_z
        self._phase2_scale = phase2_scale
        self._phase2_max = phase2_max_fraction
        self._min_useful = min_useful_switch
        self._gain = adaptation_gain
        self._max_rounds = max_rounds

        self._umr_plan: UMRPlan | None = None
        self._umr_queue: list[DispatchRequest] = []
        self._rounds_started: set[int] = set()
        self._wf: WeightedFactoring | None = None
        self._speeds: list[float] = []
        self._estimator = GammaEstimator()
        self._switched = False
        self._switch_time: float | None = None
        self._switch_too_late = False
        self._detection_time: float | None = None
        self._phase2_load = 0.0
        self._undispatched_at_detection: float | None = None
        self._samples_at_detection = 0

    # -- planning -------------------------------------------------------------
    def _plan(self, config: SchedulerConfig) -> None:
        self._speeds = [w.speed for w in config.estimates]
        self._estimator = GammaEstimator()
        self._rounds_started = set()
        self._wf = None
        self._switched = False
        self._switch_time = None
        self._switch_too_late = False
        self._detection_time = None
        self._phase2_load = 0.0
        self._undispatched_at_detection = None

        if self._fixed_fraction is not None:
            umr_load = config.total_load * (1.0 - self._fixed_fraction)
            self._phase2_load = config.total_load - umr_load
        else:
            umr_load = config.total_load
        try:
            plan = compute_umr_plan(
                config.estimates,
                umr_load,
                quantum=config.quantum,
                max_rounds=self._max_rounds,
            )
        except InfeasibleScheduleError:
            plan = proportional_one_round(config.estimates, umr_load)
        self._umr_plan = plan
        self._umr_queue = UMR._build_queue(plan, phase="rumr-umr")

    # -- dispatch ------------------------------------------------------------
    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        remaining = self.remaining_units
        if remaining <= 0:
            return None
        while self._umr_queue:
            request = self._umr_queue[0]
            if remaining <= self._phase2_reserved():
                # everything left belongs to the Factoring phase
                self._umr_queue.clear()
                break
            self._umr_queue.pop(0)
            units = min(request.units, remaining - self._phase2_reserved())
            if units <= 0:
                continue
            self._rounds_started.add(request.round_index)
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=request.round_index,
                phase=request.phase,
            )
        # UMR queue exhausted.  If online RUMR never switched, it degenerates
        # to pure UMR (the paper's gamma = 0 observation): hand any
        # quantization sliver to the fastest worker rather than opening a
        # Factoring phase for it.
        if (
            remaining > 0
            and self._fixed_fraction is None
            and not self._switched
            and self._wf is None
        ):
            estimates = self.config.estimates
            fastest = max(
                range(len(estimates)), key=lambda i: estimates[i].speed
            )
            rounds = self._umr_plan.num_rounds if self._umr_plan else 0
            return DispatchRequest(
                worker_index=fastest,
                units=remaining,
                round_index=rounds,
                phase="rumr-umr",
            )
        # Enter (or continue) the Factoring phase.
        if remaining > 0:
            wf = self._ensure_phase2(now)
            inner = wf.next_dispatch(now, workers)
            if inner is None:
                return None
            offset = self._umr_plan.num_rounds if self._umr_plan else 0
            return DispatchRequest(
                worker_index=inner.worker_index,
                units=inner.units,
                round_index=offset + inner.round_index,
                phase="rumr-factoring",
            )
        return None

    def _phase2_reserved(self) -> float:
        """Load reserved for the Factoring phase (0 until a switch exists)."""
        if self._fixed_fraction is not None or self._switched:
            return 0.0 if self._wf_started() else self._phase2_load
        return 0.0

    def _wf_started(self) -> bool:
        return self._wf is not None

    def _ensure_phase2(self, now: float) -> WeightedFactoring:
        if self._wf is None:
            estimates = [
                WorkerSpec(
                    name=w.name,
                    speed=self._speeds[i],
                    bandwidth=w.bandwidth,
                    comm_latency=w.comm_latency,
                    comp_latency=w.comp_latency,
                    cluster=w.cluster,
                )
                for i, w in enumerate(self.config.estimates)
            ]
            wf = WeightedFactoring(adaptation_gain=self._gain)
            wf.configure(
                SchedulerConfig(
                    estimates=estimates,
                    total_load=max(self.remaining_units, self.config.quantum),
                    quantum=self.config.quantum,
                )
            )
            self._wf = wf
            if self._switch_time is None:
                self._switch_time = now
        return self._wf

    # -- notifications ----------------------------------------------------------
    def notify_dispatched(self, chunk: ChunkInfo) -> None:
        super().notify_dispatched(chunk)
        if self._wf is not None and chunk.phase == "rumr-factoring":
            self._wf.notify_dispatched(chunk)

    def notify_completion(
        self, chunk: ChunkInfo, now: float, predicted_time: float, actual_time: float
    ) -> None:
        # online speed refinement (feeds the eventual Factoring phase)
        latency = self.config.estimates[chunk.worker_index].comp_latency
        effective = actual_time - latency
        if effective > 0 and chunk.units > 0:
            observed = chunk.units / effective
            self._speeds[chunk.worker_index] = (
                (1.0 - self._gain) * self._speeds[chunk.worker_index]
                + self._gain * observed
            )
        if self._wf is not None and chunk.phase == "rumr-factoring":
            self._wf.notify_completion(chunk, now, predicted_time, actual_time)
        if predicted_time > 0:
            self._estimator.add(chunk.worker_index, actual_time / predicted_time)
        if self._fixed_fraction is None and not self._switched:
            self._maybe_switch(now)

    # -- the online switch -------------------------------------------------------
    def _maybe_switch(self, now: float) -> None:
        gamma_lcb = self._estimator.lower_confidence_bound(self._z)
        if gamma_lcb <= self._gamma_threshold:
            return
        if self._detection_time is None:
            self._detection_time = now
            self._undispatched_at_detection = sum(r.units for r in self._umr_queue)
            self._samples_at_detection = self._estimator.total_samples
        gamma_hat = self._estimator.pooled_cov()
        desired = min(self._phase2_max, self._phase2_scale * gamma_hat)
        desired_load = desired * self.config.total_load

        # Only whole rounds that have not started transmitting can be
        # reclaimed -- a chunk on the wire cannot be recalled.
        reclaimable = [
            req for req in self._umr_queue if req.round_index not in self._rounds_started
        ]
        reclaim_load = sum(req.units for req in reclaimable)
        if reclaim_load >= self._min_useful * desired_load:
            self._umr_queue = [
                req for req in self._umr_queue if req.round_index in self._rounds_started
            ]
            self._switched = True
            self._switch_time = now
            self._phase2_load = reclaim_load
        else:
            # too late: the large final round is already on the wire
            self._switch_too_late = True

    def annotations(self) -> dict:
        out = {
            "rumr_mode": "fixed" if self._fixed_fraction is not None else "online",
            "rumr_switched": self._switched or self._fixed_fraction is not None,
            "rumr_switch_too_late": self._switch_too_late and not self._switched,
            "rumr_gamma_estimate": round(self._estimator.pooled_cov(), 4),
            "rumr_phase2_load": round(self._phase2_load, 2),
        }
        if self._fixed_fraction is not None:
            out["rumr_fixed_fraction"] = self._fixed_fraction
        if self._detection_time is not None:
            out["rumr_detection_time"] = round(self._detection_time, 1)
            out["rumr_undispatched_at_detection"] = round(
                self._undispatched_at_detection or 0.0, 1
            )
            out["rumr_samples_at_detection"] = self._samples_at_detection
        if self._switch_time is not None:
            out["rumr_switch_time"] = round(self._switch_time, 1)
        if self._umr_plan is not None:
            out["rumr_umr_rounds"] = self._umr_plan.num_rounds
        return out


def fixed_rumr(fraction: float = 0.2, **kwargs) -> RUMR:
    """The paper's Fixed-RUMR: always ``1 - fraction`` of the load via UMR.

    ``fraction`` is the Factoring-phase share (0.2 = "always schedules 80%
    of the load in the first phase").
    """
    return RUMR(fixed_phase2_fraction=fraction, **kwargs)


#: Below this learned gamma, the Factoring phase is not worth opening and
#: known-gamma RUMR degenerates to pure UMR (the original RUMR behaviour).
MIN_KNOWN_GAMMA_FRACTION = 0.02


def rumr_with_known_gamma(
    gamma: float,
    *,
    phase2_scale: float = PHASE2_SCALE,
    phase2_max_fraction: float = PHASE2_MAX_FRACTION,
    **kwargs,
):
    """Original RUMR [38]: gamma known in advance, switch point pre-planned.

    The Factoring-phase share is ``min(max_fraction, scale * gamma)`` --
    the same sizing rule the online variant applies at detection time,
    but committed before execution, so the switch can never come too
    late.  This is the algorithm the paper says could be recovered by
    learning gamma "from past application executions"; the APST-DV daemon
    does exactly that via :mod:`repro.apst.history` and the
    ``rumr-learned`` algorithm name.

    Returns a stock :class:`~repro.core.umr.UMR` when the known gamma is
    too small for a Factoring phase to pay off.
    """
    if gamma < 0:
        raise SchedulingError(f"gamma must be >= 0, got {gamma}")
    fraction = min(phase2_max_fraction, phase2_scale * gamma)
    if fraction < MIN_KNOWN_GAMMA_FRACTION:
        from .umr import UMR

        scheduler = UMR()
        scheduler.name = "rumr-known"
        return scheduler
    scheduler = RUMR(
        fixed_phase2_fraction=fraction,
        phase2_scale=phase2_scale,
        phase2_max_fraction=phase2_max_fraction,
        **kwargs,
    )
    scheduler.name = "rumr-known"
    return scheduler
