"""Factoring-family self-scheduling algorithms (paper Sections 2.2, 3.6).

**Weighted Factoring** [Hummel et al., SPAA'96] divides the load into
rounds, halving the per-round batch each time (down to a minimum chunk
size) so that execution ends with small chunks -- the classic defense
against uncertainty in computation times.  Chunk sizes within a round are
proportional to worker speed ("weighted"), and chunks are handed out
greedily as workers need work.  Following the paper's APST-DV
implementation, our Weighted Factoring uses probing for initial speed
estimates *and* keeps refining them from observed chunk execution times
throughout the run (an exponentially weighted moving average) -- "SIMPLE-n
and UMR do not perform such adaptation".

The module also provides the lineage algorithms the paper cites as
Factoring's ancestry: plain (unweighted) **Factoring** [Hummel et al.,
CACM'92] and **GSS** (Guided Self-Scheduling) [Polychronopoulos/Kuck,
via Hagerup's experimental study], used by the ablation benches.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..platform.resources import WorkerSpec
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState

#: Default EWMA gain for online speed adaptation.
ADAPTATION_GAIN = 0.3

#: Default multiple of the per-chunk start-up cost that the smallest chunk's
#: computation should still amortize.  10x keeps the dispatch overhead of the
#: final tiny chunks below ~10% of their own compute time while leaving the
#: load-balance granularity at ~1% of the makespan on the paper platforms.
MIN_CHUNK_STARTUP_MULTIPLE = 10.0


class WeightedFactoring(Scheduler):
    """Weighted Factoring with probing and online speed adaptation.

    Parameters
    ----------
    factor:
        Per-round decay of the remaining load (0.5 = classic halving).
    prefetch_depth:
        Maximum chunks outstanding (in flight + queued + computing) per
        worker before it stops being eligible for the next chunk.  2 gives
        single-buffering overlap; 1 disables overlap entirely.
    min_chunk:
        Smallest chunk to dispatch, in load units; ``None`` derives it
        from the platform estimates so the smallest chunk still amortizes
        ``MIN_CHUNK_STARTUP_MULTIPLE`` times the start-up costs.
    adaptive:
        Refine per-worker speed estimates from observed chunk times.
    weighted:
        Scale chunks by estimated worker speed; False gives plain
        Factoring.
    """

    name = "wf"
    uses_probing = True

    def __init__(
        self,
        *,
        factor: float = 0.5,
        prefetch_depth: int = 2,
        min_chunk: float | None = None,
        adaptive: bool = True,
        weighted: bool = True,
        adaptation_gain: float = ADAPTATION_GAIN,
    ) -> None:
        super().__init__()
        if not 0.0 < factor < 1.0:
            raise SchedulingError(f"factor must be in (0, 1), got {factor}")
        if prefetch_depth < 1:
            raise SchedulingError("prefetch_depth must be >= 1")
        if not 0.0 < adaptation_gain <= 1.0:
            raise SchedulingError("adaptation_gain must be in (0, 1]")
        self._factor = factor
        self._prefetch = prefetch_depth
        self._min_chunk_param = min_chunk
        self._adaptive = adaptive
        self._weighted = weighted
        self._gain = adaptation_gain
        if not weighted:
            self.name = "factoring"
        self._speeds: list[float] = []
        self._comp_latencies: list[float] = []
        self._min_chunks: list[float] = []
        self._per_worker_round: list[int] = []
        self._adaptations = 0

    def _plan(self, config: SchedulerConfig) -> None:
        self._speeds = [w.speed for w in config.estimates]
        self._comp_latencies = [w.comp_latency for w in config.estimates]
        self._per_worker_round = [0] * config.num_workers
        self._adaptations = 0
        if self._min_chunk_param is not None:
            floor = max(self._min_chunk_param, config.quantum)
            self._min_chunks = [floor] * config.num_workers
        else:
            self._min_chunks = [
                max(config.quantum, f)
                for f in self._derive_min_chunks(config.estimates)
            ]

    @staticmethod
    def _derive_min_chunks(estimates: list[WorkerSpec]) -> list[float]:
        """Per-worker chunk whose computation amortizes that worker's
        start-up costs (a platform-wide floor would force slow workers in
        heterogeneous grids to take disproportionately long chunks)."""
        return [
            w.speed * (w.comm_latency + w.comp_latency) * MIN_CHUNK_STARTUP_MULTIPLE
            for w in estimates
        ]

    @staticmethod
    def _derive_min_chunk(estimates: list[WorkerSpec]) -> float:
        """Platform-mean variant, used by schedulers with a single floor."""
        per_worker = WeightedFactoring._derive_min_chunks(estimates)
        return sum(per_worker) / len(per_worker)

    # -- dispatch -----------------------------------------------------------
    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        remaining = self.remaining_units
        if remaining <= 0:
            return None
        eligible = [w for w in workers if w.outstanding < self._prefetch]
        if not eligible:
            return None
        target = self._pick_worker(eligible)
        units = self._chunk_size(target.index, remaining)
        round_idx = self._per_worker_round[target.index]
        self._per_worker_round[target.index] += 1
        return DispatchRequest(
            worker_index=target.index,
            units=units,
            round_index=round_idx,
            phase="factoring",
        )

    def _pick_worker(self, eligible: list[WorkerState]) -> WorkerState:
        """Most-starved eligible worker: least outstanding work per unit speed."""

        def starvation(w: WorkerState) -> tuple[float, float, int]:
            speed = self._speeds[w.index]
            return (w.outstanding_units / speed, -speed, w.index)

        return min(eligible, key=starvation)

    def _chunk_size(self, worker_index: int, remaining: float) -> float:
        if self._weighted:
            total_speed = sum(self._speeds)
            weight = self._speeds[worker_index] / total_speed
        else:
            weight = 1.0 / len(self._speeds)
        units = remaining * self._factor * weight
        units = max(units, self._min_chunks[worker_index])
        return min(units, remaining)

    # -- adaptation ------------------------------------------------------------
    def notify_completion(
        self, chunk, now: float, predicted_time: float, actual_time: float
    ) -> None:
        if not self._adaptive:
            return
        latency = self._comp_latencies[chunk.worker_index]
        effective = actual_time - latency
        if effective <= 0 or chunk.units <= 0:
            return
        observed_speed = chunk.units / effective
        current = self._speeds[chunk.worker_index]
        self._speeds[chunk.worker_index] = (
            (1.0 - self._gain) * current + self._gain * observed_speed
        )
        self._adaptations += 1

    def annotations(self) -> dict:
        mean_floor = sum(self._min_chunks) / len(self._min_chunks)
        return {
            "min_chunk": round(mean_floor, 3),
            "factor": self._factor,
            "adaptive": self._adaptive,
            "weighted": self._weighted,
            "speed_adaptations": self._adaptations,
        }


class PlainFactoring(WeightedFactoring):
    """Unweighted, non-adaptive Factoring [Hummel et al., CACM'92]."""

    def __init__(self, *, factor: float = 0.5, prefetch_depth: int = 2,
                 min_chunk: float | None = None) -> None:
        super().__init__(
            factor=factor,
            prefetch_depth=prefetch_depth,
            min_chunk=min_chunk,
            adaptive=False,
            weighted=False,
        )
        self.name = "factoring"


class GuidedSelfScheduling(Scheduler):
    """GSS: each dispatched chunk is ``remaining / N`` (with a floor).

    The ancestor of Factoring's decreasing-chunk idea (paper Section 2.2);
    kept for the lineage ablation bench.
    """

    name = "gss"
    uses_probing = True

    def __init__(self, *, prefetch_depth: int = 2, min_chunk: float | None = None) -> None:
        super().__init__()
        if prefetch_depth < 1:
            raise SchedulingError("prefetch_depth must be >= 1")
        self._prefetch = prefetch_depth
        self._min_chunk_param = min_chunk
        self._min_chunk = 1.0
        self._dispatch_count = 0

    def _plan(self, config: SchedulerConfig) -> None:
        self._dispatch_count = 0
        if self._min_chunk_param is not None:
            self._min_chunk = max(self._min_chunk_param, config.quantum)
        else:
            self._min_chunk = max(
                config.quantum,
                WeightedFactoring._derive_min_chunk(config.estimates),
            )

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        remaining = self.remaining_units
        if remaining <= 0:
            return None
        eligible = [w for w in workers if w.outstanding < self._prefetch]
        if not eligible:
            return None
        target = min(eligible, key=lambda w: (w.outstanding_units, w.index))
        units = max(self._min_chunk, remaining / len(workers))
        units = min(units, remaining)
        self._dispatch_count += 1
        return DispatchRequest(
            worker_index=target.index,
            units=units,
            round_index=self._dispatch_count - 1,
            phase="gss",
        )

    def annotations(self) -> dict:
        return {"min_chunk": round(self._min_chunk, 3)}
