"""Fixed-round multi-installment scheduling [Bharadwaj, Ghose & Mani, 1995].

The multi-round predecessor UMR improves upon (paper Section 2.2): the
load is delivered in a *fixed, user-chosen* number of installments
(rounds), assuming purely linear communication and computation costs and a
homogeneous platform.  Because the round count is "magically fixed" rather
than optimized, and start-up costs are ignored, it underperforms UMR on
platforms with significant latencies -- which is exactly the comparison
our ablation bench regenerates.

Within each installment the chunk sizes follow the UMR-style steady-state
pipelining condition under the linear model: each round's dispatch time
fills the previous round's computation, giving pure geometric growth with
ratio ``B / (N * S)`` (no additive term, since there are no latencies).
"""

from __future__ import annotations

from ..errors import SchedulingError
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState


class MultiInstallment(Scheduler):
    """Homogeneous fixed-round multi-installment scheduler.

    Parameters
    ----------
    rounds:
        Number of installments (fixed in advance; the point of the
        algorithm -- and its weakness).
    """

    uses_probing = True

    def __init__(self, rounds: int = 5) -> None:
        super().__init__()
        if rounds < 1:
            raise SchedulingError(f"installments must be >= 1, got {rounds}")
        self._rounds = rounds
        self.name = f"multiinstallment-{rounds}"
        self._queue: list[DispatchRequest] = []

    def _plan(self, config: SchedulerConfig) -> None:
        n = config.num_workers
        # homogeneous approximation: mean speed / bandwidth
        mean_speed = sum(w.speed for w in config.estimates) / n
        mean_bw = sum(w.bandwidth for w in config.estimates) / n
        ratio = mean_bw / (n * mean_speed)
        if ratio <= 0:
            raise SchedulingError("degenerate platform for multi-installment")
        # per-round per-worker chunk: geometric series alpha_j = alpha_0 * ratio^j
        weights = [ratio**j for j in range(self._rounds)]
        total_weight = n * sum(weights)
        alpha0 = config.total_load / total_weight
        self._queue = [
            DispatchRequest(
                worker_index=i,
                units=alpha0 * weights[j],
                round_index=j,
                phase="installment",
            )
            for j in range(self._rounds)
            for i in range(n)
        ]

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        while self._queue:
            request = self._queue.pop(0)
            units = min(request.units, self.remaining_units)
            if units <= 0:
                continue
            return DispatchRequest(
                worker_index=request.worker_index,
                units=units,
                round_index=request.round_index,
                phase=request.phase,
            )
        remaining = self.remaining_units
        if remaining > 0 and not self.done_dispatching():
            return DispatchRequest(
                worker_index=0,
                units=remaining,
                round_index=self._rounds,
                phase="installment",
            )
        return None

    def annotations(self) -> dict:
        return {"installments": self._rounds}
