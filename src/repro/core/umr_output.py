"""Output-transfer-aware UMR (the paper's reference [37]).

Yang & Casanova's technical report "Extensions to The Multi-Installment
Algorithm: Affine Costs and Output Data Transfers" extends multi-round
scheduling to applications that ship results *back* through the same
serialized master link -- exactly the situation of the MPEG-4 case study,
where each worker returns an encoded chunk (our simulator models this via
``SimulationOptions.output_factor``).

Planning model
--------------
If each unit of input produces ``output_factor`` units of output, the
master link must carry ``(1 + output_factor)`` units per unit of load, and
every round costs one extra start-up per worker for the result transfer.
The steady-state dispatch condition of UMR becomes::

    sum_i (2*nLat_i + (1 + o) * a_{j+1,i} / B_i) = T_j

which is the stock UMR recurrence on a *transformed platform* with
``B_i' = B_i / (1 + o)`` and ``nLat_i' = 2 * nLat_i``.  We therefore reuse
:func:`repro.core.umr.compute_umr_plan` on the transformed worker
estimates -- the chunk sizes come out output-aware while the dispatch
machinery stays identical.
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import InfeasibleScheduleError, SchedulingError
from ..platform.resources import WorkerSpec
from .base import SchedulerConfig
from .umr import UMR, compute_umr_plan, proportional_one_round


def output_transformed_estimates(
    estimates: list[WorkerSpec], output_factor: float
) -> list[WorkerSpec]:
    """Platform view whose link costs include the output transfers."""
    if output_factor < 0:
        raise SchedulingError(f"output_factor must be >= 0, got {output_factor}")
    if output_factor == 0:
        return list(estimates)
    return [
        replace(
            w,
            bandwidth=w.bandwidth / (1.0 + output_factor),
            comm_latency=2.0 * w.comm_latency,
        )
        for w in estimates
    ]


class OutputAwareUMR(UMR):
    """UMR whose round plan budgets link time for result transfers.

    Use together with ``SimulationOptions(output_factor=o)`` so the
    simulated link actually carries the outputs the plan budgets for.
    Stock UMR under the same conditions overcommits the link and stalls
    its own pipelining -- the extension bench quantifies the gap.
    """

    uses_probing = True

    def __init__(self, output_factor: float, *, max_rounds: int = 128) -> None:
        super().__init__(max_rounds=max_rounds)
        if output_factor < 0:
            raise SchedulingError(f"output_factor must be >= 0, got {output_factor}")
        self._output_factor = output_factor
        self.name = "umr-out"

    def _plan(self, config: SchedulerConfig) -> None:
        transformed = output_transformed_estimates(
            config.estimates, self._output_factor
        )
        try:
            plan = compute_umr_plan(
                transformed,
                config.total_load,
                quantum=config.quantum,
                max_rounds=self._max_rounds,
            )
            self._fallback = False
        except InfeasibleScheduleError:
            plan = proportional_one_round(transformed, config.total_load)
            self._fallback = True
        self._plan_obj = plan
        self._queue = self._build_queue(plan, phase="umr-out")

    def annotations(self) -> dict:
        out = super().annotations()
        out["umr_output_factor"] = self._output_factor
        return out
