"""Classic loop self-scheduling algorithms: CSS and TSS.

The Factoring family the paper builds on (Section 2.2) grew out of the
loop self-scheduling literature.  Two more members complete the lineage
for the extension benches:

* **Chunk Self-Scheduling (CSS)** -- every dispatch hands out the same
  fixed chunk.  The degenerate baseline: small chunks balance load but
  drown in start-up costs; large chunks amortize costs but straggle.
* **Trapezoid Self-Scheduling (TSS)** [Tzen & Ni, 1993] -- chunk sizes
  decrease *linearly* from a first size F to a last size L, a cheaper
  (precomputable) approximation of GSS/Factoring's geometric decay.
  Classic defaults: F = W/(2N), L = 1 quantum.

Both dispatch greedily to the most starved eligible worker, like our
Factoring implementation, and both support speed weighting off (their
original form is unweighted).
"""

from __future__ import annotations

import math

from ..errors import SchedulingError
from .base import DispatchRequest, Scheduler, SchedulerConfig, WorkerState


class ChunkSelfScheduling(Scheduler):
    """CSS: fixed-size chunks, greedy dispatch.

    ``chunk_fraction`` sizes the chunk as a fraction of the per-worker
    share ``W/N`` (1.0 reproduces SIMPLE-1's per-worker share, but
    dispatched greedily rather than statically).
    """

    uses_probing = False

    def __init__(self, *, chunk_fraction: float = 0.1, prefetch_depth: int = 2) -> None:
        super().__init__()
        if not 0.0 < chunk_fraction <= 1.0:
            raise SchedulingError(f"chunk_fraction must be in (0, 1], got {chunk_fraction}")
        if prefetch_depth < 1:
            raise SchedulingError("prefetch_depth must be >= 1")
        self._fraction = chunk_fraction
        self._prefetch = prefetch_depth
        self.name = f"css-{chunk_fraction:g}"
        self._chunk = 1.0
        self._count = 0

    def _plan(self, config: SchedulerConfig) -> None:
        per_worker = config.total_load / config.num_workers
        self._chunk = max(config.quantum, per_worker * self._fraction)
        self._count = 0

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        remaining = self.remaining_units
        if remaining <= 0:
            return None
        eligible = [w for w in workers if w.outstanding < self._prefetch]
        if not eligible:
            return None
        target = min(eligible, key=lambda w: (w.outstanding_units, w.index))
        self._count += 1
        return DispatchRequest(
            worker_index=target.index,
            units=min(self._chunk, remaining),
            round_index=self._count - 1,
            phase="css",
        )

    def annotations(self) -> dict:
        return {"css_chunk": round(self._chunk, 3)}


class TrapezoidSelfScheduling(Scheduler):
    """TSS: linearly decreasing chunk sizes from F down to L.

    With first chunk F and last chunk L, the number of chunks is
    ``ceil(2W / (F + L))`` and consecutive chunks shrink by the constant
    ``(F - L) / (n - 1)``.
    """

    name = "tss"
    uses_probing = True

    def __init__(
        self,
        *,
        first_chunk: float | None = None,
        last_chunk: float | None = None,
        prefetch_depth: int = 2,
    ) -> None:
        super().__init__()
        if prefetch_depth < 1:
            raise SchedulingError("prefetch_depth must be >= 1")
        self._first_param = first_chunk
        self._last_param = last_chunk
        self._prefetch = prefetch_depth
        self._next_size = 1.0
        self._decrement = 0.0
        self._last = 1.0
        self._count = 0

    def _plan(self, config: SchedulerConfig) -> None:
        load = config.total_load
        first = self._first_param
        if first is None:
            first = load / (2.0 * config.num_workers)
        last = self._last_param
        if last is None:
            last = config.quantum
        first = max(first, config.quantum)
        last = min(max(last, config.quantum), first)
        n_chunks = max(1, math.ceil(2.0 * load / (first + last)))
        self._decrement = (first - last) / (n_chunks - 1) if n_chunks > 1 else 0.0
        self._next_size = first
        self._last = last
        self._count = 0

    def next_dispatch(self, now: float, workers: list[WorkerState]) -> DispatchRequest | None:
        remaining = self.remaining_units
        if remaining <= 0:
            return None
        eligible = [w for w in workers if w.outstanding < self._prefetch]
        if not eligible:
            return None
        target = min(eligible, key=lambda w: (w.outstanding_units, w.index))
        units = min(max(self._next_size, self._last), remaining)
        self._next_size = max(self._last, self._next_size - self._decrement)
        self._count += 1
        return DispatchRequest(
            worker_index=target.index,
            units=units,
            round_index=self._count - 1,
            phase="tss",
        )

    def annotations(self) -> dict:
        return {
            "tss_last_chunk": round(self._last, 3),
            "tss_decrement": round(self._decrement, 4),
        }
