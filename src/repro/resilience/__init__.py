"""``repro.resilience``: stragglers, speculation, escalation, dead letters.

APST-DV targets non-dedicated grid platforms where workers are shared,
slow down under external load, and disappear mid-run.  The dispatch
layer's :class:`~repro.dispatch.protocols.RetryPolicy` only covers
transport-level retransmits to the *same* worker; this package supplies
the tier above it:

* :class:`StragglerDetector` -- per-worker EWMA of chunk service time,
  seeded from probe estimates, flagging in-flight chunks that exceed a
  configurable multiplier of their expected duration;
* :class:`StragglerPolicy` / :class:`EscalationPolicy` /
  :class:`ResiliencePolicy` -- the knobs, threaded into
  :class:`~repro.dispatch.core.DispatchOptions`;
* :class:`DeadLetterQueue` / :class:`DeadLetterEntry` -- the job-level
  parking lot for work that cannot complete on any live worker, with
  the failure chain attached for operator replay.

The mechanics (speculative twin dispatch, escalation to a different
worker, quarantine) live in :class:`~repro.dispatch.core.DispatchCore`;
this package deliberately imports nothing from :mod:`repro.dispatch` so
the dependency points one way.
"""

from .detector import (
    EscalationPolicy,
    ResiliencePolicy,
    StragglerDetector,
    StragglerPolicy,
)
from .dlq import DeadLetterEntry, DeadLetterQueue

__all__ = [
    "DeadLetterEntry",
    "DeadLetterQueue",
    "EscalationPolicy",
    "ResiliencePolicy",
    "StragglerDetector",
    "StragglerPolicy",
]
