"""Job-level dead-letter queue.

A job lands here when the resilience tier runs out of options --
:class:`~repro.errors.JobUnrecoverableError` bubbled out of the dispatch
core because no live worker could take its chunks.  Parking preserves
the task (so the job can be replayed verbatim once the platform heals)
and the failure chain (so an operator can see *why* it died before
deciding to replay or purge).

Entries live in a :class:`~repro.store.base.JobStore` (an in-process
:class:`~repro.store.memory.MemoryStore` unless the daemon hands us its
durable store), which allocates entry ids monotonically for the life of
the store -- ids never restart from 0 and are never reused, so
``replayed_as`` links stay unambiguous across daemon restarts.  Live
task objects are not serializable; they are cached in-process, and a
restarted daemon replays from the persisted spec XML instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis import lockwatch
from ..errors import ServiceError
from ..store import JobStore, MemoryStore, StoreError, StoredDeadLetter


@dataclass
class DeadLetterEntry:
    """One parked job: what it was, why it died, what became of it."""

    entry_id: int
    job_id: int
    algorithm: str | None
    #: the original task object, kept verbatim for replay; ``None`` after a
    #: daemon restart (replay then re-parses :attr:`spec_xml`)
    task: object
    #: per-step failure diagnostics, newest last
    failure_chain: list[str] = field(default_factory=list)
    #: host wall clock (``time.time()``) at park time
    parked_at: float = 0.0
    #: job id of the replay submission, once ``dlq replay`` ran
    replayed_as: int | None = None
    #: persisted task spec, available even when ``task`` is gone
    spec_xml: str | None = None

    def to_dict(self) -> dict:
        """Wire/JSON form (the task object itself is not serializable)."""
        return {
            "entry_id": self.entry_id,
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "failure_chain": list(self.failure_chain),
            "parked_at": self.parked_at,
            "replayed_as": self.replayed_as,
        }


class DeadLetterQueue:
    """Thread-safe parking lot for unrecoverable jobs, backed by a store."""

    def __init__(self, store: JobStore | None = None) -> None:
        self._store: JobStore = store if store is not None else MemoryStore()
        #: live task objects by entry id (this process's parks only)
        self._tasks: dict[int, object] = {}
        self._lock = lockwatch.create_lock("resilience.dlq")

    @property
    def store(self) -> JobStore:
        return self._store

    def __len__(self) -> int:
        return len(self._store.dlq_entries())

    def _hydrate(self, stored: StoredDeadLetter) -> DeadLetterEntry:
        with self._lock:
            task = self._tasks.get(stored.entry_id)
        return DeadLetterEntry(
            entry_id=stored.entry_id,
            job_id=stored.job_id,
            algorithm=stored.algorithm,
            task=task,
            failure_chain=list(stored.failure_chain),
            parked_at=stored.parked_at,
            replayed_as=stored.replayed_as,
            spec_xml=stored.spec_xml,
        )

    def park(
        self,
        *,
        job_id: int,
        algorithm: str | None,
        task: object,
        failure_chain: list[str] | None = None,
        spec_xml: str | None = None,
    ) -> DeadLetterEntry:
        """Add one dead job; returns the new entry (store-allocated id)."""
        stored = self._store.park(
            job_id=job_id,
            algorithm=algorithm,
            spec_xml=spec_xml,
            failure_chain=tuple(failure_chain or ()),
            now=time.time(),
        )
        with self._lock:
            self._tasks[stored.entry_id] = task
        return self._hydrate(stored)

    def entries(self) -> list[DeadLetterEntry]:
        """All parked entries, oldest first."""
        return [self._hydrate(stored) for stored in self._store.dlq_entries()]

    def get(self, entry_id: int) -> DeadLetterEntry:
        try:
            stored = self._store.dlq_get(entry_id)
        except StoreError:
            raise ServiceError(f"no DLQ entry with id {entry_id}") from None
        return self._hydrate(stored)

    def mark_replayed(self, entry_id: int, new_job_id: int) -> DeadLetterEntry:
        """Record that ``entry_id`` was resubmitted as ``new_job_id``."""
        try:
            stored = self._store.dlq_mark_replayed(entry_id, new_job_id)
        except StoreError:
            raise ServiceError(f"no DLQ entry with id {entry_id}") from None
        return self._hydrate(stored)

    def purge(self) -> int:
        """Drop every entry; returns how many were removed.

        Entry ids keep rising after a purge -- the store never reuses
        them, so stale ``replayed_as`` references cannot be captured by
        later entries.
        """
        count = self._store.dlq_purge()
        with self._lock:
            self._tasks.clear()
        return count

    def to_dicts(self) -> list[dict]:
        return [entry.to_dict() for entry in self.entries()]
