"""Job-level dead-letter queue.

A job lands here when the resilience tier runs out of options --
:class:`~repro.errors.JobUnrecoverableError` bubbled out of the dispatch
core because no live worker could take its chunks.  Parking preserves
the task (so the job can be replayed verbatim once the platform heals)
and the failure chain (so an operator can see *why* it died before
deciding to replay or purge).

The queue is in-memory and thread-safe: the daemon parks from its run
thread while the gateway lists over its asyncio loop.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from ..analysis import lockwatch
from ..errors import ServiceError


@dataclass
class DeadLetterEntry:
    """One parked job: what it was, why it died, what became of it."""

    entry_id: int
    job_id: int
    algorithm: str | None
    #: the original task object, kept verbatim for replay
    task: object
    #: per-step failure diagnostics, newest last
    failure_chain: list[str] = field(default_factory=list)
    #: host wall clock (``time.time()``) at park time
    parked_at: float = 0.0
    #: job id of the replay submission, once ``dlq replay`` ran
    replayed_as: int | None = None

    def to_dict(self) -> dict:
        """Wire/JSON form (the task object itself is not serializable)."""
        return {
            "entry_id": self.entry_id,
            "job_id": self.job_id,
            "algorithm": self.algorithm,
            "failure_chain": list(self.failure_chain),
            "parked_at": self.parked_at,
            "replayed_as": self.replayed_as,
        }


class DeadLetterQueue:
    """Thread-safe in-memory parking lot for unrecoverable jobs."""

    def __init__(self) -> None:
        self._entries: dict[int, DeadLetterEntry] = {}
        self._ids = itertools.count(1)
        self._lock = lockwatch.create_lock("resilience.dlq")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def park(
        self,
        *,
        job_id: int,
        algorithm: str | None,
        task: object,
        failure_chain: list[str] | None = None,
    ) -> DeadLetterEntry:
        """Add one dead job; returns the new entry."""
        with self._lock:
            entry = DeadLetterEntry(
                entry_id=next(self._ids),
                job_id=job_id,
                algorithm=algorithm,
                task=task,
                failure_chain=list(failure_chain or []),
                parked_at=time.time(),
            )
            self._entries[entry.entry_id] = entry
            return entry

    def entries(self) -> list[DeadLetterEntry]:
        """All parked entries, oldest first."""
        with self._lock:
            return [self._entries[key] for key in sorted(self._entries)]

    def get(self, entry_id: int) -> DeadLetterEntry:
        with self._lock:
            try:
                return self._entries[entry_id]
            except KeyError:
                raise ServiceError(f"no DLQ entry with id {entry_id}") from None

    def mark_replayed(self, entry_id: int, new_job_id: int) -> DeadLetterEntry:
        """Record that ``entry_id`` was resubmitted as ``new_job_id``."""
        entry = self.get(entry_id)
        with self._lock:
            entry.replayed_as = new_job_id
        return entry

    def purge(self) -> int:
        """Drop every entry; returns how many were removed."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def to_dicts(self) -> list[dict]:
        return [entry.to_dict() for entry in self.entries()]
